// The iotax model-serving daemon: keeps saved Regressor checkpoints
// resident in a ModelRegistry and answers prediction requests over
// Unix-domain and/or TCP sockets using the framed binary protocol
// (serve/protocol.hpp).
//
// Request lifecycle:
//   session reader --> bounded MPMC queue --> batcher --> session socket
//
// One reader thread per connection decodes frames and admits requests
// into a BoundedQueue (capacity = --max-inflight). A single batcher
// thread gathers up to --batch-size requests within a --batch-wait-us
// window, assembles each model's rows into one Matrix, and runs the
// ordinary batch-predict kernels — the same thread-pool code offline
// `iotax predict` uses — so served answers are bit-identical to offline
// predictions at any IOTAX_THREADS. Responses are written back on the
// requester's socket under a per-session write lock (responses carry
// the request id, so cross-request ordering is unconstrained).
//
// Failure model: malformed or truncated frames map to the shared
// quarantine Reason vocabulary and produce a typed error reply; they
// never kill the daemon. Admission control sheds load with a typed BUSY
// reply once max-inflight requests are in the system. stop() drains
// gracefully: listeners close, readers stop admitting, every already-
// admitted request is answered, then threads join.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/ml/registry.hpp"
#include "src/serve/protocol.hpp"
#include "src/util/mpmc.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::serve {

struct ServeConfig {
  /// Checkpoints to load; requests address them by index in this order.
  std::vector<std::string> model_files;
  /// Unix-domain listener path ("" disables). The path is unlinked on
  /// bind and again on shutdown.
  std::string unix_socket;
  /// TCP listener port on 127.0.0.1 (-1 disables, 0 picks an ephemeral
  /// port — read it back with Server::tcp_port()).
  int tcp_port = -1;
  /// Micro-batching: a batch closes at `batch_size` requests or
  /// `batch_wait_us` after its first request, whichever comes first.
  std::size_t batch_size = 32;
  std::uint64_t batch_wait_us = 200;
  /// Admission control: requests beyond this many in flight get a typed
  /// BUSY reply instead of queueing (also the queue capacity).
  std::size_t max_inflight = 256;
  /// Shadow deployment: a candidate checkpoint served beside production
  /// ("" disables). Requests flagged kFlagShadow get values =
  /// {production, shadow}; divergence between the two is accounted
  /// bit-exactly and gates promotion (ControlOp::kPromote publishes the
  /// shadow into `shadow_slot`).
  std::string shadow_file;
  /// Registry slot the shadow is a candidate for.
  std::size_t shadow_slot = 0;
};

/// Monotonic totals since start(); exact (plain atomics, not gated on
/// IOTAX_OBS). The obs counters serve.{requests,batches,shed,...}
/// mirror these when observability is enabled.
struct ServeStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;     // admitted predict requests
  std::uint64_t responses = 0;    // predict responses written
  std::uint64_t batches = 0;      // batches executed
  std::uint64_t shed = 0;         // BUSY replies (admission control)
  std::uint64_t errors = 0;       // typed error replies other than BUSY
  std::uint64_t quarantined = 0;  // frame/request defects recorded
  std::uint64_t shadow_requests = 0;  // rows also scored by the shadow
  std::uint64_t shadow_diverged = 0;  // rows whose two answers differ bitwise
  std::uint64_t promotions = 0;       // shadow publishes into the registry
  std::uint64_t rollbacks = 0;        // registry rollbacks applied
  double max_abs_divergence = 0.0;    // worst |production - shadow| seen
};

class Server {
 public:
  explicit Server(ServeConfig config);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load models, bind listeners, launch the accept and batcher
  /// threads. Throws std::runtime_error on any setup failure (bad
  /// checkpoint, unbindable socket).
  void start();

  /// Graceful drain: stop accepting, answer everything already
  /// admitted, join all threads. Idempotent; blocks until done.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  /// Actual TCP port after start() (useful with config tcp_port = 0);
  /// -1 when TCP is disabled.
  int tcp_port() const { return bound_tcp_port_; }

  const ml::ModelRegistry& registry() const { return registry_; }
  const ServeConfig& config() const { return config_; }

  /// Snapshot of the shadow candidate (nullptr when none is loaded or
  /// after a promotion consumed it).
  std::shared_ptr<const ml::ModelEntry> shadow() const;

  ServeStats stats() const;
  /// Snapshot of frame/request defects seen so far.
  util::QuarantineReport quarantine() const;

 private:
  struct Session;
  struct Pending;

  void accept_loop();
  void session_loop(std::shared_ptr<Session> session);
  void batcher_loop();
  /// Handle one complete frame from `session`; returns false when the
  /// connection must close (unrecoverable framing defect).
  bool handle_frame(const std::shared_ptr<Session>& session,
                    const util::FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  /// Apply one administrative verb (promote / rollback / status) and
  /// reply with a ControlResponse on the requester's session.
  void handle_control(const std::shared_ptr<Session>& session,
                      const ControlRequest& req);
  void run_batch(std::vector<Pending>&& batch);
  void send_error(const std::shared_ptr<Session>& session,
                  const ErrorResponse& err, bool count_as_error = true);
  void note_quarantine(util::Reason reason, const std::string& detail);
  static bool write_frame(Session& session, std::string_view bytes);

  ServeConfig config_;
  ml::ModelRegistry registry_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;

  std::unique_ptr<util::BoundedQueue<Pending>> queue_;
  std::atomic<std::size_t> inflight_{0};

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  std::thread batcher_thread_;
  mutable std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;      // guarded by sessions_mu_
  std::vector<std::weak_ptr<Session>> sessions_;  // guarded by sessions_mu_

  mutable std::mutex quarantine_mu_;
  util::QuarantineReport quarantine_;  // guarded by quarantine_mu_

  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_responses_{0};
  std::atomic<std::uint64_t> n_batches_{0};
  std::atomic<std::uint64_t> n_shed_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_quarantined_{0};

  // Shadow deployment state. The candidate entry swaps out atomically on
  // promotion; divergence accounting is monotonic since start().
  mutable std::mutex shadow_mu_;
  std::shared_ptr<const ml::ModelEntry> shadow_;  // guarded by shadow_mu_
  double max_abs_divergence_ = 0.0;               // guarded by shadow_mu_
  std::atomic<std::uint64_t> n_shadow_requests_{0};
  std::atomic<std::uint64_t> n_shadow_diverged_{0};
  std::atomic<std::uint64_t> n_promotions_{0};
  std::atomic<std::uint64_t> n_rollbacks_{0};
};

}  // namespace iotax::serve
