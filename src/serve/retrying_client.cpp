#include "src/serve/retrying_client.hpp"

#include <chrono>
#include <stdexcept>
#include <thread>
#include <utility>

#include "src/obs/metrics.hpp"

namespace iotax::serve {

using util::Deadline;
using util::Reason;

Endpoint Endpoint::unix_path(std::string p) {
  Endpoint e;
  e.kind = Kind::kUnix;
  e.path = std::move(p);
  return e;
}

Endpoint Endpoint::tcp(std::string host, std::uint16_t port) {
  Endpoint e;
  e.kind = Kind::kTcp;
  e.host = std::move(host);
  e.port = port;
  return e;
}

std::string Endpoint::describe() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return host + ":" + std::to_string(port);
}

RetryingClient::RetryingClient(std::vector<Endpoint> endpoints,
                               RetryPolicy policy, util::Rng rng,
                               RetryCounters* counters)
    : endpoints_(std::move(endpoints)),
      policy_(policy),
      rng_(rng),
      counters_(counters) {
  if (endpoints_.empty()) {
    throw std::invalid_argument("retrying client: empty endpoint list");
  }
  policy_.backoff.validate();
}

void RetryingClient::ensure_connected(std::uint64_t timeout_ms) {
  if (conn_.connected()) return;
  const Endpoint& ep = endpoints_[current_];
  conn_ = ep.kind == Endpoint::Kind::kUnix
              ? Client::connect_unix(ep.path, timeout_ms)
              : Client::connect_tcp(ep.host, ep.port, timeout_ms);
}

void RetryingClient::failover() {
  conn_.close();
  if (endpoints_.size() < 2) return;
  current_ = (current_ + 1) % endpoints_.size();
  if (counters_) {
    counters_->failovers.fetch_add(1, std::memory_order_relaxed);
  }
  IOTAX_OBS_COUNT("fleet.failovers", 1);
}

void RetryingClient::disconnect() { conn_.close(); }

RetryingClient::Result RetryingClient::predict(const PredictRequest& req) {
  const Deadline deadline = Deadline::after_ms(policy_.deadline_ms);
  Reason last_reason = Reason::kDeadlineExpired;
  std::string last_detail = "no attempt completed";
  std::size_t attempt = 0;       // total attempts, drives the retry count
  std::size_t backoff_step = 0;  // consecutive failures, drives the delay

  while (!deadline.expired()) {
    const std::uint64_t slice = deadline.slice_ms(policy_.try_timeout_ms);
    if (slice == 0) break;
    if (attempt > 0) {
      if (counters_) {
        counters_->retries.fetch_add(1, std::memory_order_relaxed);
      }
      IOTAX_OBS_COUNT("fleet.retries", 1);
    }
    ++attempt;
    try {
      ensure_connected(slice);
      conn_.set_recv_timeout_ms(slice);
      conn_.send_predict(req);
      Client::Reply reply;
      if (!conn_.read_reply(&reply)) {
        // Clean EOF mid-request: the shard is draining or just died.
        throw std::runtime_error("connection closed by " +
                                 endpoints_[current_].describe());
      }
      if (reply.request_id != req.request_id) {
        // A stale reply can only mean this connection's request/reply
        // stream desynced (e.g. a leftover answer from before a
        // timeout). The connection is unusable; the replica is fine.
        throw std::runtime_error("out-of-order reply from " +
                                 endpoints_[current_].describe());
      }
      if (reply.type == util::FrameType::kPredictResponse) {
        Result result;
        result.ok = true;
        result.response = std::move(reply.predict);
        return result;
      }
      if (reply.type == util::FrameType::kErrorResponse) {
        const ServeStatus status = reply.error.status;
        if (status == ServeStatus::kBusy) {
          // Transient admission-control shed: same replica, after a
          // jittered pause (its queue needs a moment, not a failover).
          if (counters_) {
            counters_->busy_retries.fetch_add(1, std::memory_order_relaxed);
          }
          IOTAX_OBS_COUNT("fleet.busy_retries", 1);
          const std::uint64_t delay = deadline.slice_ms(
              util::backoff_delay_ms(policy_.backoff, backoff_step++, rng_));
          std::this_thread::sleep_for(std::chrono::milliseconds(delay));
          continue;
        }
        if (status == ServeStatus::kShuttingDown) {
          last_reason = Reason::kConnectionReset;
          last_detail = endpoints_[current_].describe() + " shutting down";
          failover();
          continue;
        }
        // Model-level verdicts (bad request, unknown model, internal)
        // are the answer, not a transport failure: pass through.
        Result result;
        result.ok = false;
        result.error = std::move(reply.error);
        return result;
      }
      throw std::runtime_error("unexpected reply frame type " +
                               std::to_string(static_cast<int>(reply.type)) +
                               " from " + endpoints_[current_].describe());
    } catch (const Client::Timeout& e) {
      last_reason = Reason::kDeadlineExpired;
      last_detail = e.what();
      // The request may still be answered later; failover() closes the
      // connection, so no stale reply can match a future request.
      failover();
    } catch (const std::exception& e) {
      last_reason = Reason::kConnectionReset;
      last_detail = e.what();
      failover();
      // A dead replica fails fast (ECONNREFUSED); pace the spin so a
      // whole group mid-restart does not burn the deadline in a busy
      // loop.
      const std::uint64_t delay = deadline.slice_ms(
          util::backoff_delay_ms(policy_.backoff, backoff_step++, rng_));
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }

  if (counters_) {
    counters_->degraded.fetch_add(1, std::memory_order_relaxed);
  }
  IOTAX_OBS_COUNT("fleet.degraded", 1);
  Result result;
  result.ok = false;
  result.error.request_id = req.request_id;
  result.error.status = ServeStatus::kDegraded;
  result.error.reason = last_reason;
  result.error.detail = "replica group unavailable after " +
                        std::to_string(attempt) + " attempt(s): " +
                        last_detail;
  return result;
}

bool RetryingClient::ping(std::uint64_t request_id, std::uint64_t timeout_ms) {
  try {
    ensure_connected(timeout_ms);
    conn_.set_recv_timeout_ms(timeout_ms);
    conn_.send_ping(request_id);
    Client::Reply reply;
    if (!conn_.read_reply(&reply)) {
      conn_.close();
      return false;
    }
    if (reply.type != util::FrameType::kPong ||
        reply.request_id != request_id) {
      conn_.close();
      return false;
    }
    return true;
  } catch (const std::exception&) {
    conn_.close();
    return false;
  }
}

}  // namespace iotax::serve
