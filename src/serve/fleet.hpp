// The serving fleet: a supervised pack of shard daemons behind one
// consistent-hashing router.
//
//   client --> Router --> RetryingClient --> shard g<slot>r<k> (iotax serve)
//                               ^                   ^
//                               |                   |
//                        failover/retry      Supervisor (spawn, health
//                                            ping, SIGKILL hung shards,
//                                            restart w/ backoff budget)
//
// Topology: n_groups replica groups, n_replicas shards per group; every
// shard loads the same checkpoints, so the hash only decides *where* a
// request runs, never *what* it answers — which is why a mid-load
// `kill -9` of any shard is invisible to clients: the router's
// RetryingClient fails over to a sibling replica and the answer stays
// bit-identical to offline `iotax predict`.
//
// Failure model: shard death or hang is detected (waitpid / ping
// deadline), the shard is restarted under an exponential-backoff
// restart budget, and in the window before it returns the group's other
// replicas absorb the traffic. Only when an entire group stays
// unreachable past the request deadline does a client see an error —
// the typed kDegraded reply carrying the terminal transport Reason.
// Chaos (src/faults/chaos.hpp) drives all of this deterministically in
// tests: kill/hang events address shards through the supervisor, drop/
// delay events act inside the router, and plan ground truth is compared
// counter-exact against SupervisorStats / FleetStats.
#pragma once

#include <sys/types.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/faults/chaos.hpp"
#include "src/serve/retrying_client.hpp"
#include "src/util/backoff.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::serve {

/// Which replica group serves a request: FNV-1a over the model index
/// and the feature doubles' bit patterns, mod n_groups. Pure function
/// of the request, so a replayed workload always routes identically.
std::size_t fleet_slot(const PredictRequest& req, std::size_t n_groups);

struct SupervisorConfig {
  /// The iotax binary to exec shards from (argv[0] of the parent, or
  /// an explicit --iotax-bin override in tests).
  std::string iotax_bin;
  /// Checkpoints every shard loads, in registry order.
  std::vector<std::string> model_files;
  /// Directory for shard unix sockets (g<g>r<r>.sock), ready files and
  /// log files. Must exist and be short enough for sun_path.
  std::string shard_dir;
  std::size_t n_groups = 1;
  std::size_t n_replicas = 2;
  /// Non-empty switches shards to TCP on 127.0.0.1; must hold exactly
  /// n_groups * n_replicas distinct ports (row-major by group).
  std::vector<int> shard_ports;
  /// Passed through to each shard's ServeConfig.
  std::size_t batch_size = 32;
  std::uint64_t batch_wait_us = 200;
  std::size_t max_inflight = 256;
  /// Health loop: every interval, each live shard gets a ping that must
  /// answer within the timeout; silence means hung -> SIGKILL + restart.
  std::uint64_t health_interval_ms = 100;
  std::uint64_t health_timeout_ms = 1000;
  /// Restarts allowed per shard before the supervisor gives up on it.
  std::size_t restart_budget = 8;
  util::BackoffPolicy restart_backoff{/*initial_ms=*/20, /*max_ms=*/2000,
                                      /*multiplier=*/2.0, /*jitter=*/0.25};
  /// How long start() waits for every shard's ready file.
  std::uint64_t spawn_timeout_ms = 30000;
  /// Seeds the restart-backoff jitter streams (forked per shard).
  std::uint64_t seed = 0xf1ee7ULL;
};

/// Monotonic totals since start(); exact.
struct SupervisorStats {
  std::uint64_t spawns = 0;          // initial spawns + restarts
  std::uint64_t restarts = 0;        // respawns after a death/hang
  std::uint64_t exits_detected = 0;  // shard deaths seen by waitpid
  std::uint64_t hangs_detected = 0;  // ping deadlines -> SIGKILL
  std::uint64_t gave_up = 0;         // shards past their restart budget
};

class Supervisor {
 public:
  explicit Supervisor(SupervisorConfig config);
  ~Supervisor();
  Supervisor(const Supervisor&) = delete;
  Supervisor& operator=(const Supervisor&) = delete;

  /// Spawn every shard, wait for all ready files, launch the health
  /// monitor. Throws when a shard exits before becoming ready or the
  /// spawn deadline passes — the fleet refuses to start degraded.
  void start();

  /// SIGTERM every shard, reap them, join the monitor. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }

  std::size_t n_groups() const { return config_.n_groups; }
  std::size_t n_replicas() const { return config_.n_replicas; }
  /// Replica endpoints for one group (stable across restarts).
  std::vector<Endpoint> group_endpoints(std::size_t group) const;

  /// Chaos hook: deliver `sig` (SIGKILL, SIGSTOP, ...) to one shard.
  /// Returns false when the shard has no live process right now.
  bool signal_shard(std::size_t group, std::size_t replica, int sig);

  /// Shards currently believed up (spawned, not known-dead).
  std::size_t live_shards() const;
  SupervisorStats stats() const;
  const SupervisorConfig& config() const { return config_; }

 private:
  enum class ShardState : std::uint8_t { kUp, kRestarting, kFailed };

  struct Shard {
    std::size_t group = 0;
    std::size_t replica = 0;
    Endpoint endpoint;
    std::string socket_path;  // unix mode; "" for TCP
    std::string ready_file;
    std::string log_file;
    pid_t pid = -1;
    ShardState state = ShardState::kUp;
    /// Ready file observed since the last (re)spawn; health pings are
    /// suppressed until then so startup never reads as a hang.
    bool ready_seen = false;
    std::size_t restarts_used = 0;
    std::size_t backoff_step = 0;
    std::chrono::steady_clock::time_point next_restart{};
    util::Rng rng{0};  // per-shard backoff jitter stream
  };

  /// fork/exec one shard (stdout+stderr -> its log file). Throws on
  /// fork failure; exec failure surfaces as an immediate child exit.
  void spawn(Shard& shard);
  void monitor_loop();
  /// Death/hang bookkeeping: schedule a restart or mark failed.
  void shard_down(Shard& shard, const char* why);
  /// SIGKILL and reap everything spawned so far (startup-failure path).
  void stop_spawned_locked();
  std::vector<std::string> shard_argv(const Shard& shard) const;

  SupervisorConfig config_;
  mutable std::mutex mu_;
  std::vector<Shard> shards_;  // guarded by mu_
  std::thread monitor_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::atomic<std::uint64_t> n_spawns_{0};
  std::atomic<std::uint64_t> n_restarts_{0};
  std::atomic<std::uint64_t> n_exits_{0};
  std::atomic<std::uint64_t> n_hangs_{0};
  std::atomic<std::uint64_t> n_gave_up_{0};
};

struct RouterConfig {
  /// Front listeners, same semantics as ServeConfig.
  std::string unix_socket;
  int tcp_port = -1;
  /// Per-request budget and per-attempt cap for the backhaul.
  std::uint64_t deadline_ms = 5000;
  std::uint64_t try_timeout_ms = 250;
  util::BackoffPolicy retry_backoff{};
  std::uint64_t seed = 0xf1ee7ULL;
  /// Deterministic fault script; empty = no chaos. kill/hang events
  /// need a supervisor; drop/delay work with static groups too.
  faults::ChaosPlan chaos;
  /// Shard topology: exactly one of these. A supervisor owns real
  /// processes; static_groups points at externally managed listeners
  /// (how the unit tests route to in-process Servers).
  Supervisor* supervisor = nullptr;
  std::vector<std::vector<Endpoint>> static_groups;
};

/// Monotonic totals since start(); exact. Mirrored to obs counters
/// fleet.* when observability is on.
struct FleetStats {
  std::uint64_t connections = 0;
  std::uint64_t requests = 0;      // predict requests admitted
  std::uint64_t responses = 0;     // predict responses relayed
  std::uint64_t errors = 0;        // typed error replies relayed/created
  std::uint64_t retries = 0;       // backhaul attempts after the first
  std::uint64_t failovers = 0;     // replica switches
  std::uint64_t busy_retries = 0;  // BUSY replies absorbed by retry
  std::uint64_t degraded = 0;      // kDegraded replies (deadline spent)
  std::uint64_t chaos_kills = 0;
  std::uint64_t chaos_hangs = 0;
  std::uint64_t chaos_drops = 0;
  std::uint64_t chaos_delays = 0;
};

class Router {
 public:
  explicit Router(RouterConfig config);
  ~Router();
  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bind front listeners and start accepting. The shard source
  /// (supervisor or static groups) must already be running; throws if
  /// neither or both are configured, or the chaos plan addresses shards
  /// outside the topology.
  void start();
  /// Close listeners, finish in-flight sessions, join. Idempotent.
  void stop();

  bool running() const { return running_.load(std::memory_order_acquire); }
  int tcp_port() const { return bound_tcp_port_; }
  std::size_t n_groups() const { return groups_.size(); }

  FleetStats stats() const;
  /// Transport-level defects the router absorbed or surfaced (degraded
  /// requests by terminal Reason, framing defects from clients).
  util::QuarantineReport quarantine() const;

 private:
  struct Session;

  void accept_loop();
  void session_loop(std::shared_ptr<Session> session);
  bool handle_frame(const std::shared_ptr<Session>& session,
                    const util::FrameHeader& header,
                    std::span<const std::uint8_t> payload);
  /// Fire every chaos event due at this admitted-request count.
  void apply_chaos(std::uint64_t request_count, Session& session);
  void note_quarantine(util::Reason reason, const std::string& detail);
  static bool write_frame(Session& session, std::string_view bytes);

  RouterConfig config_;
  std::vector<std::vector<Endpoint>> groups_;

  int unix_fd_ = -1;
  int tcp_fd_ = -1;
  int bound_tcp_port_ = -1;

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::thread accept_thread_;
  mutable std::mutex sessions_mu_;
  std::vector<std::thread> session_threads_;      // guarded by sessions_mu_
  std::vector<std::weak_ptr<Session>> sessions_;  // guarded by sessions_mu_

  std::mutex chaos_mu_;
  std::size_t chaos_cursor_ = 0;  // guarded by chaos_mu_

  mutable std::mutex quarantine_mu_;
  util::QuarantineReport quarantine_;  // guarded by quarantine_mu_

  RetryCounters retry_counters_;
  std::atomic<std::uint64_t> n_connections_{0};
  std::atomic<std::uint64_t> n_requests_{0};
  std::atomic<std::uint64_t> n_responses_{0};
  std::atomic<std::uint64_t> n_errors_{0};
  std::atomic<std::uint64_t> n_chaos_kills_{0};
  std::atomic<std::uint64_t> n_chaos_hangs_{0};
  std::atomic<std::uint64_t> n_chaos_drops_{0};
  std::atomic<std::uint64_t> n_chaos_delays_{0};
};

}  // namespace iotax::serve
