// Message bodies carried inside serve frames (src/util/frame.hpp): the
// predict request/response pair and the typed error reply. Encoding is
// exact — feature values and predictions travel as IEEE-754 bit
// patterns — so a served prediction is byte-for-byte the number the
// model computed, and the serve-vs-offline golden tests can demand
// bit-identity. Decoding is non-throwing and maps every defect onto the
// quarantine Reason vocabulary, mirroring the archive parsers.
//
// PredictRequest payload:
//   u16 model_index   registry slot chosen at `iotax serve` startup
//   u16 n_features    row width; must satisfy payload_len = 4 + 8*n
//   f64 * n_features  the feature row (order = taxonomy feature_matrix)
//
// PredictResponse payload:
//   u16 n_values      1 (point prediction) or 3 (mean, aleatory,
//                     epistemic — granted when the request set
//                     kFlagPredictDist and the model supports it)
//   f64 * n_values
//
// ErrorResponse payload:
//   u16 status        ServeStatus
//   u16 reason        util::Reason for frame/request defects;
//                     kNoReason (0xFFFF) otherwise
//   u32 detail_len    followed by that many bytes of human-readable text
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "src/util/frame.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::serve {

/// Why the daemon refused a request (beyond what a Reason code says).
enum class ServeStatus : std::uint16_t {
  kBusy = 1,          // admission control shed the request (max-inflight)
  kBadFrame = 2,      // framing defect; reason holds the Reason code
  kBadRequest = 3,    // well-framed but invalid payload; reason set
  kUnknownModel = 4,  // model_index outside the registry
  kShuttingDown = 5,  // daemon is draining; no new work accepted
  kInternal = 6,      // model threw during predict
  kDegraded = 7,      // fleet router: replica group unavailable after
                      // exhausting retries/failover within the deadline;
                      // reason maps the terminal transport failure
};

const char* serve_status_name(ServeStatus status);

inline constexpr std::uint16_t kNoReason = 0xFFFF;

struct PredictRequest {
  std::uint64_t request_id = 0;
  std::uint16_t model_index = 0;
  bool want_dist = false;
  /// kFlagShadow: also score the daemon's shadow model; the response
  /// carries values = {production, shadow} when one is configured (and
  /// just {production} when not — callers check values.size()).
  bool want_shadow = false;
  std::vector<double> features;
};

struct PredictResponse {
  std::uint64_t request_id = 0;
  /// 1 value (point) or 3 (mean, aleatory variance, epistemic variance).
  std::vector<double> values;
};

struct ErrorResponse {
  std::uint64_t request_id = 0;  // 0 when the defect predates an id
  ServeStatus status = ServeStatus::kInternal;
  /// Set for kBadFrame/kBadRequest; nullopt otherwise.
  std::optional<util::Reason> reason;
  std::string detail;
};

/// Administrative verbs carried by kControlRequest frames.
///
/// ControlRequest payload:
///   u16 op                   ControlOp
///   u16 model_index          registry slot the op targets
///   u64 min_shadow_requests  promote gate: refuse unless the shadow has
///                            scored at least this many requests (0 = no
///                            floor beyond "shadow configured")
///
/// ControlResponse payload:
///   u16 ok                   1 = op applied, 0 = refused
///   u64 generation           slot generation after the op
///   u64 shadow_requests      shadow divergence accounting at reply time
///   u64 shadow_diverged
///   f64 max_abs_divergence
///   u32 detail_len           followed by human-readable text (refusal
///                            reason, or the published model description)
enum class ControlOp : std::uint16_t {
  kPromote = 1,   // publish the shadow model into `model_index`
  kRollback = 2,  // restore the slot's previous publication
  kStatus = 3,    // report generation + shadow accounting, change nothing
};

struct ControlRequest {
  std::uint64_t request_id = 0;
  ControlOp op = ControlOp::kStatus;
  std::uint16_t model_index = 0;
  std::uint64_t min_shadow_requests = 0;
};

struct ControlResponse {
  std::uint64_t request_id = 0;
  bool ok = false;
  std::uint64_t generation = 0;
  std::uint64_t shadow_requests = 0;
  std::uint64_t shadow_diverged = 0;
  double max_abs_divergence = 0.0;
  std::string detail;
};

// -- encode (returns complete wire frames) ----------------------------------

std::string encode_predict_request(const PredictRequest& req);
std::string encode_predict_response(const PredictResponse& resp);
std::string encode_error_response(const ErrorResponse& err);
std::string encode_ping(std::uint64_t request_id);
std::string encode_pong(std::uint64_t request_id);
std::string encode_control_request(const ControlRequest& req);
std::string encode_control_response(const ControlResponse& resp);

// -- decode (payload given a decoded frame header) --------------------------

/// Parse a kPredictRequest payload. On failure returns false and fills
/// *err with the matching quarantine reason (size-mismatch for a length
/// disagreeing with n_features, non-finite-value for NaN/Inf features).
bool decode_predict_request(const util::FrameHeader& header,
                            std::span<const std::uint8_t> payload,
                            PredictRequest* out, ErrorResponse* err);

/// Parse a kPredictResponse payload (client side). False on malformed.
bool decode_predict_response(const util::FrameHeader& header,
                             std::span<const std::uint8_t> payload,
                             PredictResponse* out);

/// Parse a kErrorResponse payload (client side). False on malformed.
bool decode_error_response(const util::FrameHeader& header,
                           std::span<const std::uint8_t> payload,
                           ErrorResponse* out);

/// Parse a kControlRequest payload (server side). On failure returns
/// false and fills *err like decode_predict_request.
bool decode_control_request(const util::FrameHeader& header,
                            std::span<const std::uint8_t> payload,
                            ControlRequest* out, ErrorResponse* err);

/// Parse a kControlResponse payload (client side). False on malformed.
bool decode_control_response(const util::FrameHeader& header,
                             std::span<const std::uint8_t> payload,
                             ControlResponse* out);

}  // namespace iotax::serve
