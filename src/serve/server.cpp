#include "src/serve/server.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstring>
#include <stdexcept>

#include "src/data/matrix.hpp"
#include "src/ml/ensemble.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"

namespace iotax::serve {

using util::FrameDecode;
using util::FrameHeader;
using util::FrameType;
using util::Reason;

struct Server::Session {
  int fd = -1;
  std::mutex write_mu;
  std::atomic<bool> dead{false};

  ~Session() {
    if (fd >= 0) ::close(fd);
  }
};

/// One admitted request waiting for its batch.
struct Server::Pending {
  std::shared_ptr<Session> session;
  PredictRequest req;
  std::chrono::steady_clock::time_point t_enqueue;
};

namespace {

int make_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("serve: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("serve: socket(AF_UNIX) failed");
  ::unlink(path.c_str());  // stale socket from a previous run
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on unix socket " + path +
                             ": " + std::strerror(err));
  }
  return fd;
}

int make_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("serve: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("serve: cannot listen on TCP port " +
                             std::to_string(port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Server::Server(ServeConfig config) : config_(std::move(config)) {
  if (config_.batch_size == 0) config_.batch_size = 1;
  if (config_.max_inflight == 0) config_.max_inflight = 1;
}

Server::~Server() { stop(); }

void Server::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("serve: already running");
  }
  // A client that closes its read side mid-reply must cost us an EPIPE
  // errno on that one session, not a process-killing SIGPIPE. Writes
  // already pass MSG_NOSIGNAL, but belt-and-braces for any path (e.g. a
  // third-party lib) that writes without it.
  ::signal(SIGPIPE, SIG_IGN);
  for (const auto& path : config_.model_files) registry_.add(path);
  if (registry_.size() == 0) {
    throw std::runtime_error("serve: no model checkpoints given");
  }
  if (!config_.shadow_file.empty()) {
    if (config_.shadow_slot >= registry_.size()) {
      throw std::runtime_error(
          "serve: --shadow-slot " + std::to_string(config_.shadow_slot) +
          " outside registry of " + std::to_string(registry_.size()));
    }
    const std::uint64_t hash = ml::hash_model_file(config_.shadow_file);
    auto entry = std::make_shared<ml::ModelEntry>();
    entry->model = std::shared_ptr<const ml::Regressor>(
        ml::load_regressor_file(config_.shadow_file));
    entry->source = config_.shadow_file;
    entry->generation = 0;  // candidate: not yet published
    entry->params_hash = hash;
    const auto prod = registry_.entry(config_.shadow_slot);
    if (entry->model->n_features() != 0 && prod->model->n_features() != 0 &&
        entry->model->n_features() != prod->model->n_features()) {
      throw std::runtime_error(
          "serve: shadow model expects " +
          std::to_string(entry->model->n_features()) +
          " features but production slot " +
          std::to_string(config_.shadow_slot) + " expects " +
          std::to_string(prod->model->n_features()));
    }
    std::lock_guard<std::mutex> lock(shadow_mu_);
    shadow_ = std::move(entry);
  }
  queue_ = std::make_unique<util::BoundedQueue<Pending>>(config_.max_inflight);
  if (!config_.unix_socket.empty()) {
    unix_fd_ = make_unix_listener(config_.unix_socket);
  }
  if (config_.tcp_port >= 0) {
    tcp_fd_ = make_tcp_listener(config_.tcp_port, &bound_tcp_port_);
  }
  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    throw std::runtime_error("serve: no listener configured "
                             "(need --socket and/or --port)");
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
  batcher_thread_ = std::thread([this] { batcher_loop(); });
}

void Server::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    // Another thread is already draining; wait for it to finish.
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;
  }
  // 1. Stop accepting and close the listeners.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(config_.unix_socket.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  // 2. Stop the session readers (no new admissions). shutdown(SHUT_RD)
  // turns a blocked poll into an immediate EOF; pending responses still
  // flow out through the write side.
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& weak : sessions_) {
      if (const auto session = weak.lock()) {
        ::shutdown(session->fd, SHUT_RD);
      }
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    readers.swap(session_threads_);
  }
  for (auto& t : readers) t.join();
  // 3. Drain: the batcher answers every admitted request, then exits.
  queue_->close();
  if (batcher_thread_.joinable()) batcher_thread_.join();
  running_.store(false, std::memory_order_release);
}

ServeStats Server::stats() const {
  ServeStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.responses = n_responses_.load(std::memory_order_relaxed);
  s.batches = n_batches_.load(std::memory_order_relaxed);
  s.shed = n_shed_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.quarantined = n_quarantined_.load(std::memory_order_relaxed);
  s.shadow_requests = n_shadow_requests_.load(std::memory_order_relaxed);
  s.shadow_diverged = n_shadow_diverged_.load(std::memory_order_relaxed);
  s.promotions = n_promotions_.load(std::memory_order_relaxed);
  s.rollbacks = n_rollbacks_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    s.max_abs_divergence = max_abs_divergence_;
  }
  return s;
}

std::shared_ptr<const ml::ModelEntry> Server::shadow() const {
  std::lock_guard<std::mutex> lock(shadow_mu_);
  return shadow_;
}

util::QuarantineReport Server::quarantine() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantine_;
}

bool Server::write_frame(Session& session, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(session.write_mu);
  if (session.dead.load(std::memory_order_relaxed)) return false;
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(session.fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      session.dead.store(true, std::memory_order_relaxed);
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void Server::note_quarantine(Reason reason, const std::string& detail) {
  {
    std::lock_guard<std::mutex> lock(quarantine_mu_);
    util::QuarantineEntry entry;
    entry.reason = reason;
    entry.detail = detail;
    quarantine_.add(std::move(entry));
  }
  n_quarantined_.fetch_add(1, std::memory_order_relaxed);
  IOTAX_OBS_COUNT("serve.quarantined", 1);
}

void Server::send_error(const std::shared_ptr<Session>& session,
                        const ErrorResponse& err, bool count_as_error) {
  write_frame(*session, encode_error_response(err));
  if (count_as_error) {
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    IOTAX_OBS_COUNT("serve.errors", 1);
  } else {
    n_shed_.fetch_add(1, std::memory_order_relaxed);
    IOTAX_OBS_COUNT("serve.shed", 1);
  }
}

void Server::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    int n_fds = 0;
    if (unix_fd_ >= 0) fds[n_fds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n_fds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, static_cast<nfds_t>(n_fds), 100);
    if (rc <= 0) continue;
    for (int i = 0; i < n_fds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) continue;
      auto session = std::make_shared<Session>();
      session->fd = cfd;
      n_connections_.fetch_add(1, std::memory_order_relaxed);
      IOTAX_OBS_COUNT("serve.connections", 1);
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session = std::move(session)] { session_loop(session); });
    }
  }
}

void Server::session_loop(std::shared_ptr<Session> session) {
  std::vector<std::uint8_t> buf;
  std::size_t start = 0;  // parse cursor into buf
  std::uint8_t chunk[16384];
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{session->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      // EOF. Anything left in the buffer is a frame the peer never
      // finished — the wire-level analogue of a truncated archive.
      // During drain the cut is ours, not the peer's: stay silent.
      if (start < buf.size() && !stopping_.load(std::memory_order_acquire)) {
        note_quarantine(Reason::kTruncated,
                        "connection closed inside a frame (" +
                            std::to_string(buf.size() - start) +
                            " byte(s) of partial frame)");
        ErrorResponse err;
        err.status = ServeStatus::kBadFrame;
        err.reason = Reason::kTruncated;
        err.detail = "truncated frame";
        send_error(session, err);
      }
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    bool close_session = false;
    while (true) {
      const auto view = std::span<const std::uint8_t>(buf).subspan(start);
      const FrameDecode dec = util::decode_frame(view);
      if (dec.status == FrameDecode::Status::kNeedMore) break;
      if (dec.status == FrameDecode::Status::kBad) {
        // Framing is lost — reply with the typed defect and close; the
        // daemon itself keeps serving every other connection.
        note_quarantine(dec.reason, dec.detail);
        ErrorResponse err;
        err.status = ServeStatus::kBadFrame;
        err.reason = dec.reason;
        err.detail = dec.detail;
        send_error(session, err);
        close_session = true;
        break;
      }
      const auto payload =
          view.subspan(FrameHeader::kWireSize,
                       dec.header.payload_len);
      if (!handle_frame(session, dec.header, payload)) {
        close_session = true;
        break;
      }
      start += dec.consumed;
    }
    if (close_session) break;
    // Compact the consumed prefix once it dominates the buffer.
    if (start > 4096 && start * 2 > buf.size()) {
      buf.erase(buf.begin(), buf.begin() + static_cast<long>(start));
      start = 0;
    }
  }
}

bool Server::handle_frame(const std::shared_ptr<Session>& session,
                          const FrameHeader& header,
                          std::span<const std::uint8_t> payload) {
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kPing:
      write_frame(*session, encode_pong(header.request_id));
      return true;
    case FrameType::kPredictRequest:
      break;
    case FrameType::kControlRequest: {
      ControlRequest creq;
      ErrorResponse cerr;
      if (!decode_control_request(header, payload, &creq, &cerr)) {
        note_quarantine(*cerr.reason, cerr.detail);
        send_error(session, cerr);
        return true;
      }
      handle_control(session, creq);
      return true;
    }
    default: {
      // Well-framed but not something a client may send. The frame
      // boundary is intact, so the connection survives.
      note_quarantine(Reason::kMalformedHeader,
                      "unexpected frame type " +
                          std::to_string(header.type));
      ErrorResponse err;
      err.request_id = header.request_id;
      err.status = ServeStatus::kBadFrame;
      err.reason = Reason::kMalformedHeader;
      err.detail = "unexpected frame type";
      send_error(session, err);
      return true;
    }
  }

  Pending pending;
  pending.session = session;
  ErrorResponse err;
  if (!decode_predict_request(header, payload, &pending.req, &err)) {
    note_quarantine(*err.reason, err.detail);
    send_error(session, err);
    return true;
  }
  if (pending.req.model_index >= registry_.size()) {
    err.request_id = header.request_id;
    err.status = ServeStatus::kUnknownModel;
    err.reason.reset();
    err.detail = "model index " + std::to_string(pending.req.model_index) +
                 " outside registry of " + std::to_string(registry_.size());
    send_error(session, err);
    return true;
  }
  // Snapshot the slot's current publication: a concurrent promote can
  // swap the slot, but this request validated (and will score) against a
  // coherent entry that the shared_ptr keeps alive.
  const auto entry = registry_.entry(pending.req.model_index);
  const auto& model = *entry->model;
  if (model.n_features() != 0 &&
      pending.req.features.size() != model.n_features()) {
    err.request_id = header.request_id;
    err.status = ServeStatus::kBadRequest;
    err.reason = Reason::kSizeMismatch;
    err.detail = "model expects " + std::to_string(model.n_features()) +
                 " features, request carries " +
                 std::to_string(pending.req.features.size());
    note_quarantine(Reason::kSizeMismatch, err.detail);
    send_error(session, err);
    return true;
  }
  if (stopping_.load(std::memory_order_acquire)) {
    err.request_id = header.request_id;
    err.status = ServeStatus::kShuttingDown;
    err.reason.reset();
    err.detail = "daemon is draining";
    send_error(session, err, /*count_as_error=*/false);
    return true;
  }
  // Admission control: past max-inflight the request is shed with a
  // typed BUSY reply — the client backs off, the daemon never queues
  // unboundedly.
  if (inflight_.fetch_add(1, std::memory_order_acq_rel) >=
      config_.max_inflight) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    err.request_id = header.request_id;
    err.status = ServeStatus::kBusy;
    err.reason.reset();
    err.detail = "max-inflight " + std::to_string(config_.max_inflight) +
                 " reached";
    send_error(session, err, /*count_as_error=*/false);
    return true;
  }
  pending.t_enqueue = std::chrono::steady_clock::now();
  if (!queue_->try_push(std::move(pending))) {
    inflight_.fetch_sub(1, std::memory_order_acq_rel);
    err.request_id = header.request_id;
    err.status = queue_->closed() ? ServeStatus::kShuttingDown
                                  : ServeStatus::kBusy;
    err.reason.reset();
    err.detail = "request queue full";
    send_error(session, err, /*count_as_error=*/false);
    return true;
  }
  n_requests_.fetch_add(1, std::memory_order_relaxed);
  IOTAX_OBS_COUNT("serve.requests", 1);
  IOTAX_OBS_GAUGE("serve.inflight",
                  static_cast<double>(
                      inflight_.load(std::memory_order_relaxed)));
  return true;
}

void Server::handle_control(const std::shared_ptr<Session>& session,
                            const ControlRequest& req) {
  ControlResponse resp;
  resp.request_id = req.request_id;
  resp.shadow_requests = n_shadow_requests_.load(std::memory_order_relaxed);
  resp.shadow_diverged = n_shadow_diverged_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(shadow_mu_);
    resp.max_abs_divergence = max_abs_divergence_;
  }
  if (req.model_index >= registry_.size()) {
    resp.ok = false;
    resp.detail = "model index " + std::to_string(req.model_index) +
                  " outside registry of " + std::to_string(registry_.size());
    write_frame(*session, encode_control_response(resp));
    return;
  }
  switch (req.op) {
    case ControlOp::kStatus: {
      const auto entry = registry_.entry(req.model_index);
      resp.ok = true;
      resp.generation = entry->generation;
      resp.detail = entry->model->name() + " from " + entry->source +
                    " (params hash " +
                    ml::format_params_hash(entry->params_hash) + ")";
      break;
    }
    case ControlOp::kPromote: {
      // Promotion gate: a shadow must exist, target the requested slot,
      // and have scored enough live traffic. The publish itself is one
      // registry generation bump; in-flight requests keep their entry
      // snapshots and finish on the model they validated against.
      std::shared_ptr<const ml::ModelEntry> candidate;
      {
        std::lock_guard<std::mutex> lock(shadow_mu_);
        candidate = shadow_;
      }
      if (candidate == nullptr) {
        resp.ok = false;
        resp.generation = registry_.entry(req.model_index)->generation;
        resp.detail = "no shadow candidate loaded";
        break;
      }
      if (req.model_index != config_.shadow_slot) {
        resp.ok = false;
        resp.generation = registry_.entry(req.model_index)->generation;
        resp.detail = "shadow is a candidate for slot " +
                      std::to_string(config_.shadow_slot) + ", not " +
                      std::to_string(req.model_index);
        break;
      }
      if (resp.shadow_requests < req.min_shadow_requests) {
        resp.ok = false;
        resp.generation = registry_.entry(req.model_index)->generation;
        resp.detail = "shadow has scored " +
                      std::to_string(resp.shadow_requests) + " of required " +
                      std::to_string(req.min_shadow_requests) + " request(s)";
        break;
      }
      const std::uint64_t generation =
          registry_.publish(req.model_index, candidate->model,
                            candidate->source, candidate->params_hash);
      {
        std::lock_guard<std::mutex> lock(shadow_mu_);
        shadow_.reset();  // consumed; further kFlagShadow rows answer {prod}
      }
      n_promotions_.fetch_add(1, std::memory_order_relaxed);
      IOTAX_OBS_COUNT("serve.promotions", 1);
      IOTAX_OBS_GAUGE("serve.generation", static_cast<double>(generation));
      resp.ok = true;
      resp.generation = generation;
      resp.detail = "promoted " + candidate->source + " (params hash " +
                    ml::format_params_hash(candidate->params_hash) +
                    ") as generation " + std::to_string(generation);
      break;
    }
    case ControlOp::kRollback: {
      try {
        const auto restored = registry_.rollback(req.model_index);
        n_rollbacks_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("serve.rollbacks", 1);
        IOTAX_OBS_GAUGE("serve.generation",
                        static_cast<double>(restored->generation));
        resp.ok = true;
        resp.generation = restored->generation;
        resp.detail = "rolled back to " + restored->source +
                      " (params hash " +
                      ml::format_params_hash(restored->params_hash) +
                      ") as generation " +
                      std::to_string(restored->generation);
      } catch (const std::exception& e) {
        resp.ok = false;
        resp.generation = registry_.entry(req.model_index)->generation;
        resp.detail = e.what();
      }
      break;
    }
  }
  write_frame(*session, encode_control_response(resp));
}

void Server::batcher_loop() {
  while (true) {
    auto batch = queue_->pop_batch(
        config_.batch_size, std::chrono::microseconds(config_.batch_wait_us));
    if (batch.empty()) break;  // closed and drained
    run_batch(std::move(batch));
  }
}

void Server::run_batch(std::vector<Pending>&& batch) {
  IOTAX_TRACE_SPAN("serve.batch");
  obs::span_arg("rows", static_cast<double>(batch.size()));
  n_batches_.fetch_add(1, std::memory_order_relaxed);
  IOTAX_OBS_COUNT("serve.batches", 1);
  if (obs::enabled()) {
    // Rows per executed batch: how much batching the admission window
    // actually achieves, and thus how much of the packed-kernel batch
    // speedup each request sees (wide buckets — sizes are powers-ish).
    static obs::Histogram& batch_rows_hist =
        obs::MetricsRegistry::global().histogram(
            "serve.batch_rows", {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0,
                                 128.0, 256.0, 512.0});
    batch_rows_hist.observe(static_cast<double>(batch.size()));
  }

  // Group batch slots by (model, row width, dist?, shadow?) in
  // first-appearance order, then run each group through one
  // MatrixView-backed predict.
  struct Group {
    std::uint16_t model_index;
    std::size_t width;
    bool dist;
    bool shadow;
    std::vector<std::size_t> slots;
  };
  std::vector<Group> groups;
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& req = batch[i].req;
    Group* group = nullptr;
    for (auto& g : groups) {
      if (g.model_index == req.model_index &&
          g.width == req.features.size() && g.dist == req.want_dist &&
          g.shadow == req.want_shadow) {
        group = &g;
        break;
      }
    }
    if (group == nullptr) {
      groups.push_back(Group{req.model_index, req.features.size(),
                             req.want_dist, req.want_shadow, {}});
      group = &groups.back();
    }
    group->slots.push_back(i);
  }

  for (const auto& group : groups) {
    // Entry snapshot: a promote landing mid-batch swaps the registry
    // slot, but this group finishes on the model its requests were
    // admitted against — no in-flight request is dropped or re-scored.
    const auto entry = registry_.entry(group.model_index);
    const auto& model = *entry->model;
    // Shadow scoring applies to kFlagShadow point predictions against
    // the candidate's slot; dist requests keep their 3-value contract.
    std::shared_ptr<const ml::ModelEntry> shadow_entry;
    if (group.shadow && !group.dist &&
        group.model_index == config_.shadow_slot) {
      std::lock_guard<std::mutex> lock(shadow_mu_);
      shadow_entry = shadow_;
    }
    data::Matrix x(group.slots.size(), group.width);
    for (std::size_t r = 0; r < group.slots.size(); ++r) {
      const auto& feats = batch[group.slots[r]].req.features;
      auto row = x.mutable_row(r);
      for (std::size_t c = 0; c < group.width; ++c) row[c] = feats[c];
    }
    std::vector<PredictResponse> responses(group.slots.size());
    bool ok = true;
    try {
      // A dist request against an ensemble gets the full decomposition;
      // any other model family answers with its point prediction. Both
      // run the ordinary batch kernels, so a served value is bit-equal
      // to what offline `iotax predict` computes for the same row.
      const auto* ensemble =
          group.dist ? dynamic_cast<const ml::DeepEnsemble*>(&model) : nullptr;
      if (ensemble != nullptr) {
        const auto uq = ensemble->predict_uncertainty(x);
        for (std::size_t r = 0; r < group.slots.size(); ++r) {
          responses[r].values = {uq.mean[r], uq.aleatory[r], uq.epistemic[r]};
        }
      } else if (shadow_entry != nullptr) {
        // Production and shadow score the identical Matrix through the
        // same batch kernels, so both values are bit-equal to what
        // offline `iotax predict` computes for the same rows — which is
        // what lets divergence accounting be exact rather than
        // tolerance-based.
        const auto pred = model.predict(x);
        const auto spred = shadow_entry->model->predict(x);
        std::uint64_t diverged = 0;
        double max_abs = 0.0;
        for (std::size_t r = 0; r < group.slots.size(); ++r) {
          responses[r].values = {pred[r], spred[r]};
          if (std::memcmp(&pred[r], &spred[r], sizeof(double)) != 0) {
            ++diverged;
            const double d = std::abs(pred[r] - spred[r]);
            if (d > max_abs) max_abs = d;
          }
        }
        n_shadow_requests_.fetch_add(group.slots.size(),
                                     std::memory_order_relaxed);
        IOTAX_OBS_COUNT("shadow.requests",
                        static_cast<std::uint64_t>(group.slots.size()));
        if (diverged > 0) {
          n_shadow_diverged_.fetch_add(diverged, std::memory_order_relaxed);
          IOTAX_OBS_COUNT("shadow.diverged", diverged);
        }
        {
          std::lock_guard<std::mutex> lock(shadow_mu_);
          if (max_abs > max_abs_divergence_) max_abs_divergence_ = max_abs;
          IOTAX_OBS_GAUGE("shadow.max_abs_divergence", max_abs_divergence_);
        }
      } else {
        const auto pred = model.predict(x);
        for (std::size_t r = 0; r < group.slots.size(); ++r) {
          responses[r].values = {pred[r]};
        }
      }
    } catch (const std::exception& e) {
      ok = false;
      for (const auto slot : group.slots) {
        ErrorResponse err;
        err.request_id = batch[slot].req.request_id;
        err.status = ServeStatus::kInternal;
        err.detail = e.what();
        send_error(batch[slot].session, err);
        inflight_.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    if (!ok) continue;
    const auto now = std::chrono::steady_clock::now();
    for (std::size_t r = 0; r < group.slots.size(); ++r) {
      const auto slot = group.slots[r];
      responses[r].request_id = batch[slot].req.request_id;
      write_frame(*batch[slot].session, encode_predict_response(responses[r]));
      inflight_.fetch_sub(1, std::memory_order_acq_rel);
      n_responses_.fetch_add(1, std::memory_order_relaxed);
      IOTAX_OBS_COUNT("serve.responses", 1);
      if (obs::enabled()) {
        const double ms =
            std::chrono::duration<double, std::milli>(
                now - batch[slot].t_enqueue)
                .count();
        IOTAX_OBS_HIST_MS("serve.request_ms", ms);
      }
    }
  }
  IOTAX_OBS_GAUGE("serve.inflight",
                  static_cast<double>(
                      inflight_.load(std::memory_order_relaxed)));
}

}  // namespace iotax::serve
