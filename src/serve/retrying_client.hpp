// RetryingClient: the fleet's answer to "a shard just died mid-load".
// Wraps the blocking Client with a per-request deadline split across
// attempts, jittered exponential backoff, BUSY-aware retry, and replica
// failover over an endpoint list. One instance fronts one replica group
// and is single-threaded by design — the router gives each session its
// own instance per group, so there is no cross-request reply
// interleaving to untangle.
//
// Outcome contract: predict() returns either the shard's own answer
// (success or a typed model-level error, both passed through verbatim)
// or, when every replica stayed unreachable past the deadline, a
// synthesized kDegraded error carrying the terminal transport Reason
// (kDeadlineExpired for silence, kConnectionReset for a vanished peer).
// It never throws for peer failures — only for caller bugs.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "src/serve/client.hpp"
#include "src/util/backoff.hpp"
#include "src/util/rng.hpp"

namespace iotax::serve {

/// Where a shard listens. Stable across shard restarts (the supervisor
/// rebinds the same socket path / port), which is what makes failover +
/// retry converge back onto a freshly restarted replica.
struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };
  Kind kind = Kind::kUnix;
  std::string path;  // kUnix
  std::string host;  // kTcp
  std::uint16_t port = 0;

  static Endpoint unix_path(std::string p);
  static Endpoint tcp(std::string host, std::uint16_t port);
  std::string describe() const;
};

struct RetryPolicy {
  /// Total per-request budget across connects, retries and failovers.
  std::uint64_t deadline_ms = 5000;
  /// Per-attempt cap on connect and first-byte waits; keeps one hung
  /// replica from eating the whole budget before failover.
  std::uint64_t try_timeout_ms = 250;
  util::BackoffPolicy backoff{};
};

/// Shared tallies, aggregated across every RetryingClient the router
/// hands out (sessions increment concurrently; atomics keep it exact).
struct RetryCounters {
  std::atomic<std::uint64_t> retries{0};      // attempts after the first
  std::atomic<std::uint64_t> failovers{0};    // replica switches
  std::atomic<std::uint64_t> busy_retries{0}; // BUSY replies retried
  std::atomic<std::uint64_t> degraded{0};     // deadlines fully exhausted
};

class RetryingClient {
 public:
  struct Result {
    bool ok = false;
    PredictResponse response;  // valid when ok
    ErrorResponse error;       // valid when !ok
  };

  /// `endpoints` is the replica list for one hash slot (must be
  /// non-empty). `rng` seeds the jitter stream; `counters` may be null.
  RetryingClient(std::vector<Endpoint> endpoints, RetryPolicy policy,
                 util::Rng rng, RetryCounters* counters = nullptr);

  /// One request, synchronously, under the policy deadline.
  Result predict(const PredictRequest& req);

  /// Health probe: ping the current replica only (no failover — the
  /// supervisor wants the verdict for a *specific* shard). True on a
  /// matching pong within `timeout_ms`.
  bool ping(std::uint64_t request_id, std::uint64_t timeout_ms);

  /// Drop the live connection (chaos hook for the "drop" action and the
  /// stale-reply guard after timeouts).
  void disconnect();

  std::size_t current_replica() const { return current_; }
  const std::vector<Endpoint>& endpoints() const { return endpoints_; }

 private:
  /// Connect `conn_` to the current replica if needed. Throws like
  /// Client::connect_* on failure.
  void ensure_connected(std::uint64_t timeout_ms);
  void failover();

  std::vector<Endpoint> endpoints_;
  RetryPolicy policy_;
  util::Rng rng_;
  RetryCounters* counters_;
  Client conn_;
  std::size_t current_ = 0;
};

}  // namespace iotax::serve
