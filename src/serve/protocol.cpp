#include "src/serve/protocol.hpp"

#include <cmath>

namespace iotax::serve {

using util::FrameFlag;
using util::FrameHeader;
using util::FrameType;

const char* serve_status_name(ServeStatus status) {
  switch (status) {
    case ServeStatus::kBusy: return "busy";
    case ServeStatus::kBadFrame: return "bad-frame";
    case ServeStatus::kBadRequest: return "bad-request";
    case ServeStatus::kUnknownModel: return "unknown-model";
    case ServeStatus::kShuttingDown: return "shutting-down";
    case ServeStatus::kInternal: return "internal";
    case ServeStatus::kDegraded: return "degraded";
  }
  return "unknown";
}

std::string encode_predict_request(const PredictRequest& req) {
  std::string payload;
  payload.reserve(4 + 8 * req.features.size());
  util::put_u16(&payload, req.model_index);
  util::put_u16(&payload, static_cast<std::uint16_t>(req.features.size()));
  for (const double v : req.features) util::put_f64(&payload, v);
  std::uint8_t flags = 0;
  if (req.want_dist) flags |= FrameFlag::kFlagPredictDist;
  if (req.want_shadow) flags |= FrameFlag::kFlagShadow;
  return util::encode_frame(FrameType::kPredictRequest, flags,
                            req.request_id, payload);
}

std::string encode_predict_response(const PredictResponse& resp) {
  std::string payload;
  payload.reserve(2 + 8 * resp.values.size());
  util::put_u16(&payload, static_cast<std::uint16_t>(resp.values.size()));
  for (const double v : resp.values) util::put_f64(&payload, v);
  return util::encode_frame(FrameType::kPredictResponse, 0, resp.request_id,
                            payload);
}

std::string encode_error_response(const ErrorResponse& err) {
  std::string payload;
  util::put_u16(&payload, static_cast<std::uint16_t>(err.status));
  util::put_u16(&payload, err.reason.has_value()
                              ? static_cast<std::uint16_t>(*err.reason)
                              : kNoReason);
  util::put_u32(&payload, static_cast<std::uint32_t>(err.detail.size()));
  payload.append(err.detail);
  return util::encode_frame(FrameType::kErrorResponse, 0, err.request_id,
                            payload);
}

std::string encode_ping(std::uint64_t request_id) {
  return util::encode_frame(FrameType::kPing, 0, request_id, {});
}

std::string encode_pong(std::uint64_t request_id) {
  return util::encode_frame(FrameType::kPong, 0, request_id, {});
}

std::string encode_control_request(const ControlRequest& req) {
  std::string payload;
  util::put_u16(&payload, static_cast<std::uint16_t>(req.op));
  util::put_u16(&payload, req.model_index);
  util::put_u64(&payload, req.min_shadow_requests);
  return util::encode_frame(FrameType::kControlRequest, 0, req.request_id,
                            payload);
}

std::string encode_control_response(const ControlResponse& resp) {
  std::string payload;
  util::put_u16(&payload, resp.ok ? 1 : 0);
  util::put_u64(&payload, resp.generation);
  util::put_u64(&payload, resp.shadow_requests);
  util::put_u64(&payload, resp.shadow_diverged);
  util::put_f64(&payload, resp.max_abs_divergence);
  util::put_u32(&payload, static_cast<std::uint32_t>(resp.detail.size()));
  payload.append(resp.detail);
  return util::encode_frame(FrameType::kControlResponse, 0, resp.request_id,
                            payload);
}

bool decode_predict_request(const FrameHeader& header,
                            std::span<const std::uint8_t> payload,
                            PredictRequest* out, ErrorResponse* err) {
  err->request_id = header.request_id;
  err->status = ServeStatus::kBadRequest;
  out->request_id = header.request_id;
  out->want_dist = (header.flags & FrameFlag::kFlagPredictDist) != 0;
  out->want_shadow = (header.flags & FrameFlag::kFlagShadow) != 0;
  std::size_t pos = 0;
  std::uint16_t n_features = 0;
  if (!util::get_u16(payload, &pos, &out->model_index) ||
      !util::get_u16(payload, &pos, &n_features)) {
    err->reason = util::Reason::kTruncated;
    err->detail = "request payload shorter than its fixed fields";
    return false;
  }
  if (payload.size() != 4 + 8 * static_cast<std::size_t>(n_features)) {
    err->reason = util::Reason::kSizeMismatch;
    err->detail = "payload length " + std::to_string(payload.size()) +
                  " does not match n_features " + std::to_string(n_features);
    return false;
  }
  out->features.resize(n_features);
  for (std::size_t i = 0; i < n_features; ++i) {
    util::get_f64(payload, &pos, &out->features[i]);
    if (!std::isfinite(out->features[i])) {
      err->reason = util::Reason::kNonFiniteValue;
      err->detail = "feature " + std::to_string(i) + " is not finite";
      return false;
    }
  }
  return true;
}

bool decode_predict_response(const FrameHeader& header,
                             std::span<const std::uint8_t> payload,
                             PredictResponse* out) {
  out->request_id = header.request_id;
  std::size_t pos = 0;
  std::uint16_t n_values = 0;
  if (!util::get_u16(payload, &pos, &n_values)) return false;
  if (payload.size() != 2 + 8 * static_cast<std::size_t>(n_values)) {
    return false;
  }
  out->values.resize(n_values);
  for (std::size_t i = 0; i < n_values; ++i) {
    util::get_f64(payload, &pos, &out->values[i]);
  }
  return true;
}

bool decode_error_response(const FrameHeader& header,
                           std::span<const std::uint8_t> payload,
                           ErrorResponse* out) {
  out->request_id = header.request_id;
  std::size_t pos = 0;
  std::uint16_t status = 0;
  std::uint16_t reason = 0;
  std::uint32_t detail_len = 0;
  if (!util::get_u16(payload, &pos, &status) ||
      !util::get_u16(payload, &pos, &reason) ||
      !util::get_u32(payload, &pos, &detail_len)) {
    return false;
  }
  if (payload.size() != 8 + static_cast<std::size_t>(detail_len)) return false;
  out->status = static_cast<ServeStatus>(status);
  if (reason == kNoReason || reason >= util::kReasonCount) {
    out->reason.reset();
  } else {
    out->reason = static_cast<util::Reason>(reason);
  }
  out->detail.assign(reinterpret_cast<const char*>(payload.data()) + pos,
                     detail_len);
  return true;
}

bool decode_control_request(const FrameHeader& header,
                            std::span<const std::uint8_t> payload,
                            ControlRequest* out, ErrorResponse* err) {
  err->request_id = header.request_id;
  err->status = ServeStatus::kBadRequest;
  out->request_id = header.request_id;
  std::size_t pos = 0;
  std::uint16_t op = 0;
  if (!util::get_u16(payload, &pos, &op) ||
      !util::get_u16(payload, &pos, &out->model_index) ||
      !util::get_u64(payload, &pos, &out->min_shadow_requests)) {
    err->reason = util::Reason::kTruncated;
    err->detail = "control payload shorter than its fixed fields";
    return false;
  }
  if (payload.size() != 12) {
    err->reason = util::Reason::kSizeMismatch;
    err->detail = "control payload length " + std::to_string(payload.size()) +
                  " (expected 12)";
    return false;
  }
  if (op < static_cast<std::uint16_t>(ControlOp::kPromote) ||
      op > static_cast<std::uint16_t>(ControlOp::kStatus)) {
    err->reason = util::Reason::kBadNumber;
    err->detail = "unknown control op " + std::to_string(op);
    return false;
  }
  out->op = static_cast<ControlOp>(op);
  return true;
}

bool decode_control_response(const FrameHeader& header,
                             std::span<const std::uint8_t> payload,
                             ControlResponse* out) {
  out->request_id = header.request_id;
  std::size_t pos = 0;
  std::uint16_t ok = 0;
  std::uint32_t detail_len = 0;
  if (!util::get_u16(payload, &pos, &ok) ||
      !util::get_u64(payload, &pos, &out->generation) ||
      !util::get_u64(payload, &pos, &out->shadow_requests) ||
      !util::get_u64(payload, &pos, &out->shadow_diverged) ||
      !util::get_f64(payload, &pos, &out->max_abs_divergence) ||
      !util::get_u32(payload, &pos, &detail_len)) {
    return false;
  }
  if (payload.size() != pos + static_cast<std::size_t>(detail_len)) {
    return false;
  }
  out->ok = ok != 0;
  out->detail.assign(reinterpret_cast<const char*>(payload.data()) + pos,
                     detail_len);
  return true;
}

}  // namespace iotax::serve
