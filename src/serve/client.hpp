// Blocking client for the serve protocol, shared by the `iotax query`
// CLI, the serve robustness tests, bench_serve and the fleet router's
// backhaul (via RetryingClient). Thin by design: it connects, writes
// frames, and reads back framed replies; pipelining is the caller's
// loop (send k requests, then match replies by id).
//
// Failure model: connect and recv honour optional deadlines. A peer
// that is *slow* past the deadline raises the typed Timeout error
// (Reason::kDeadlineExpired) — distinct from a peer that *vanished*,
// which surfaces as a plain transport error — so retry loops can tell
// "hung, close and fail over" apart from "dead, reconnect".
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>

#include "src/serve/protocol.hpp"

namespace iotax::serve {

class Client {
 public:
  /// A connect or recv deadline passed without the peer answering.
  /// Carries Reason::kDeadlineExpired for quarantine-vocabulary mapping.
  class Timeout : public std::runtime_error {
   public:
    explicit Timeout(const std::string& what) : std::runtime_error(what) {}
    static constexpr util::Reason kReason = util::Reason::kDeadlineExpired;
  };

  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a Unix-domain / TCP serve listener. Throws
  /// std::runtime_error (with errno text) when the daemon is not there,
  /// Timeout when connect_timeout_ms > 0 elapses first (0 = block).
  static Client connect_unix(const std::string& path,
                             std::uint64_t connect_timeout_ms = 0);
  static Client connect_tcp(const std::string& host, std::uint16_t port,
                            std::uint64_t connect_timeout_ms = 0);

  bool connected() const { return fd_ >= 0; }
  void close();
  /// Half-close: signal end-of-requests while still reading replies —
  /// how the truncation tests hand the daemon a partial frame.
  void shutdown_write();

  /// Idle-receive deadline: read_reply throws Timeout when the daemon
  /// goes silent for longer than `ms` (SO_RCVTIMEO; 0 restores blocking
  /// forever). This is per recv gap, not a total-transfer budget.
  void set_recv_timeout_ms(std::uint64_t ms);
  std::uint64_t recv_timeout_ms() const { return recv_timeout_ms_; }

  /// Raw bytes on the wire (tests craft partial/corrupt frames with it).
  void send_raw(std::string_view bytes);
  void send_predict(const PredictRequest& req);
  void send_ping(std::uint64_t request_id);
  void send_control(const ControlRequest& req);

  struct Reply {
    util::FrameType type = util::FrameType::kPong;
    std::uint64_t request_id = 0;
    PredictResponse predict;  // valid when type == kPredictResponse
    ErrorResponse error;      // valid when type == kErrorResponse
    ControlResponse control;  // valid when type == kControlResponse
  };

  /// Block for the next reply frame. Returns false on clean EOF; throws
  /// Timeout past the recv deadline, std::runtime_error on transport
  /// errors or a reply the codec cannot parse.
  bool read_reply(Reply* out);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;
  std::size_t start_ = 0;
  std::uint64_t recv_timeout_ms_ = 0;
};

}  // namespace iotax::serve
