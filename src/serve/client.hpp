// Blocking client for the serve protocol, shared by the `iotax query`
// CLI, the serve robustness tests, and bench_serve. Thin by design: it
// connects, writes frames, and reads back framed replies; pipelining is
// the caller's loop (send k requests, then match replies by id).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "src/serve/protocol.hpp"

namespace iotax::serve {

class Client {
 public:
  Client() = default;
  ~Client();
  Client(Client&& other) noexcept;
  Client& operator=(Client&& other) noexcept;
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connect to a Unix-domain / TCP serve listener. Throws
  /// std::runtime_error (with errno text) when the daemon is not there.
  static Client connect_unix(const std::string& path);
  static Client connect_tcp(const std::string& host, std::uint16_t port);

  bool connected() const { return fd_ >= 0; }
  void close();
  /// Half-close: signal end-of-requests while still reading replies —
  /// how the truncation tests hand the daemon a partial frame.
  void shutdown_write();

  /// Raw bytes on the wire (tests craft partial/corrupt frames with it).
  void send_raw(std::string_view bytes);
  void send_predict(const PredictRequest& req);
  void send_ping(std::uint64_t request_id);
  void send_control(const ControlRequest& req);

  struct Reply {
    util::FrameType type = util::FrameType::kPong;
    std::uint64_t request_id = 0;
    PredictResponse predict;  // valid when type == kPredictResponse
    ErrorResponse error;      // valid when type == kErrorResponse
    ControlResponse control;  // valid when type == kControlResponse
  };

  /// Block for the next reply frame. Returns false on clean EOF; throws
  /// on transport errors or a reply the codec cannot parse.
  bool read_reply(Reply* out);

 private:
  explicit Client(int fd) : fd_(fd) {}

  int fd_ = -1;
  std::string buf_;
  std::size_t start_ = 0;
};

}  // namespace iotax::serve
