#include "src/serve/fleet.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/prctl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/un.h>
#include <sys/wait.h>
#include <netinet/in.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <set>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/serve/client.hpp"

namespace iotax::serve {

using util::Deadline;
using util::FrameDecode;
using util::FrameHeader;
using util::FrameType;
using util::Reason;

std::size_t fleet_slot(const PredictRequest& req, std::size_t n_groups) {
  if (n_groups <= 1) return 0;
  // FNV-1a over the request's routing identity: the model index and the
  // feature doubles' exact bit patterns. Bit patterns, not values, so
  // -0.0 and 0.0 route consistently with how the answer is computed.
  std::uint64_t h = 14695981039346656037ULL;
  const auto mix = [&h](std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h ^= (v >> (8 * i)) & 0xffULL;
      h *= 1099511628211ULL;
    }
  };
  mix(req.model_index);
  for (const double f : req.features) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &f, sizeof(bits));
    mix(bits);
  }
  return static_cast<std::size_t>(h % n_groups);
}

// ---------------------------------------------------------------------------
// Supervisor
// ---------------------------------------------------------------------------

namespace {

bool file_exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// One health probe: connect, ping, expect the matching pong, all
/// within `timeout_ms`. Any failure mode (refused, hung, garbage) is
/// simply "not healthy" — the caller decides whether that means dead
/// or hung by asking the process itself.
bool ping_endpoint(const Endpoint& ep, std::uint64_t timeout_ms,
                   std::uint64_t request_id) {
  try {
    Client conn = ep.kind == Endpoint::Kind::kUnix
                      ? Client::connect_unix(ep.path, timeout_ms)
                      : Client::connect_tcp(ep.host, ep.port, timeout_ms);
    conn.set_recv_timeout_ms(timeout_ms);
    conn.send_ping(request_id);
    Client::Reply reply;
    if (!conn.read_reply(&reply)) return false;
    return reply.type == FrameType::kPong && reply.request_id == request_id;
  } catch (const std::exception&) {
    return false;
  }
}

}  // namespace

Supervisor::Supervisor(SupervisorConfig config) : config_(std::move(config)) {
  if (config_.n_groups == 0 || config_.n_replicas == 0) {
    throw std::invalid_argument("fleet: need >= 1 group and >= 1 replica");
  }
  if (config_.model_files.empty()) {
    throw std::invalid_argument("fleet: --models needs at least one file");
  }
  if (config_.shard_dir.empty()) {
    throw std::invalid_argument("fleet: shard_dir must be set");
  }
  if (config_.iotax_bin.empty()) {
    throw std::invalid_argument("fleet: iotax binary path must be set");
  }
  const std::size_t n_shards = config_.n_groups * config_.n_replicas;
  if (!config_.shard_ports.empty()) {
    if (config_.shard_ports.size() != n_shards) {
      throw std::invalid_argument(
          "fleet: got " + std::to_string(config_.shard_ports.size()) +
          " shard port(s) for " + std::to_string(n_shards) + " shard(s)");
    }
    std::set<int> distinct(config_.shard_ports.begin(),
                           config_.shard_ports.end());
    if (distinct.size() != config_.shard_ports.size()) {
      throw std::invalid_argument("fleet: duplicate shard ports");
    }
  }
  config_.restart_backoff.validate();
}

Supervisor::~Supervisor() { stop(); }

std::vector<Endpoint> Supervisor::group_endpoints(std::size_t group) const {
  std::vector<Endpoint> out;
  out.reserve(config_.n_replicas);
  for (std::size_t r = 0; r < config_.n_replicas; ++r) {
    if (config_.shard_ports.empty()) {
      out.push_back(Endpoint::unix_path(
          config_.shard_dir + "/g" + std::to_string(group) + "r" +
          std::to_string(r) + ".sock"));
    } else {
      out.push_back(Endpoint::tcp(
          "127.0.0.1",
          static_cast<std::uint16_t>(
              config_.shard_ports[group * config_.n_replicas + r])));
    }
  }
  return out;
}

std::vector<std::string> Supervisor::shard_argv(const Shard& shard) const {
  std::string models = config_.model_files[0];
  for (std::size_t i = 1; i < config_.model_files.size(); ++i) {
    models += "," + config_.model_files[i];
  }
  std::vector<std::string> argv = {config_.iotax_bin, "serve",
                                   "--models", models};
  if (shard.endpoint.kind == Endpoint::Kind::kUnix) {
    argv.push_back("--socket");
    argv.push_back(shard.endpoint.path);
  } else {
    argv.push_back("--port");
    argv.push_back(std::to_string(shard.endpoint.port));
  }
  argv.push_back("--batch-size");
  argv.push_back(std::to_string(config_.batch_size));
  argv.push_back("--batch-wait-us");
  argv.push_back(std::to_string(config_.batch_wait_us));
  argv.push_back("--max-inflight");
  argv.push_back(std::to_string(config_.max_inflight));
  argv.push_back("--ready-file");
  argv.push_back(shard.ready_file);
  return argv;
}

void Supervisor::spawn(Shard& shard) {
  ::unlink(shard.ready_file.c_str());
  const std::vector<std::string> argv = shard_argv(shard);
  std::vector<char*> cargv;
  cargv.reserve(argv.size() + 1);
  for (const auto& a : argv) cargv.push_back(const_cast<char*>(a.c_str()));
  cargv.push_back(nullptr);

  const pid_t pid = ::fork();
  if (pid < 0) {
    throw std::runtime_error(std::string("fleet: fork failed: ") +
                             std::strerror(errno));
  }
  if (pid == 0) {
    // Child: async-signal-safe calls only until exec. Shards die with
    // the supervisor (PDEATHSIG) so a crashed parent cannot leak a
    // daemon pack; stdout/err go to the per-shard log for post-mortems.
    ::prctl(PR_SET_PDEATHSIG, SIGKILL);
    const int log_fd = ::open(shard.log_file.c_str(),
                              O_WRONLY | O_CREAT | O_APPEND, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      if (log_fd > STDERR_FILENO) ::close(log_fd);
    }
    ::execv(cargv[0], cargv.data());
    ::_exit(127);
  }
  shard.pid = pid;
  shard.state = ShardState::kUp;
  shard.ready_seen = false;
  n_spawns_.fetch_add(1, std::memory_order_relaxed);
  IOTAX_OBS_COUNT("fleet.spawns", 1);
}

void Supervisor::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("fleet: supervisor already running");
  }
  ::signal(SIGPIPE, SIG_IGN);
  {
    std::lock_guard<std::mutex> lock(mu_);
    shards_.clear();
    for (std::size_t g = 0; g < config_.n_groups; ++g) {
      const auto endpoints = group_endpoints(g);
      for (std::size_t r = 0; r < config_.n_replicas; ++r) {
        Shard shard;
        shard.group = g;
        shard.replica = r;
        shard.endpoint = endpoints[r];
        const std::string stem = config_.shard_dir + "/g" +
                                 std::to_string(g) + "r" + std::to_string(r);
        shard.ready_file = stem + ".ready";
        shard.log_file = stem + ".log";
        shard.rng = util::Rng(config_.seed).fork(g * config_.n_replicas + r);
        shards_.push_back(std::move(shard));
      }
    }
    for (auto& shard : shards_) spawn(shard);
  }
  // Startup is all-or-nothing: a shard that exits before its ready file
  // appears is a configuration error (bad checkpoint, unbindable
  // socket), not a runtime fault — refuse to run a degraded fleet.
  const Deadline deadline = Deadline::after_ms(config_.spawn_timeout_ms);
  while (true) {
    std::size_t ready = 0;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& shard : shards_) {
        int status = 0;
        if (::waitpid(shard.pid, &status, WNOHANG) == shard.pid) {
          const pid_t pid = shard.pid;
          shard.pid = -1;
          stop_spawned_locked();
          throw std::runtime_error(
              "fleet: shard g" + std::to_string(shard.group) + "r" +
              std::to_string(shard.replica) + " (pid " + std::to_string(pid) +
              ") exited during startup; see " + shard.log_file);
        }
        if (!shard.ready_seen && file_exists(shard.ready_file)) {
          shard.ready_seen = true;
        }
        if (shard.ready_seen) ++ready;
      }
      if (ready == shards_.size()) break;
    }
    if (deadline.expired()) {
      std::lock_guard<std::mutex> lock(mu_);
      stop_spawned_locked();
      throw std::runtime_error(
          "fleet: not every shard became ready within " +
          std::to_string(config_.spawn_timeout_ms) + "ms");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  monitor_ = std::thread([this] { monitor_loop(); });
}

void Supervisor::stop_spawned_locked() {
  for (auto& shard : shards_) {
    if (shard.pid > 0) {
      ::kill(shard.pid, SIGKILL);
      ::waitpid(shard.pid, nullptr, 0);
      shard.pid = -1;
    }
    ::unlink(shard.ready_file.c_str());
  }
}

void Supervisor::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;
  }
  if (monitor_.joinable()) monitor_.join();
  std::lock_guard<std::mutex> lock(mu_);
  // Graceful first: SIGTERM lets each shard drain admitted requests.
  for (auto& shard : shards_) {
    if (shard.pid > 0) ::kill(shard.pid, SIGTERM);
  }
  const Deadline deadline = Deadline::after_ms(10000);
  for (auto& shard : shards_) {
    if (shard.pid <= 0) continue;
    while (::waitpid(shard.pid, nullptr, WNOHANG) == 0) {
      if (deadline.expired()) {
        // A shard that ignores SIGTERM (e.g. still SIGSTOPped) gets the
        // non-negotiable version.
        ::kill(shard.pid, SIGKILL);
        ::waitpid(shard.pid, nullptr, 0);
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
    shard.pid = -1;
    ::unlink(shard.ready_file.c_str());
  }
  running_.store(false, std::memory_order_release);
}

bool Supervisor::signal_shard(std::size_t group, std::size_t replica,
                              int sig) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& shard : shards_) {
    if (shard.group != group || shard.replica != replica) continue;
    if (shard.pid <= 0) return false;
    return ::kill(shard.pid, sig) == 0;
  }
  return false;
}

std::size_t Supervisor::live_shards() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    if (shard.state == ShardState::kUp) ++n;
  }
  return n;
}

SupervisorStats Supervisor::stats() const {
  SupervisorStats s;
  s.spawns = n_spawns_.load(std::memory_order_relaxed);
  s.restarts = n_restarts_.load(std::memory_order_relaxed);
  s.exits_detected = n_exits_.load(std::memory_order_relaxed);
  s.hangs_detected = n_hangs_.load(std::memory_order_relaxed);
  s.gave_up = n_gave_up_.load(std::memory_order_relaxed);
  return s;
}

void Supervisor::shard_down(Shard& shard, const char* why) {
  shard.pid = -1;
  shard.ready_seen = false;
  if (shard.restarts_used >= config_.restart_budget) {
    shard.state = ShardState::kFailed;
    n_gave_up_.fetch_add(1, std::memory_order_relaxed);
    IOTAX_OBS_COUNT("fleet.gave_up", 1);
    return;
  }
  ++shard.restarts_used;
  const std::uint64_t delay = util::backoff_delay_ms(
      config_.restart_backoff, shard.backoff_step++, shard.rng);
  shard.next_restart =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(delay);
  shard.state = ShardState::kRestarting;
  (void)why;
}

void Supervisor::monitor_loop() {
  std::uint64_t ping_id = 0x91a6'0000'0000'0000ULL;
  while (!stopping_.load(std::memory_order_acquire)) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.health_interval_ms));
    const std::size_t n_shards = [this] {
      std::lock_guard<std::mutex> lock(mu_);
      return shards_.size();
    }();
    for (std::size_t i = 0; i < n_shards; ++i) {
      if (stopping_.load(std::memory_order_acquire)) return;
      // Snapshot under the lock; the slow work (ping, reap) happens
      // outside it so chaos signals and stats reads never stall behind
      // a health probe. Only this thread mutates shard state, so the
      // snapshot cannot go stale in between.
      ShardState state;
      pid_t pid;
      Endpoint endpoint;
      bool ready_seen;
      std::string ready_file;
      std::chrono::steady_clock::time_point next_restart;
      {
        std::lock_guard<std::mutex> lock(mu_);
        Shard& s = shards_[i];
        state = s.state;
        pid = s.pid;
        endpoint = s.endpoint;
        ready_seen = s.ready_seen;
        ready_file = s.ready_file;
        next_restart = s.next_restart;
      }
      if (state == ShardState::kFailed) continue;
      if (state == ShardState::kRestarting) {
        if (std::chrono::steady_clock::now() >= next_restart) {
          std::lock_guard<std::mutex> lock(mu_);
          spawn(shards_[i]);
          n_restarts_.fetch_add(1, std::memory_order_relaxed);
          IOTAX_OBS_COUNT("fleet.restarts", 1);
        }
        continue;
      }
      // kUp: did it die on its own?
      int status = 0;
      if (::waitpid(pid, &status, WNOHANG) == pid) {
        n_exits_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.exits", 1);
        std::lock_guard<std::mutex> lock(mu_);
        shard_down(shards_[i], "exited");
        continue;
      }
      if (!ready_seen) {
        // Freshly (re)spawned: no health verdict until the listeners
        // are up, or a crash-during-startup would read as a hang.
        if (file_exists(ready_file)) {
          std::lock_guard<std::mutex> lock(mu_);
          shards_[i].ready_seen = true;
          shards_[i].backoff_step = 0;  // it came back; restart the ladder
        }
        continue;
      }
      if (!ping_endpoint(endpoint, config_.health_timeout_ms, ++ping_id)) {
        // Alive but silent past the deadline: hung (e.g. SIGSTOP, dead-
        // locked). SIGKILL works even on a stopped process; the reap
        // below turns it into an ordinary restart.
        if (::kill(pid, 0) != 0) continue;  // raced an exit; next tick reaps
        n_hangs_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.hangs", 1);
        ::kill(pid, SIGKILL);
        ::waitpid(pid, nullptr, 0);
        std::lock_guard<std::mutex> lock(mu_);
        shard_down(shards_[i], "hung");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

struct Router::Session {
  int fd = -1;
  std::size_t index = 0;  // connection ordinal, rotates replica preference
  std::mutex write_mu;
  std::atomic<bool> dead{false};
  /// Per-group backhaul, created on first use. Only the session's own
  /// reader thread touches these (chaos "drop" fires on the triggering
  /// session), so they need no lock.
  std::vector<std::unique_ptr<RetryingClient>> backhaul;

  ~Session() {
    if (fd >= 0) ::close(fd);
  }
};

namespace {

int router_unix_listener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("fleet: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("fleet: socket(AF_UNIX) failed");
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("fleet: cannot listen on unix socket " + path +
                             ": " + std::strerror(err));
  }
  return fd;
}

int router_tcp_listener(int port, int* bound_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("fleet: socket(AF_INET) failed");
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0 ||
      ::listen(fd, 64) < 0) {
    const int err = errno;
    ::close(fd);
    throw std::runtime_error("fleet: cannot listen on TCP port " +
                             std::to_string(port) + ": " + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
    *bound_port = ntohs(bound.sin_port);
  }
  return fd;
}

}  // namespace

Router::Router(RouterConfig config) : config_(std::move(config)) {}

Router::~Router() { stop(); }

void Router::start() {
  if (running_.load(std::memory_order_acquire)) {
    throw std::logic_error("fleet: router already running");
  }
  ::signal(SIGPIPE, SIG_IGN);
  const bool have_supervisor = config_.supervisor != nullptr;
  const bool have_static = !config_.static_groups.empty();
  if (have_supervisor == have_static) {
    throw std::invalid_argument(
        "fleet: router needs exactly one shard source "
        "(supervisor or static groups)");
  }
  groups_.clear();
  if (have_supervisor) {
    if (!config_.supervisor->running()) {
      throw std::runtime_error("fleet: supervisor is not running");
    }
    for (std::size_t g = 0; g < config_.supervisor->n_groups(); ++g) {
      groups_.push_back(config_.supervisor->group_endpoints(g));
    }
  } else {
    groups_ = config_.static_groups;
  }
  for (const auto& group : groups_) {
    if (group.empty()) {
      throw std::invalid_argument("fleet: a replica group has no endpoints");
    }
  }
  if (config_.deadline_ms == 0) {
    throw std::invalid_argument("fleet: deadline_ms must be > 0");
  }
  config_.retry_backoff.validate();
  for (const auto& event : config_.chaos.events) {
    if (event.group >= groups_.size() ||
        event.replica >= groups_[event.group].size()) {
      throw std::invalid_argument(
          "fleet: chaos event targets shard g" + std::to_string(event.group) +
          "r" + std::to_string(event.replica) + " outside the topology");
    }
    if ((event.action == faults::ChaosAction::kKill ||
         event.action == faults::ChaosAction::kHang) &&
        !have_supervisor) {
      throw std::invalid_argument(
          "fleet: kill/hang chaos events need a supervisor");
    }
  }
  config_.chaos.validate();
  chaos_cursor_ = 0;

  if (!config_.unix_socket.empty()) {
    unix_fd_ = router_unix_listener(config_.unix_socket);
  }
  if (config_.tcp_port >= 0) {
    tcp_fd_ = router_tcp_listener(config_.tcp_port, &bound_tcp_port_);
  }
  if (unix_fd_ < 0 && tcp_fd_ < 0) {
    throw std::runtime_error("fleet: no listener configured "
                             "(need --socket and/or --port)");
  }
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

void Router::stop() {
  if (!running_.load(std::memory_order_acquire)) return;
  if (stopping_.exchange(true)) {
    while (running_.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  if (unix_fd_ >= 0) {
    ::close(unix_fd_);
    ::unlink(config_.unix_socket.c_str());
    unix_fd_ = -1;
  }
  if (tcp_fd_ >= 0) {
    ::close(tcp_fd_);
    tcp_fd_ = -1;
  }
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (const auto& weak : sessions_) {
      if (const auto session = weak.lock()) {
        ::shutdown(session->fd, SHUT_RD);
      }
    }
  }
  std::vector<std::thread> readers;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    readers.swap(session_threads_);
  }
  for (auto& t : readers) t.join();
  running_.store(false, std::memory_order_release);
}

FleetStats Router::stats() const {
  FleetStats s;
  s.connections = n_connections_.load(std::memory_order_relaxed);
  s.requests = n_requests_.load(std::memory_order_relaxed);
  s.responses = n_responses_.load(std::memory_order_relaxed);
  s.errors = n_errors_.load(std::memory_order_relaxed);
  s.retries = retry_counters_.retries.load(std::memory_order_relaxed);
  s.failovers = retry_counters_.failovers.load(std::memory_order_relaxed);
  s.busy_retries =
      retry_counters_.busy_retries.load(std::memory_order_relaxed);
  s.degraded = retry_counters_.degraded.load(std::memory_order_relaxed);
  s.chaos_kills = n_chaos_kills_.load(std::memory_order_relaxed);
  s.chaos_hangs = n_chaos_hangs_.load(std::memory_order_relaxed);
  s.chaos_drops = n_chaos_drops_.load(std::memory_order_relaxed);
  s.chaos_delays = n_chaos_delays_.load(std::memory_order_relaxed);
  return s;
}

util::QuarantineReport Router::quarantine() const {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  return quarantine_;
}

void Router::note_quarantine(Reason reason, const std::string& detail) {
  std::lock_guard<std::mutex> lock(quarantine_mu_);
  util::QuarantineEntry entry;
  entry.reason = reason;
  entry.detail = detail;
  quarantine_.add(std::move(entry));
}

bool Router::write_frame(Session& session, std::string_view bytes) {
  std::lock_guard<std::mutex> lock(session.write_mu);
  if (session.dead.load(std::memory_order_relaxed)) return false;
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(session.fd, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      session.dead.store(true, std::memory_order_relaxed);
      return false;
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return true;
}

void Router::accept_loop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd fds[2];
    int n_fds = 0;
    if (unix_fd_ >= 0) fds[n_fds++] = {unix_fd_, POLLIN, 0};
    if (tcp_fd_ >= 0) fds[n_fds++] = {tcp_fd_, POLLIN, 0};
    const int rc = ::poll(fds, static_cast<nfds_t>(n_fds), 100);
    if (rc <= 0) continue;
    for (int i = 0; i < n_fds; ++i) {
      if ((fds[i].revents & POLLIN) == 0) continue;
      const int cfd = ::accept4(fds[i].fd, nullptr, nullptr, SOCK_CLOEXEC);
      if (cfd < 0) continue;
      auto session = std::make_shared<Session>();
      session->fd = cfd;
      session->index = static_cast<std::size_t>(
          n_connections_.fetch_add(1, std::memory_order_relaxed));
      IOTAX_OBS_COUNT("fleet.connections", 1);
      std::lock_guard<std::mutex> lock(sessions_mu_);
      sessions_.push_back(session);
      session_threads_.emplace_back(
          [this, session = std::move(session)] { session_loop(session); });
    }
  }
}

void Router::session_loop(std::shared_ptr<Session> session) {
  if (config_.chaos.accept_delay_ms > 0) {
    std::this_thread::sleep_for(
        std::chrono::milliseconds(config_.chaos.accept_delay_ms));
  }
  std::vector<std::uint8_t> buf;
  std::size_t start = 0;
  std::uint8_t chunk[16384];
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{session->fd, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, 100);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) continue;
    const ssize_t n = ::recv(session->fd, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (n == 0) {
      if (start < buf.size() && !stopping_.load(std::memory_order_acquire)) {
        note_quarantine(Reason::kTruncated,
                        "connection closed inside a frame (" +
                            std::to_string(buf.size() - start) +
                            " byte(s) of partial frame)");
        ErrorResponse err;
        err.status = ServeStatus::kBadFrame;
        err.reason = Reason::kTruncated;
        err.detail = "truncated frame";
        write_frame(*session, encode_error_response(err));
        n_errors_.fetch_add(1, std::memory_order_relaxed);
      }
      break;
    }
    buf.insert(buf.end(), chunk, chunk + n);
    bool close_session = false;
    while (true) {
      const auto view = std::span<const std::uint8_t>(buf).subspan(start);
      const FrameDecode dec = util::decode_frame(view);
      if (dec.status == FrameDecode::Status::kNeedMore) break;
      if (dec.status == FrameDecode::Status::kBad) {
        note_quarantine(dec.reason, dec.detail);
        ErrorResponse err;
        err.status = ServeStatus::kBadFrame;
        err.reason = dec.reason;
        err.detail = dec.detail;
        write_frame(*session, encode_error_response(err));
        n_errors_.fetch_add(1, std::memory_order_relaxed);
        close_session = true;
        break;
      }
      const auto payload =
          view.subspan(FrameHeader::kWireSize, dec.header.payload_len);
      if (!handle_frame(session, dec.header, payload)) {
        close_session = true;
        break;
      }
      start += dec.consumed;
    }
    if (close_session) break;
    if (start > 4096 && start * 2 > buf.size()) {
      buf.erase(buf.begin(), buf.begin() + static_cast<long>(start));
      start = 0;
    }
  }
}

void Router::apply_chaos(std::uint64_t request_count, Session& session) {
  if (config_.chaos.events.empty()) return;
  std::vector<faults::ChaosEvent> due;
  {
    std::lock_guard<std::mutex> lock(chaos_mu_);
    while (chaos_cursor_ < config_.chaos.events.size() &&
           config_.chaos.events[chaos_cursor_].at_request <= request_count) {
      due.push_back(config_.chaos.events[chaos_cursor_++]);
    }
  }
  for (const auto& event : due) {
    switch (event.action) {
      case faults::ChaosAction::kKill:
        config_.supervisor->signal_shard(event.group, event.replica, SIGKILL);
        n_chaos_kills_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.chaos_kills", 1);
        break;
      case faults::ChaosAction::kHang:
        config_.supervisor->signal_shard(event.group, event.replica, SIGSTOP);
        n_chaos_hangs_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.chaos_hangs", 1);
        break;
      case faults::ChaosAction::kDrop:
        if (event.group < session.backhaul.size() &&
            session.backhaul[event.group]) {
          session.backhaul[event.group]->disconnect();
        }
        n_chaos_drops_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.chaos_drops", 1);
        break;
      case faults::ChaosAction::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(event.delay_ms));
        n_chaos_delays_.fetch_add(1, std::memory_order_relaxed);
        IOTAX_OBS_COUNT("fleet.chaos_delays", 1);
        break;
    }
  }
}

bool Router::handle_frame(const std::shared_ptr<Session>& session,
                          const FrameHeader& header,
                          std::span<const std::uint8_t> payload) {
  switch (static_cast<FrameType>(header.type)) {
    case FrameType::kPing:
      // The router answers for itself: a pong means "the front door is
      // up", not "every shard is up" — per-shard health is the
      // supervisor's job.
      write_frame(*session, encode_pong(header.request_id));
      return true;
    case FrameType::kPredictRequest:
      break;
    case FrameType::kControlRequest: {
      // Promote/rollback address one registry, and the fleet has N of
      // them. Routing a mutation to a hash-picked shard would fork the
      // replicas' state; refuse loudly instead.
      ErrorResponse err;
      err.request_id = header.request_id;
      err.status = ServeStatus::kBadRequest;
      err.detail = "control operations are not routed; "
                   "address a shard directly";
      write_frame(*session, encode_error_response(err));
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      IOTAX_OBS_COUNT("fleet.errors", 1);
      return true;
    }
    default: {
      note_quarantine(Reason::kMalformedHeader,
                      "unexpected frame type " + std::to_string(header.type));
      ErrorResponse err;
      err.request_id = header.request_id;
      err.status = ServeStatus::kBadFrame;
      err.reason = Reason::kMalformedHeader;
      err.detail = "unexpected frame type";
      write_frame(*session, encode_error_response(err));
      n_errors_.fetch_add(1, std::memory_order_relaxed);
      return true;
    }
  }

  PredictRequest req;
  ErrorResponse err;
  if (!decode_predict_request(header, payload, &req, &err)) {
    note_quarantine(*err.reason, err.detail);
    write_frame(*session, encode_error_response(err));
    n_errors_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::uint64_t count =
      n_requests_.fetch_add(1, std::memory_order_relaxed) + 1;
  IOTAX_OBS_COUNT("fleet.requests", 1);
  apply_chaos(count, *session);

  const std::size_t slot = fleet_slot(req, groups_.size());
  if (session->backhaul.empty()) session->backhaul.resize(groups_.size());
  auto& client = session->backhaul[slot];
  if (!client) {
    // Rotate the replica preference by connection ordinal so concurrent
    // sessions spread across a group instead of all camping on r0.
    std::vector<Endpoint> endpoints = groups_[slot];
    std::rotate(endpoints.begin(),
                endpoints.begin() +
                    static_cast<long>(session->index % endpoints.size()),
                endpoints.end());
    RetryPolicy policy;
    policy.deadline_ms = config_.deadline_ms;
    policy.try_timeout_ms = config_.try_timeout_ms;
    policy.backoff = config_.retry_backoff;
    client = std::make_unique<RetryingClient>(
        std::move(endpoints), policy,
        util::Rng(config_.seed ^ config_.chaos.seed)
            .fork(session->index * 131 + slot),
        &retry_counters_);
  }

  RetryingClient::Result result = client->predict(req);
  if (result.ok) {
    write_frame(*session, encode_predict_response(result.response));
    n_responses_.fetch_add(1, std::memory_order_relaxed);
    IOTAX_OBS_COUNT("fleet.responses", 1);
    return true;
  }
  if (result.error.status == ServeStatus::kDegraded) {
    note_quarantine(result.error.reason.value_or(Reason::kDeadlineExpired),
                    result.error.detail);
    IOTAX_OBS_COUNT("fleet.degraded", 1);
  }
  write_frame(*session, encode_error_response(result.error));
  n_errors_.fetch_add(1, std::memory_order_relaxed);
  IOTAX_OBS_COUNT("fleet.errors", 1);
  return true;
}

}  // namespace iotax::serve
