#include "src/serve/client.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "src/util/backoff.hpp"

namespace iotax::serve {

using util::FrameDecode;
using util::FrameHeader;
using util::FrameType;

namespace {

// Finish a connect() under a deadline: the socket goes nonblocking for
// the handshake, poll() waits out the timeout, SO_ERROR reports the
// verdict, and the socket is flipped back to blocking before use.
// Returns 0 on success, a positive errno on connect failure, -1 on
// timeout.
int connect_with_timeout(int fd, const sockaddr* addr, socklen_t len,
                         std::uint64_t timeout_ms) {
  if (timeout_ms == 0) {
    while (::connect(fd, addr, len) < 0) {
      if (errno == EINTR) continue;
      return errno;
    }
    return 0;
  }
  const int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, addr, len);
  if (rc < 0 && errno != EINPROGRESS && errno != EAGAIN) {
    const int err = errno;
    ::fcntl(fd, F_SETFL, flags);
    return err;
  }
  if (rc < 0) {
    pollfd pfd{fd, POLLOUT, 0};
    const auto deadline = util::Deadline::after_ms(timeout_ms);
    while (true) {
      const std::uint64_t left = deadline.remaining_ms();
      if (left == 0) {
        ::fcntl(fd, F_SETFL, flags);
        return -1;
      }
      rc = ::poll(&pfd, 1, static_cast<int>(left));
      if (rc < 0 && errno == EINTR) continue;
      if (rc == 0) {
        ::fcntl(fd, F_SETFL, flags);
        return -1;
      }
      break;
    }
    int so_error = 0;
    socklen_t so_len = sizeof(so_error);
    ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &so_len);
    if (so_error != 0) {
      ::fcntl(fd, F_SETFL, flags);
      return so_error;
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  return 0;
}

}  // namespace

Client::~Client() { close(); }

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buf_(std::move(other.buf_)),
      start_(std::exchange(other.start_, 0)),
      recv_timeout_ms_(std::exchange(other.recv_timeout_ms_, 0)) {}

Client& Client::operator=(Client&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buf_ = std::move(other.buf_);
    start_ = std::exchange(other.start_, 0);
    recv_timeout_ms_ = std::exchange(other.recv_timeout_ms_, 0);
  }
  return *this;
}

Client Client::connect_unix(const std::string& path,
                            std::uint64_t connect_timeout_ms) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof(addr.sun_path)) {
    throw std::runtime_error("query: unix socket path too long: " + path);
  }
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) throw std::runtime_error("query: socket(AF_UNIX) failed");
  const int rc = connect_with_timeout(
      fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr),
      connect_timeout_ms);
  if (rc != 0) {
    ::close(fd);
    if (rc < 0) {
      throw Timeout("query: connect to " + path + " timed out after " +
                    std::to_string(connect_timeout_ms) + "ms");
    }
    throw std::runtime_error("query: cannot connect to " + path + ": " +
                             std::strerror(rc));
  }
  return Client(fd);
}

Client Client::connect_tcp(const std::string& host, std::uint16_t port,
                           std::uint64_t connect_timeout_ms) {
  addrinfo hints{};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  addrinfo* res = nullptr;
  const int gai = ::getaddrinfo(host.c_str(), std::to_string(port).c_str(),
                                &hints, &res);
  if (gai != 0 || res == nullptr) {
    throw std::runtime_error("query: cannot resolve " + host + ": " +
                             ::gai_strerror(gai));
  }
  int fd = -1;
  int last_err = 0;
  bool timed_out = false;
  for (const addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype | SOCK_CLOEXEC,
                  ai->ai_protocol);
    if (fd < 0) continue;
    const int rc = connect_with_timeout(fd, ai->ai_addr, ai->ai_addrlen,
                                        connect_timeout_ms);
    if (rc == 0) break;
    timed_out = rc < 0;
    last_err = rc > 0 ? rc : ETIMEDOUT;
    ::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    const std::string where = host + ":" + std::to_string(port);
    if (timed_out) {
      throw Timeout("query: connect to " + where + " timed out after " +
                    std::to_string(connect_timeout_ms) + "ms");
    }
    throw std::runtime_error("query: cannot connect to " + where + ": " +
                             std::strerror(last_err));
  }
  return Client(fd);
}

void Client::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buf_.clear();
  start_ = 0;
}

void Client::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

void Client::set_recv_timeout_ms(std::uint64_t ms) {
  recv_timeout_ms_ = ms;
  if (fd_ < 0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(ms / 1000);
  tv.tv_usec = static_cast<suseconds_t>((ms % 1000) * 1000);
  ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
}

void Client::send_raw(std::string_view bytes) {
  const char* p = bytes.data();
  std::size_t left = bytes.size();
  while (left > 0) {
    const ssize_t n = ::send(fd_, p, left, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("query: send failed: ") +
                               std::strerror(errno));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
}

void Client::send_predict(const PredictRequest& req) {
  send_raw(encode_predict_request(req));
}

void Client::send_ping(std::uint64_t request_id) {
  send_raw(encode_ping(request_id));
}

void Client::send_control(const ControlRequest& req) {
  send_raw(encode_control_request(req));
}

bool Client::read_reply(Reply* out) {
  char chunk[16384];
  while (true) {
    const auto bytes = std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(buf_.data()) + start_,
        buf_.size() - start_);
    const FrameDecode dec = util::decode_frame(bytes);
    if (dec.status == FrameDecode::Status::kBad) {
      throw std::runtime_error("query: malformed reply frame: " + dec.detail);
    }
    if (dec.status == FrameDecode::Status::kOk) {
      const auto payload =
          bytes.subspan(FrameHeader::kWireSize, dec.header.payload_len);
      out->type = static_cast<FrameType>(dec.header.type);
      out->request_id = dec.header.request_id;
      bool parsed = true;
      switch (out->type) {
        case FrameType::kPredictResponse:
          parsed = decode_predict_response(dec.header, payload, &out->predict);
          break;
        case FrameType::kErrorResponse:
          parsed = decode_error_response(dec.header, payload, &out->error);
          break;
        case FrameType::kControlResponse:
          parsed = decode_control_response(dec.header, payload, &out->control);
          break;
        case FrameType::kPong:
          break;
        default:
          parsed = false;
      }
      if (!parsed) {
        throw std::runtime_error("query: unparseable reply payload (type " +
                                 std::to_string(dec.header.type) + ")");
      }
      start_ += dec.consumed;
      if (start_ == buf_.size()) {
        buf_.clear();
        start_ = 0;
      }
      return true;
    }
    // kNeedMore: pull more bytes off the socket.
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        throw Timeout("query: no reply within " +
                      std::to_string(recv_timeout_ms_) + "ms deadline");
      }
      throw std::runtime_error(std::string("query: recv failed: ") +
                               std::strerror(errno));
    }
    if (n == 0) {
      if (start_ < buf_.size()) {
        throw std::runtime_error("query: connection closed mid-reply");
      }
      return false;  // clean EOF
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
  }
}

}  // namespace iotax::serve
