// The paper's litmus tests (§VI-§IX): data-driven estimators that split a
// model's error into the five taxonomy classes.
//
//   1. Application-modeling bound — duplicate sets give the best error any
//      model of application features alone can reach (§VI.A).
//   2. Global-system bound — a "golden" model that also sees the job start
//      time removes system-modeling error; its test error bounds what any
//      app+system model can reach (§VII.A).
//   3. Out-of-distribution attribution — deep-ensemble epistemic
//      uncertainty flags OoD jobs; their error is e_OoD (§VIII.A).
//   4/5. Contention+noise bound — concurrent (Δt≈0) duplicates isolate
//      ζ_l and ω; a Student-t fit with Bessel correction yields the
//      system's irreducible I/O variability (§IX.A).
#pragma once

#include <optional>

#include "src/data/split.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/stats/fitting.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/taxonomy/feature_sets.hpp"

namespace iotax::taxonomy {

// ------------------------------------------------ Litmus 1: application

struct AppBoundResult {
  DuplicateStats stats;
  double median_abs_error = 0.0;  // the bound, in log10 units
  double mean_abs_error = 0.0;
};

/// Estimate the lower bound on median |log10| error achievable by any
/// model that sees only application features (duplicate-set litmus test).
AppBoundResult litmus_application_bound(const data::DatasetView& ds);

// ------------------------------------------------ Litmus 2: system

struct SystemBoundResult {
  double err_app_only = 0.0;   // tuned model on application features
  double err_with_time = 0.0;  // golden model: + start time (the bound)
  double reduction_frac = 0.0; // relative error drop from the time feature
};

/// Train GBT models with and without the start-time feature and report
/// test errors. `app_sets` chooses the application features (typically
/// POSIX or POSIX+MPI-IO).
SystemBoundResult litmus_system_bound(const data::DatasetView& ds,
                                      const data::Split& split,
                                      const std::vector<FeatureSet>& app_sets,
                                      const ml::GbtParams& params);

/// View-based variant used by the pipeline: the caller supplies
/// app-feature and app+start-time slices of one shared matrix. The
/// start-time column must be the LAST column of the timed views (its
/// bin budget is widened to day-level resolution).
SystemBoundResult litmus_system_bound(const data::MatrixView& x_train_app,
                                      const data::MatrixView& x_test_app,
                                      const data::MatrixView& x_train_timed,
                                      const data::MatrixView& x_test_timed,
                                      std::span<const double> y_train,
                                      std::span<const double> y_test,
                                      const ml::GbtParams& params);

// ------------------------------------------------ Litmus 3: OoD

struct OodResult {
  double eu_threshold = 0.0;
  std::size_t n_ood = 0;
  double frac_ood = 0.0;         // OoD fraction of test jobs
  double error_share_ood = 0.0;  // fraction of total |error| they carry
  double error_ratio = 0.0;      // mean OoD error / mean error
  std::vector<bool> is_ood;      // per test row
};

/// Classify test jobs by epistemic uncertainty and attribute error. The
/// threshold defaults to the inverse-cumulative-error "shoulder": the
/// smallest EU value t such that jobs above t contribute under
/// `shoulder_frac` of total error (§VIII.A's robust-threshold argument).
OodResult litmus_ood(std::span<const double> epistemic,
                     std::span<const double> abs_errors,
                     std::optional<double> eu_threshold = std::nullopt,
                     double shoulder_frac = 0.03);

// ------------------------------------------------ Litmus 4/5: noise

struct NoiseBoundResult {
  std::size_t n_sets = 0;
  std::size_t n_jobs = 0;
  double median_abs_error = 0.0;  // concurrent-duplicate bound (log10)
  double sigma_log10 = 0.0;       // Bessel-corrected spread estimate
  double band68_pct = 0.0;        // +-% band at 68% coverage
  double band95_pct = 0.0;        // +-% band at 95% coverage
  stats::StudentTFit t_fit;
  stats::NormalFit normal_fit;
  double t_preference = 0.0;      // >0: Student-t fits better per sample
  /// Fraction of concurrent sets with exactly 2 members (paper: 70% on
  /// Theta) and with <= 6 members (96%).
  double frac_sets_of_two = 0.0;
  double frac_sets_leq_six = 0.0;
};

/// Estimate the contention+noise floor from duplicates started within
/// `dt_window` seconds of each other, excluding rows flagged in
/// `exclude` (OoD jobs, per the litmus ordering).
NoiseBoundResult litmus_noise_bound(const data::DatasetView& ds,
                                    double dt_window = 1.0,
                                    const std::vector<bool>* exclude = nullptr);

// ------------------------------------------------ Fig. 6 helper

struct DtBin {
  double dt_lo = 0.0;
  double dt_hi = 0.0;
  std::size_t n_pairs = 0;
  double p05 = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
  double stddev = 0.0;
};

/// Weighted distribution of duplicate-pair Δφ per Δt bin (log-spaced
/// edges in seconds). The first bin [0, edges[0]) holds the concurrent
/// pairs.
std::vector<DtBin> dt_binned_distributions(const data::DatasetView& ds,
                                           std::span<const double> edges);

}  // namespace iotax::taxonomy
