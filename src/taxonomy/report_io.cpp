#include "src/taxonomy/report_io.hpp"

#include <map>
#include <stdexcept>

#include "src/ml/metrics.hpp"
#include "src/util/csv.hpp"
#include "src/util/str.hpp"

namespace iotax::taxonomy {

void write_report_csv(const std::string& path, const TaxonomyReport& report) {
  util::Csv csv;
  csv.header = {"key", "value"};
  const auto put = [&csv](const std::string& key, double value) {
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    csv.rows.push_back({key, buf});
  };
  csv.rows.push_back({"system", report.system});
  put("n_jobs", static_cast<double>(report.n_jobs));
  put("baseline_error", report.baseline_error);
  put("baseline_error_pct", ml::log_error_to_percent(report.baseline_error));
  put("app_bound", report.app_bound.median_abs_error);
  put("app_bound_mean", report.app_bound.mean_abs_error);
  put("dup_sets", static_cast<double>(report.app_bound.stats.n_sets));
  put("dup_jobs",
      static_cast<double>(report.app_bound.stats.n_duplicate_jobs));
  put("dup_fraction", report.app_bound.stats.duplicate_fraction);
  put("tuned_error", report.tuned_error);
  put("tuned_trees", static_cast<double>(report.tuned_params.n_estimators));
  put("tuned_depth", static_cast<double>(report.tuned_params.max_depth));
  put("system_bound_app_only", report.system_bound.err_app_only);
  put("system_bound_with_time", report.system_bound.err_with_time);
  put("system_bound_reduction", report.system_bound.reduction_frac);
  if (report.lmt_enriched_error.has_value()) {
    put("lmt_enriched_error", *report.lmt_enriched_error);
  }
  if (report.ood.has_value()) {
    put("ood_threshold", report.ood->eu_threshold);
    put("ood_frac", report.ood->frac_ood);
    put("ood_error_share", report.ood->error_share_ood);
    put("ood_error_ratio", report.ood->error_ratio);
  }
  put("noise_median", report.noise.median_abs_error);
  put("noise_sigma", report.noise.sigma_log10);
  put("noise_band68_pct", report.noise.band68_pct);
  put("noise_band95_pct", report.noise.band95_pct);
  put("noise_t_df", report.noise.t_fit.df);
  put("noise_sets", static_cast<double>(report.noise.n_sets));
  put("share_app", report.share_app);
  put("share_app_realized", report.share_app_realized);
  put("share_system", report.share_system);
  put("share_system_realized", report.share_system_realized);
  put("share_ood", report.share_ood);
  put("share_aleatory", report.share_aleatory);
  put("share_unexplained", report.share_unexplained);
  for (const auto& h : report.health) {
    csv.rows.push_back({"health." + h.step,
                        h.confidence + "|" + std::to_string(h.n_samples) +
                            "|" + h.reason});
  }
  util::write_csv_file(path, csv);
}

TaxonomyReport read_report_csv(const std::string& path) {
  const auto csv = util::read_csv_file(path);
  if (csv.header != std::vector<std::string>{"key", "value"}) {
    throw std::runtime_error("read_report_csv: unexpected header in " + path);
  }
  std::map<std::string, std::string> kv;
  for (const auto& row : csv.rows) {
    if (row.size() != 2) {
      throw std::runtime_error("read_report_csv: malformed row");
    }
    kv[row[0]] = row[1];
  }
  const auto num = [&kv](const std::string& key) {
    const auto it = kv.find(key);
    if (it == kv.end()) {
      throw std::runtime_error("read_report_csv: missing key " + key);
    }
    return util::parse_double(it->second);
  };
  const auto has = [&kv](const std::string& key) {
    return kv.find(key) != kv.end();
  };

  TaxonomyReport report;
  report.system = kv.at("system");
  report.n_jobs = static_cast<std::size_t>(num("n_jobs"));
  report.baseline_error = num("baseline_error");
  report.app_bound.median_abs_error = num("app_bound");
  report.app_bound.mean_abs_error = num("app_bound_mean");
  report.app_bound.stats.n_sets = static_cast<std::size_t>(num("dup_sets"));
  report.app_bound.stats.n_duplicate_jobs =
      static_cast<std::size_t>(num("dup_jobs"));
  report.app_bound.stats.duplicate_fraction = num("dup_fraction");
  report.tuned_error = num("tuned_error");
  report.tuned_params.n_estimators =
      static_cast<std::size_t>(num("tuned_trees"));
  report.tuned_params.max_depth = static_cast<std::size_t>(num("tuned_depth"));
  report.system_bound.err_app_only = num("system_bound_app_only");
  report.system_bound.err_with_time = num("system_bound_with_time");
  report.system_bound.reduction_frac = num("system_bound_reduction");
  if (has("lmt_enriched_error")) {
    report.lmt_enriched_error = num("lmt_enriched_error");
  }
  if (has("ood_threshold")) {
    OodResult ood;
    ood.eu_threshold = num("ood_threshold");
    ood.frac_ood = num("ood_frac");
    ood.error_share_ood = num("ood_error_share");
    ood.error_ratio = num("ood_error_ratio");
    report.ood = ood;
  }
  report.noise.median_abs_error = num("noise_median");
  report.noise.sigma_log10 = num("noise_sigma");
  report.noise.band68_pct = num("noise_band68_pct");
  report.noise.band95_pct = num("noise_band95_pct");
  report.noise.t_fit.df = num("noise_t_df");
  report.noise.n_sets = static_cast<std::size_t>(num("noise_sets"));
  report.share_app = num("share_app");
  report.share_app_realized = num("share_app_realized");
  report.share_system = num("share_system");
  report.share_system_realized = num("share_system_realized");
  report.share_ood = num("share_ood");
  report.share_aleatory = num("share_aleatory");
  report.share_unexplained = num("share_unexplained");
  // Health rows (absent in pre-degradation reports): step order follows
  // the file's key order, which is alphabetical after the map round-trip.
  for (const auto& [key, value] : kv) {
    if (key.rfind("health.", 0) != 0) continue;
    StepHealth h;
    h.step = key.substr(7);
    const auto p1 = value.find('|');
    const auto p2 = value.find('|', p1 + 1);
    if (p1 == std::string::npos || p2 == std::string::npos) {
      throw std::runtime_error("read_report_csv: malformed health row");
    }
    h.confidence = value.substr(0, p1);
    h.n_samples = static_cast<std::size_t>(
        util::parse_int(value.substr(p1 + 1, p2 - p1 - 1)));
    h.reason = value.substr(p2 + 1);
    h.ran = h.confidence != "none";
    h.degraded = h.confidence != "full";
    report.health.push_back(std::move(h));
  }
  return report;
}

std::string summary_line(const TaxonomyReport& report) {
  const auto pct = [](double v) {
    return util::format_double(v * 100.0, 1) + "%";
  };
  return report.system + " base=" +
         util::format_double(ml::log_error_to_percent(report.baseline_error),
                             2) +
         "% app=" + pct(report.share_app) +
         " sys=" + pct(report.share_system) + " ood=" +
         pct(report.share_ood) + " noise=" + pct(report.share_aleatory) +
         " unexplained=" + pct(report.share_unexplained);
}

}  // namespace iotax::taxonomy
