// Feature-set selection for the paper's experiments: POSIX-only,
// POSIX+MPI-IO, POSIX+Cobalt (Fig. 3), POSIX+start-time (litmus 2),
// and Darshan+Lustre (Fig. 4).
#pragma once

#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/matrix.hpp"

namespace iotax::taxonomy {

enum class FeatureSet {
  kPosix,          // 48 POSIX counters
  kMpiio,          // 48 MPI-IO counters
  kCobalt,         // 5 scheduler features (includes start/end times)
  kLmt,            // 37 storage-side aggregates
  kStartTimeOnly,  // the single COBALT_START_TIME column (litmus 2)
};

/// Column names for a combination of feature sets, in canonical order.
/// Throws if the dataset lacks one of the requested groups (e.g. LMT on a
/// Theta-like system).
std::vector<std::string> feature_columns(const data::Dataset& ds,
                                         const std::vector<FeatureSet>& sets);

/// Materialize the selected features as a model-input Matrix for the given
/// rows (pass all rows with an empty span).
data::Matrix feature_matrix(const data::Dataset& ds,
                            const std::vector<FeatureSet>& sets,
                            std::span<const std::size_t> rows = {});

/// Targets for the given rows (all rows when empty).
std::vector<double> targets(const data::Dataset& ds,
                            std::span<const std::size_t> rows = {});

}  // namespace iotax::taxonomy
