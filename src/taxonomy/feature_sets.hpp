// Feature-set selection for the paper's experiments: POSIX-only,
// POSIX+MPI-IO, POSIX+Cobalt (Fig. 3), POSIX+start-time (litmus 2),
// and Darshan+Lustre (Fig. 4).
//
// All entry points take a DatasetView (a Dataset converts implicitly);
// row arguments are view-local indices. feature_matrix still
// materializes its result — it is the one deliberate copy the pipeline
// makes when assembling model input — but callers that already hold a
// superset matrix should slice it with MatrixView instead of calling
// feature_matrix repeatedly (see taxonomy/pipeline.cpp).
#pragma once

#include <string>
#include <vector>

#include "src/data/view.hpp"

namespace iotax::taxonomy {

enum class FeatureSet {
  kPosix,          // 48 POSIX counters
  kMpiio,          // 48 MPI-IO counters
  kCobalt,         // 5 scheduler features (includes start/end times)
  kLmt,            // 37 storage-side aggregates
  kStartTimeOnly,  // the single COBALT_START_TIME column (litmus 2)
  kBurst,          // 48 windowed-telemetry columns (burst prediction)
};

/// Column names for a combination of feature sets, in canonical order.
/// Throws if the dataset lacks one of the requested groups (e.g. LMT on a
/// Theta-like system).
std::vector<std::string> feature_columns(const data::DatasetView& ds,
                                         const std::vector<FeatureSet>& sets);

/// Materialize the selected features as a model-input Matrix for the given
/// view-local rows (pass all rows with an empty span).
data::Matrix feature_matrix(const data::DatasetView& ds,
                            const std::vector<FeatureSet>& sets,
                            std::span<const std::size_t> rows = {});

/// Zero-copy alternative to feature_matrix: a MatrixView over the
/// dataset's column-major feature table. Element (i, c) reads the same
/// value feature_matrix would have written, so models consume either
/// interchangeably with bit-identical results. The resolved column and
/// row index maps are written into *cols_storage / *rows_storage, which
/// must outlive the returned view (the view keeps them by reference).
data::MatrixView feature_view(const data::DatasetView& ds,
                              const std::vector<FeatureSet>& sets,
                              std::vector<std::size_t>* cols_storage,
                              std::vector<std::size_t>* rows_storage,
                              std::span<const std::size_t> rows = {});

/// Targets for the given view-local rows (all rows when empty).
std::vector<double> targets(const data::DatasetView& ds,
                            std::span<const std::size_t> rows = {});

}  // namespace iotax::taxonomy
