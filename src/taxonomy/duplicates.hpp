// Duplicate-job machinery (§VI.A): jobs of the same application whose
// observable application features are identical. Duplicate sets are the
// backbone of litmus tests 1 (application-modeling bound) and 4/5
// (contention+noise bound from concurrent duplicates).
#pragma once

#include <cstdint>
#include <vector>

#include "src/data/view.hpp"

namespace iotax::taxonomy {

struct DuplicateSet {
  std::uint64_t app_id = 0;
  std::uint64_t config_id = 0;
  std::vector<std::size_t> rows;  // view-local row indices, size >= 2
  double mean_target = 0.0;       // mean log10 throughput of the set
};

/// All duplicate sets (>= 2 members) keyed by (app_id, config_id), in a
/// deterministic order.
std::vector<DuplicateSet> find_duplicate_sets(const data::DatasetView& ds);

struct DuplicateStats {
  std::size_t n_sets = 0;
  std::size_t n_duplicate_jobs = 0;
  double duplicate_fraction = 0.0;  // duplicate jobs / all jobs
  std::size_t largest_set = 0;
};

DuplicateStats duplicate_stats(const data::DatasetView& ds,
                               const std::vector<DuplicateSet>& sets);

/// Per-duplicate errors around the set mean, with Bessel's correction
/// sqrt(n/(n-1)) so small sets don't understate the spread (§VI.A step 3,
/// §IX.A). Order follows sets/rows.
std::vector<double> duplicate_errors(const data::DatasetView& ds,
                                     const std::vector<DuplicateSet>& sets);

/// One duplicate pair with its start-time gap and throughput gap, plus the
/// 1/(pairs-in-set) weight that stops huge sets dominating (Fig. 1e).
struct DuplicatePair {
  std::size_t row_a = 0;
  std::size_t row_b = 0;
  double dt = 0.0;        // |start_a - start_b| seconds
  double dphi = 0.0;      // log10 throughput difference (a - b)
  double weight = 1.0;
};

/// All intra-set pairs. Sets larger than `max_set_pairs_from` members are
/// subsampled by taking consecutive pairs to bound the O(n^2) blowup.
std::vector<DuplicatePair> duplicate_pairs(
    const data::DatasetView& ds, const std::vector<DuplicateSet>& sets,
    std::size_t max_set_pairs_from = 200);

/// Restrict sets to concurrent runs: within each set, clusters of jobs
/// whose start times fall within `dt_window` seconds of the cluster's
/// first job. Returned sets have >= 2 members each (litmus 4/5 input).
std::vector<DuplicateSet> concurrent_subsets(
    const data::DatasetView& ds, const std::vector<DuplicateSet>& sets,
    double dt_window);

}  // namespace iotax::taxonomy
