#include "src/taxonomy/pipeline.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "src/data/footprint.hpp"
#include "src/ml/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/str.hpp"

namespace iotax::taxonomy {

const StepHealth* TaxonomyReport::step_health(const std::string& step) const {
  for (const auto& h : health) {
    if (h.step == step) return &h;
  }
  return nullptr;
}

bool TaxonomyReport::degraded() const {
  for (const auto& h : health) {
    if (h.degraded) return true;
  }
  return false;
}

namespace {

StepHealth healthy(std::string step, std::size_t n, std::size_t minimum,
                   std::string below_reason) {
  StepHealth h;
  h.step = std::move(step);
  h.ran = true;
  h.n_samples = n;
  if (n < minimum) {
    h.degraded = true;
    h.confidence = "reduced";
    h.reason = std::move(below_reason);
  }
  return h;
}

StepHealth skipped(std::string step, std::string reason) {
  StepHealth h;
  h.step = std::move(step);
  h.ran = false;
  h.degraded = true;
  h.confidence = "none";
  h.reason = std::move(reason);
  return h;
}

}  // namespace

TaxonomyReport run_taxonomy(const data::DatasetView& ds,
                            const PipelineConfig& config) {
  IOTAX_TRACE_SPAN("taxonomy.run");
  obs::span_arg("jobs", static_cast<double>(ds.size()));
  TaxonomyReport report;
  report.system = ds.system_name();
  report.n_jobs = ds.size();
  const auto& req = config.requirements;
  util::Rng split_rng(config.split_seed);
  report.split = data::random_split(ds.size(), config.train_frac,
                                    config.val_frac, split_rng);
  const auto& split = report.split;
  // The one hard requirement: without a train and a test row there is
  // no model and no report. Everything past this degrades gracefully.
  if (split.train.empty() || split.test.empty()) {
    throw std::invalid_argument(
        "run_taxonomy: dataset too small for a train/test split (" +
        std::to_string(ds.size()) + " jobs)");
  }

  // Zero-copy model input: every step trains and predicts through
  // MatrixViews of the dataset's column-major feature table, so the
  // pipeline itself materializes no feature matrix. What remains on
  // the data.{live,peak}_materialized_bytes gauges is per-model
  // working state (binned code tables, MLP scaler outputs). Each view
  // gets its own index storage — views keep the spans by reference.
  const bool has_lmt = ds.has_feature("LMT_OSS_CPU_MEAN");
  std::vector<std::size_t> c_train, r_train, c_val, r_val, c_test, r_test;
  const auto x_train =
      feature_view(ds, config.app_features, &c_train, &r_train, split.train);
  const auto x_val =
      feature_view(ds, config.app_features, &c_val, &r_val, split.val);
  const auto x_test =
      feature_view(ds, config.app_features, &c_test, &r_test, split.test);
  const auto y_train = targets(ds, split.train);
  const auto y_val = targets(ds, split.val);
  const auto y_test = targets(ds, split.test);

  // ---- Step 1: baseline model with library-default hyperparameters.
  {
    IOTAX_TRACE_SPAN("taxonomy.baseline");
    ml::GradientBoostedTrees baseline;  // 100 trees, depth 6 — the defaults
    baseline.fit(x_train, y_train);
    report.baseline_error =
        ml::median_abs_log_error(y_test, baseline.predict(x_test));
    auto h = healthy("baseline", split.train.size(), req.min_train,
                     "train split below minimum");
    if (!h.degraded && split.test.size() < req.min_test) {
      h.degraded = true;
      h.confidence = "reduced";
      h.reason = "test split below minimum";
    }
    report.health.push_back(std::move(h));
  }

  // ---- Step 2.1: application-modeling bound from duplicate sets.
  bool app_bound_ok = true;
  {
    IOTAX_TRACE_SPAN("taxonomy.app_bound");
    try {
      report.app_bound = litmus_application_bound(ds);
      report.health.push_back(
          healthy("app_bound", report.app_bound.stats.n_sets,
                  req.min_dup_sets, "fewer duplicate sets than required"));
    } catch (const std::invalid_argument&) {
      app_bound_ok = false;
      report.app_bound = AppBoundResult{};
      report.health.push_back(skipped("app_bound", "no duplicate sets"));
    }
  }

  // ---- Step 2.2: hyperparameter search toward the bound.
  if (!split.val.empty()) {
    IOTAX_TRACE_SPAN("taxonomy.search");
    const auto search =
        ml::grid_search(config.grid, x_train, y_train, x_val, y_val);
    report.tuned_params = search.best.params;
    ml::GradientBoostedTrees tuned(report.tuned_params);
    tuned.fit(x_train, y_train);
    report.tuned_error =
        ml::median_abs_log_error(y_test, tuned.predict(x_test));
    report.health.push_back(healthy("search", split.val.size(), req.min_val,
                                    "validation split below minimum"));
  } else {
    // No validation rows to search over: fall back to the baseline.
    report.tuned_params = ml::GbtParams{};
    report.tuned_error = report.baseline_error;
    report.health.push_back(skipped("search", "no validation rows"));
  }

  // ---- Step 3.1: system bound via the start-time golden model.
  {
    IOTAX_TRACE_SPAN("taxonomy.system_bound");
    // The golden model additionally sees the start time (last column).
    auto timed_sets = config.app_features;
    timed_sets.push_back(FeatureSet::kStartTimeOnly);
    std::vector<std::size_t> c_ttr, r_ttr, c_tte, r_tte;
    const auto x_train_timed =
        feature_view(ds, timed_sets, &c_ttr, &r_ttr, split.train);
    const auto x_test_timed =
        feature_view(ds, timed_sets, &c_tte, &r_tte, split.test);
    report.system_bound =
        litmus_system_bound(x_train, x_test, x_train_timed, x_test_timed,
                            y_train, y_test, report.tuned_params);
    report.health.push_back(healthy("system_bound", split.test.size(),
                                    req.min_test,
                                    "test split below minimum"));
  }

  // ---- Step 3.2: realized improvement from storage telemetry.
  if (has_lmt) {
    IOTAX_TRACE_SPAN("taxonomy.lmt_enrich");
    auto enriched_sets = config.app_features;
    enriched_sets.push_back(FeatureSet::kLmt);
    std::vector<std::size_t> c_etr, r_etr, c_ete, r_ete;
    const auto x_train_enr =
        feature_view(ds, enriched_sets, &c_etr, &r_etr, split.train);
    const auto x_test_enr =
        feature_view(ds, enriched_sets, &c_ete, &r_ete, split.test);
    ml::GbtParams params = report.tuned_params;
    params.n_estimators = std::max<std::size_t>(params.n_estimators * 2, 128);
    ml::GradientBoostedTrees model(params);
    model.fit(x_train_enr, y_train);
    report.lmt_enriched_error =
        ml::median_abs_log_error(y_test, model.predict(x_test_enr));
    report.health.push_back(healthy("lmt_enrich", split.train.size(),
                                    req.min_train,
                                    "train split below minimum"));
  } else {
    report.health.push_back(
        skipped("lmt_enrich", "no LMT telemetry on this system"));
  }

  // ---- Step 4: OoD attribution via deep-ensemble epistemic uncertainty.
  std::vector<bool> exclude(ds.size(), false);
  if (config.run_uq) {
    IOTAX_TRACE_SPAN("taxonomy.ood");
    // Cap UQ training cost: take the most recent rows of the train period.
    std::vector<std::size_t> uq_rows = split.train;
    if (uq_rows.size() > config.uq_train_cap) {
      uq_rows.erase(uq_rows.begin(),
                    uq_rows.end() - static_cast<long>(config.uq_train_cap));
    }
    ml::DeepEnsemble ensemble(config.ensemble);
    std::vector<std::size_t> c_uq, r_uq;
    const auto x_uq =
        feature_view(ds, config.app_features, &c_uq, &r_uq, uq_rows);
    ensemble.fit(x_uq, targets(ds, uq_rows));
    const auto uq = ensemble.predict_uncertainty(x_test);
    std::vector<double> abs_err(y_test.size());
    for (std::size_t i = 0; i < y_test.size(); ++i) {
      abs_err[i] = std::fabs(uq.mean[i] - y_test[i]);
    }
    report.ood = litmus_ood(uq.epistemic, abs_err);
    for (std::size_t i = 0; i < split.test.size(); ++i) {
      if (report.ood->is_ood[i]) exclude[split.test[i]] = true;
    }
    report.health.push_back(healthy("ood", uq_rows.size(), req.min_uq_rows,
                                    "too few rows to train the ensemble"));
  } else {
    report.health.push_back(skipped("ood", "disabled (run_uq = false)"));
  }

  // ---- Step 5: contention+noise floor from concurrent duplicates.
  bool noise_ok = true;
  {
    IOTAX_TRACE_SPAN("taxonomy.noise_bound");
    try {
      report.noise = litmus_noise_bound(ds, config.dt_window, &exclude);
      report.health.push_back(
          healthy("noise_bound", report.noise.n_sets,
                  req.min_concurrent_sets,
                  "fewer concurrent duplicate sets than required"));
    } catch (const std::invalid_argument&) {
      noise_ok = false;
      report.noise = NoiseBoundResult{};
      report.health.push_back(
          skipped("noise_bound", "too few concurrent duplicate sets"));
    }
  }

  // ---- Fig. 7 segment arithmetic (fractions of the baseline error).
  // A step that could not run contributes zero to the attribution; its
  // health entry (confidence "none") marks the segment as unknown
  // rather than measured-zero.
  const double base = std::max(report.baseline_error, 1e-12);
  const auto clamp01 = [](double v) { return std::clamp(v, 0.0, 1.0); };
  if (app_bound_ok) {
    report.share_app =
        clamp01((report.baseline_error - report.app_bound.median_abs_error) /
                base);
  }
  report.share_app_realized =
      clamp01((report.baseline_error - report.tuned_error) / base);
  // Without the duplicate-set bound, the tuned error is the best
  // available reference for what system information could still remove.
  const double system_ref = app_bound_ok
                                ? report.app_bound.median_abs_error
                                : report.tuned_error;
  report.share_system =
      clamp01((system_ref - report.system_bound.err_with_time) / base);
  if (report.lmt_enriched_error.has_value()) {
    report.share_system_realized = clamp01(
        (report.tuned_error - *report.lmt_enriched_error) / base);
  }
  if (report.ood.has_value()) {
    report.share_ood = clamp01(report.ood->error_share_ood *
                               report.system_bound.err_with_time / base);
  }
  if (noise_ok) {
    report.share_aleatory = clamp01(report.noise.median_abs_error / base);
  }
  report.share_unexplained =
      clamp01(1.0 - report.share_app - report.share_system -
              report.share_ood - report.share_aleatory);
  data::footprint::publish();
  return report;
}

namespace {

std::string pct(double frac_or_logerr, bool is_share) {
  return util::format_double(
             is_share ? frac_or_logerr * 100.0
                      : ml::log_error_to_percent(frac_or_logerr),
             2) +
         "%";
}

void bar_line(std::ostream& out, const std::string& label, double share,
              const std::string& note = "") {
  const auto width = static_cast<std::size_t>(std::clamp(share, 0.0, 1.0) *
                                              50.0);
  out << "  " << label;
  for (std::size_t i = label.size(); i < 26; ++i) out << ' ';
  out << std::string(width, '#') << std::string(50 - width, '.') << "  "
      << pct(share, true);
  if (!note.empty()) out << "  (" << note << ")";
  out << '\n';
}

}  // namespace

std::string render_report(const TaxonomyReport& report) {
  std::ostringstream out;
  const auto ran = [&report](const char* step) {
    const auto* h = report.step_health(step);
    return h == nullptr || h->ran;  // absent health (old reports): assume ran
  };
  out << "=== I/O error taxonomy report: " << report.system << " ("
      << report.n_jobs << " jobs) ===\n";
  out << "Step 1   baseline model test error (median |log10|): "
      << pct(report.baseline_error, false) << "\n";
  if (ran("app_bound")) {
    out << "Step 2.1 application-modeling bound: "
        << pct(report.app_bound.median_abs_error, false) << "  ["
        << report.app_bound.stats.n_duplicate_jobs << " duplicates, "
        << report.app_bound.stats.n_sets << " sets, "
        << util::format_double(
               report.app_bound.stats.duplicate_fraction * 100, 1)
        << "% of jobs]\n";
  } else {
    out << "Step 2.1 application-modeling bound: unavailable "
        << "(no duplicate sets)\n";
  }
  out << "Step 2.2 tuned model error: " << pct(report.tuned_error, false)
      << "  [" << report.tuned_params.n_estimators << " trees, depth "
      << report.tuned_params.max_depth << "]\n";
  out << "Step 3.1 app+system bound (start-time golden model): "
      << pct(report.system_bound.err_with_time, false) << "  [error drop "
      << util::format_double(report.system_bound.reduction_frac * 100, 1)
      << "%]\n";
  if (report.lmt_enriched_error.has_value()) {
    out << "Step 3.2 LMT-enriched model error: "
        << pct(*report.lmt_enriched_error, false) << "\n";
  } else {
    out << "Step 3.2 skipped: this system does not collect LMT logs\n";
  }
  if (report.ood.has_value()) {
    out << "Step 4   OoD jobs: "
        << util::format_double(report.ood->frac_ood * 100, 2)
        << "% of test jobs carrying "
        << util::format_double(report.ood->error_share_ood * 100, 2)
        << "% of error (" << util::format_double(report.ood->error_ratio, 1)
        << "x average), EU threshold "
        << util::format_double(report.ood->eu_threshold, 4) << "\n";
  } else {
    out << "Step 4   skipped (run_uq = false)\n";
  }
  if (ran("noise_bound")) {
    out << "Step 5   contention+noise floor: "
        << pct(report.noise.median_abs_error, false)
        << " median; jobs expect "
        << "+-" << util::format_double(report.noise.band68_pct, 2)
        << "% (68%) / +-" << util::format_double(report.noise.band95_pct, 2)
        << "% (95%); Student-t df="
        << util::format_double(report.noise.t_fit.df, 1) << "\n";
  } else {
    out << "Step 5   contention+noise floor: unavailable "
        << "(too few concurrent duplicate sets)\n";
  }
  if (!report.health.empty()) {
    out << "--- step health ---\n";
    for (const auto& h : report.health) {
      out << "  " << (h.degraded ? '!' : ' ') << ' ' << h.step;
      for (std::size_t i = h.step.size(); i < 14; ++i) out << ' ';
      out << h.confidence;
      for (std::size_t i = h.confidence.size(); i < 9; ++i) out << ' ';
      out << h.n_samples << " samples";
      if (!h.reason.empty()) out << "  (" << h.reason << ")";
      out << '\n';
    }
  }
  out << "--- error attribution (fractions of baseline error) ---\n";
  bar_line(out, "application modeling", report.share_app,
           "realized by tuning: " + pct(report.share_app_realized, true));
  bar_line(out, "system modeling", report.share_system,
           report.lmt_enriched_error.has_value()
               ? "realized by LMT: " + pct(report.share_system_realized, true)
               : "no LMT on this system");
  bar_line(out, "out-of-distribution", report.share_ood);
  bar_line(out, "contention+noise", report.share_aleatory);
  bar_line(out, "unexplained", report.share_unexplained);
  return out.str();
}

}  // namespace iotax::taxonomy
