// TaxonomyReport persistence: a flat key/value CSV that downstream
// tooling (dashboards, regression tracking across system upgrades) can
// consume, with a loader for comparison workflows.
#pragma once

#include <string>

#include "src/taxonomy/pipeline.hpp"

namespace iotax::taxonomy {

/// Serialize a report as two-column CSV (key,value). Model/bound errors
/// are stored in log10 units; `*_pct` duplicates give the paper's
/// percentage convention. Split indices are not stored.
void write_report_csv(const std::string& path, const TaxonomyReport& report);

/// Load a report written by write_report_csv. Fields absent from the file
/// (e.g. `lmt_enriched_error` on Theta-like systems, `ood_*` when UQ was
/// skipped) stay unset.
TaxonomyReport read_report_csv(const std::string& path);

/// One-line summary for logs: "theta-like base=7.9% app=21% sys=13% ...".
std::string summary_line(const TaxonomyReport& report);

}  // namespace iotax::taxonomy
