#include "src/taxonomy/online.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/metrics.hpp"

namespace iotax::taxonomy {

namespace {

double median_of(std::vector<double> v) {
  if (v.empty()) return 0.0;
  const std::size_t mid = v.size() / 2;
  std::nth_element(v.begin(), v.begin() + static_cast<long>(mid), v.end());
  double m = v[mid];
  if (v.size() % 2 == 0) {
    // Lower-median partner: largest element of the left partition.
    const double lo = *std::max_element(v.begin(),
                                        v.begin() + static_cast<long>(mid));
    m = 0.5 * (lo + m);
  }
  return m;
}

}  // namespace

OnlineMonitor::OnlineMonitor(OnlineMonitorParams params)
    : params_(params) {
  if (params_.window_jobs == 0) {
    throw std::invalid_argument("OnlineMonitor: window_jobs must be > 0");
  }
  if (params_.reference_windows == 0) {
    throw std::invalid_argument(
        "OnlineMonitor: reference_windows must be > 0");
  }
  if (!(params_.error_ratio_trigger > 0.0)) {
    throw std::invalid_argument(
        "OnlineMonitor: error_ratio_trigger must be > 0");
  }
}

bool OnlineMonitor::reference_ready() const {
  return n_closed_ >= params_.reference_windows;
}

bool OnlineMonitor::any_trigger() const {
  for (const auto& w : windows_) {
    if (w.triggered) return true;
  }
  return false;
}

std::optional<WindowAttribution> OnlineMonitor::observe(std::uint64_t app_id,
                                                        double y_true,
                                                        double y_pred) {
  if (!std::isfinite(y_true) || !std::isfinite(y_pred)) {
    throw std::invalid_argument(
        "OnlineMonitor::observe: non-finite observation "
        "(quarantine upstream, the monitor only sees validated rows)");
  }
  abs_errors_.push_back(std::abs(y_true - y_pred));
  app_ids_.push_back(app_id);
  if (abs_errors_.size() < params_.window_jobs) return std::nullopt;
  return close_window();
}

std::optional<WindowAttribution> OnlineMonitor::flush() {
  if (abs_errors_.empty()) return std::nullopt;
  return close_window();
}

WindowAttribution OnlineMonitor::close_window() {
  WindowAttribution w;
  w.window_index = n_closed_;
  w.n_jobs = abs_errors_.size();
  w.median_abs_error = median_of(abs_errors_);
  w.reference = n_closed_ < params_.reference_windows;

  w.health.step = "online.window";
  w.health.ran = true;
  w.health.n_samples = w.n_jobs;
  if (w.reference) {
    // Baseline-building: the window's own numbers describe the floor,
    // not a drift verdict — must not be interpreted as one.
    w.health.confidence = "none";
    w.health.degraded = true;
    w.health.reason = "reference window " + std::to_string(n_closed_ + 1) +
                      " of " + std::to_string(params_.reference_windows);
    ref_errors_.insert(ref_errors_.end(), abs_errors_.begin(),
                       abs_errors_.end());
    ref_apps_.insert(app_ids_.begin(), app_ids_.end());
    if (n_closed_ + 1 == params_.reference_windows) {
      baseline_ = median_of(ref_errors_);
    }
  } else {
    if (w.n_jobs >= params_.min_jobs) {
      w.health.confidence = "full";
    } else {
      w.health.confidence = "reduced";
      w.health.degraded = true;
      w.health.reason = "window holds " + std::to_string(w.n_jobs) +
                        " of required " + std::to_string(params_.min_jobs) +
                        " jobs";
    }
    w.baseline_error = baseline_;
    w.error_ratio =
        baseline_ > 0.0 ? w.median_abs_error / baseline_ : 0.0;

    double total = 0.0, ood = 0.0, noise = 0.0, drift = 0.0;
    for (std::size_t i = 0; i < abs_errors_.size(); ++i) {
      const double e = abs_errors_[i];
      total += e;
      if (ref_apps_.find(app_ids_[i]) == ref_apps_.end()) {
        ood += e;  // population the reference never saw: litmus-3 online
      } else if (e <= baseline_) {
        noise += e;  // within the irreducible floor: litmus-4/5 online
      } else {
        noise += baseline_;
        drift += e - baseline_;  // in-distribution excess: drift proper
      }
    }
    if (total > 0.0) {
      w.share_ood = ood / total;
      w.share_noise = noise / total;
      w.share_drift = drift / total;
    }
    w.triggered = w.health.confidence == "full" && baseline_ > 0.0 &&
                  w.error_ratio >= params_.error_ratio_trigger;
  }

  IOTAX_OBS_GAUGE("drift.error_ratio", w.error_ratio);
  IOTAX_OBS_GAUGE("drift.share_ood", w.share_ood);
  IOTAX_OBS_GAUGE("drift.share_noise", w.share_noise);
  IOTAX_OBS_GAUGE("drift.share_drift", w.share_drift);
  IOTAX_OBS_COUNT("drift.windows", 1);
  if (w.triggered) IOTAX_OBS_COUNT("drift.triggers", 1);

  abs_errors_.clear();
  app_ids_.clear();
  ++n_closed_;
  windows_.push_back(w);
  return w;
}

}  // namespace iotax::taxonomy
