#include "src/taxonomy/interpret.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <stdexcept>

#include "src/util/str.hpp"

namespace iotax::taxonomy {

std::vector<FeatureImportance> ranked_importances(
    const ml::GradientBoostedTrees& model,
    const std::vector<std::string>& feature_names) {
  const auto imp = model.feature_importances();
  if (imp.size() != feature_names.size()) {
    throw std::invalid_argument(
        "ranked_importances: feature-name count mismatch");
  }
  std::vector<FeatureImportance> out(imp.size());
  for (std::size_t i = 0; i < imp.size(); ++i) {
    out[i] = {feature_names[i], imp[i]};
  }
  std::sort(out.begin(), out.end(),
            [](const FeatureImportance& a, const FeatureImportance& b) {
              return a.importance > b.importance;
            });
  return out;
}

namespace {

std::string group_of(const std::string& name) {
  const auto contains = [&name](const char* s) {
    return name.find(s) != std::string::npos;
  };
  if (util::starts_with(name, "LMT_")) return "storage (LMT)";
  if (contains("START_TIME") || contains("RUNTIME")) return "time";
  if (contains("BYTES") || contains("SIZE_") || contains("MAX_BYTE")) {
    return "volume";
  }
  if (contains("SEQ_") || contains("CONSEC") || contains("SWITCH") ||
      contains("ALIGN")) {
    return "access pattern";
  }
  if (contains("OPEN") || contains("STAT") || contains("SEEK") ||
      contains("SYNC") || contains("VIEWS") || contains("HINT")) {
    return "metadata";
  }
  if (contains("FILES")) return "files";
  if (contains("NPROCS") || contains("NODES") || contains("CORES") ||
      contains("PLACEMENT")) {
    return "scale";
  }
  if (contains("COLL") || contains("INDEP") || contains("SPLIT") ||
      contains("NB_") || contains("READS") || contains("WRITES") ||
      contains("ACCESS")) {
    return "operations";
  }
  return "other";
}

}  // namespace

std::vector<GroupImportance> grouped_importances(
    const std::vector<FeatureImportance>& features) {
  std::map<std::string, double> acc;
  for (const auto& f : features) acc[group_of(f.name)] += f.importance;
  std::vector<GroupImportance> out;
  out.reserve(acc.size());
  for (const auto& [group, imp] : acc) out.push_back({group, imp});
  std::sort(out.begin(), out.end(),
            [](const GroupImportance& a, const GroupImportance& b) {
              return a.importance > b.importance;
            });
  return out;
}

std::string render_importance_report(
    const std::vector<FeatureImportance>& features, std::size_t top_k) {
  std::ostringstream out;
  out << "top features by split gain:\n";
  for (std::size_t i = 0; i < std::min(top_k, features.size()); ++i) {
    out << "  " << features[i].name;
    for (std::size_t p = features[i].name.size(); p < 30; ++p) out << ' ';
    out << util::format_double(features[i].importance * 100.0, 2) << "%\n";
  }
  out << "feature groups:\n";
  for (const auto& g : grouped_importances(features)) {
    out << "  " << g.group;
    for (std::size_t p = g.group.size(); p < 30; ++p) out << ' ';
    out << util::format_double(g.importance * 100.0, 2) << "%\n";
  }
  return out.str();
}

}  // namespace iotax::taxonomy
