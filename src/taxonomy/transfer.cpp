#include "src/taxonomy/transfer.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <numeric>
#include <stdexcept>
#include <unordered_set>

#include "src/data/scaler.hpp"
#include "src/ml/metrics.hpp"
#include "src/stats/classification.hpp"

namespace iotax::taxonomy {

namespace {

double nearest_centroid_dist(std::span<const double> z,
                             const data::Matrix& centroids) {
  double best = std::numeric_limits<double>::infinity();
  for (std::size_t c = 0; c < centroids.rows(); ++c) {
    const auto row = centroids.row(c);
    double acc = 0.0;
    for (std::size_t i = 0; i < z.size(); ++i) {
      const double d = z[i] - row[i];
      acc += d * d;
    }
    best = std::min(best, acc);
  }
  return std::sqrt(best);
}

double quantile_sorted(std::vector<double> v, double q) {
  std::sort(v.begin(), v.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(v.size() - 1) + 0.5);
  return v[std::min(idx, v.size() - 1)];
}

}  // namespace

void TransferParams::validate() const {
  gbt.validate();
  kmeans.validate();
  if (holdout_frac <= 0.0 || holdout_frac >= 1.0) {
    throw std::invalid_argument("TransferParams: holdout_frac not in (0,1)");
  }
  if (ood_quantile <= 0.0 || ood_quantile >= 1.0) {
    throw std::invalid_argument("TransferParams: ood_quantile not in (0,1)");
  }
  if (feature_sets.empty()) {
    throw std::invalid_argument("TransferParams: empty feature_sets");
  }
  if (drift_top_k == 0) {
    throw std::invalid_argument("TransferParams: drift_top_k == 0");
  }
}

TransferReport run_transfer_litmus(const data::Dataset& train_ds,
                                   const data::Dataset& test_ds,
                                   const TransferParams& params) {
  params.validate();
  if (train_ds.size() < 20 || test_ds.size() < 20) {
    throw std::invalid_argument("run_transfer_litmus: dataset too small");
  }

  TransferReport report;
  report.train_system = train_ds.system_name;
  report.test_system = test_ds.system_name;

  // Deployment-shaped split of A: train on the front of the timeline,
  // hold out the tail for the in-cluster reference error.
  std::vector<std::size_t> order(train_ds.size());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return train_ds.meta[a].start_time <
                            train_ds.meta[b].start_time;
                   });
  const auto n_holdout = std::max<std::size_t>(
      1, static_cast<std::size_t>(params.holdout_frac *
                                  static_cast<double>(order.size())));
  const std::size_t n_train = order.size() - n_holdout;
  if (n_train < 10) {
    throw std::invalid_argument("run_transfer_litmus: training split empty");
  }
  const std::vector<std::size_t> train_rows(order.begin(),
                                            order.begin() + n_train);
  const std::vector<std::size_t> holdout_rows(order.begin() + n_train,
                                              order.end());
  report.n_train = train_rows.size();
  report.n_holdout = holdout_rows.size();
  report.n_test = test_ds.size();

  const data::DatasetView train_view(train_ds);
  const data::DatasetView test_view(test_ds);
  const auto x_train = feature_matrix(train_view, params.feature_sets,
                                      train_rows);
  const auto x_holdout = feature_matrix(train_view, params.feature_sets,
                                        holdout_rows);
  const auto x_test = feature_matrix(test_view, params.feature_sets);
  const auto y_train = targets(train_view, train_rows);
  const auto y_holdout = targets(train_view, holdout_rows);
  const auto y_test = targets(test_view);

  ml::GradientBoostedTrees model(params.gbt);
  model.fit(x_train, y_train);

  const auto pred_holdout = model.predict(x_holdout);
  const auto pred_test = model.predict(x_test);
  report.in_cluster_error = ml::median_abs_log_error(y_holdout, pred_holdout);
  report.transfer_error = ml::median_abs_log_error(y_test, pred_test);
  report.gap = report.transfer_error - report.in_cluster_error;

  // Oracle attribution: peel one ground-truth component at a time off
  // the targets and watch the median error fall. The drop credited to
  // each class is its share; the floor left after removing weather,
  // contention and noise is the model-vs-application residual (which is
  // where unseen/OoD apps and the foreign platform response live).
  const auto ablation_shares = [](std::span<const double> y_in,
                                  std::span<const double> pred,
                                  const std::vector<data::JobMeta>& meta,
                                  std::span<const std::size_t> rows) {
    const std::size_t n = y_in.size();
    std::vector<double> y(y_in.begin(), y_in.end());
    const auto meta_at = [&](std::size_t i) -> const data::JobMeta& {
      return rows.empty() ? meta[i] : meta[rows[i]];
    };
    const double err0 = ml::median_abs_log_error(y, pred);
    for (std::size_t i = 0; i < n; ++i) y[i] -= meta_at(i).log_fn;
    const double err1 = ml::median_abs_log_error(y, pred);
    for (std::size_t i = 0; i < n; ++i) y[i] -= meta_at(i).log_fl;
    const double err2 = ml::median_abs_log_error(y, pred);
    for (std::size_t i = 0; i < n; ++i) y[i] -= meta_at(i).log_fg;
    const double err3 = ml::median_abs_log_error(y, pred);
    TransferShares s;
    if (err0 <= 0.0) return s;
    s.noise = std::max(0.0, err0 - err1);
    s.contention = std::max(0.0, err1 - err2);
    s.system = std::max(0.0, err2 - err3);
    s.application = std::max(0.0, err3);
    const double total = s.noise + s.contention + s.system + s.application;
    if (total > 0.0) {
      s.noise /= total;
      s.contention /= total;
      s.system /= total;
      s.application /= total;
    }
    return s;
  };
  report.oracle = ablation_shares(y_test, pred_test, test_ds.meta, {});
  report.oracle_in_cluster =
      ablation_shares(y_holdout, pred_holdout, train_ds.meta, holdout_rows);

  // Ground-truth OoD labels: B rows of applications A's training period
  // never saw (with a shared catalog, app ids are comparable).
  std::unordered_set<std::uint64_t> train_apps;
  for (const std::size_t r : train_rows) {
    train_apps.insert(train_ds.meta[r].app_id);
  }
  std::vector<double> ood_truth(test_ds.size(), 0.0);
  std::size_t n_ood = 0;
  for (std::size_t i = 0; i < test_ds.size(); ++i) {
    if (train_apps.find(test_ds.meta[i].app_id) == train_apps.end()) {
      ood_truth[i] = 1.0;
      ++n_ood;
    }
  }
  report.ood_fraction_truth =
      static_cast<double>(n_ood) / static_cast<double>(test_ds.size());

  // Deployable estimate: distance to the A-trained centroids in the
  // same signed-log1p + standardised space KMeans clusters in.
  {
    ml::KMeans km(params.kmeans);
    km.fit(x_train);
    data::StandardScaler scaler;
    scaler.fit_log1p(x_train);
    const auto z_train = scaler.transform_log1p(x_train);
    const auto z_test = scaler.transform_log1p(x_test);
    std::vector<double> d_train(z_train.rows());
    for (std::size_t r = 0; r < z_train.rows(); ++r) {
      d_train[r] = nearest_centroid_dist(z_train.row(r), km.centroids());
    }
    const double cut = quantile_sorted(d_train, params.ood_quantile);
    std::vector<double> d_test(z_test.rows());
    std::size_t flagged = 0;
    for (std::size_t r = 0; r < z_test.rows(); ++r) {
      d_test[r] = nearest_centroid_dist(z_test.row(r), km.centroids());
      if (d_test[r] > cut) ++flagged;
    }
    report.ood_fraction_est =
        static_cast<double>(flagged) / static_cast<double>(z_test.rows());
    report.ood_auc = (n_ood == 0 || n_ood == test_ds.size())
                         ? 0.5
                         : stats::roc_auc(ood_truth, d_test);
  }

  // What moved: per-feature KS between A-train and B over the model's
  // own columns.
  {
    const auto cols = feature_columns(train_view, params.feature_sets);
    const auto a_sel = train_ds.features.select(cols).take(train_rows);
    const auto combined = a_sel.vcat(test_ds.features.select(cols));
    std::vector<std::size_t> ref(a_sel.n_rows());
    std::iota(ref.begin(), ref.end(), std::size_t{0});
    std::vector<std::size_t> recent(test_ds.size());
    std::iota(recent.begin(), recent.end(), a_sel.n_rows());
    report.top_drift =
        feature_drift(combined, ref, recent, params.drift_top_k);
  }

  return report;
}

std::string render_transfer_report(const TransferReport& report) {
  char buf[256];
  std::string out;
  std::snprintf(buf, sizeof(buf), "transfer litmus: %s -> %s\n",
                report.train_system.c_str(), report.test_system.c_str());
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  rows: train=%zu holdout=%zu test=%zu\n", report.n_train,
                report.n_holdout, report.n_test);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  error: in-cluster=%.4f transfer=%.4f gap=%+.4f (log10)\n",
                report.in_cluster_error, report.transfer_error, report.gap);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  oracle shares (transfer):   application=%.3f "
                "system=%.3f contention=%.3f noise=%.3f\n",
                report.oracle.application, report.oracle.system,
                report.oracle.contention, report.oracle.noise);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  oracle shares (in-cluster): application=%.3f "
                "system=%.3f contention=%.3f noise=%.3f\n",
                report.oracle_in_cluster.application,
                report.oracle_in_cluster.system,
                report.oracle_in_cluster.contention,
                report.oracle_in_cluster.noise);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "  ood: truth=%.4f est=%.4f auc=%.3f\n",
                report.ood_fraction_truth, report.ood_fraction_est,
                report.ood_auc);
  out += buf;
  out += "  top drifted features (KS):\n";
  for (const auto& d : report.top_drift) {
    std::snprintf(buf, sizeof(buf), "    %-28s %.3f\n", d.feature.c_str(),
                  d.ks);
    out += buf;
  }
  return out;
}

}  // namespace iotax::taxonomy
