#include "src/taxonomy/clusters.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <sstream>
#include <stdexcept>

#include "src/ml/metrics.hpp"
#include "src/stats/descriptive.hpp"
#include "src/taxonomy/duplicates.hpp"
#include "src/util/str.hpp"

namespace iotax::taxonomy {

ClusterBreakdown cluster_error_breakdown(
    const data::DatasetView& ds, std::span<const double> errors,
    const std::vector<FeatureSet>& feature_sets, ml::KMeansParams params) {
  if (errors.size() != ds.size() || ds.size() == 0) {
    throw std::invalid_argument("cluster_error_breakdown: bad input sizes");
  }
  const auto names = feature_columns(ds, feature_sets);
  const auto x = feature_matrix(ds, feature_sets);
  ml::KMeans kmeans(params);
  kmeans.fit(x);
  const auto& labels = kmeans.labels();

  // Duplicate membership per row.
  std::vector<bool> is_dup(ds.size(), false);
  for (const auto& set : find_duplicate_sets(ds)) {
    for (const auto r : set.rows) is_dup[r] = true;
  }

  ClusterBreakdown out;
  std::vector<double> abs_all(errors.size());
  for (std::size_t i = 0; i < errors.size(); ++i) {
    abs_all[i] = std::fabs(errors[i]);
  }
  out.overall_median_error = stats::median(abs_all);

  for (std::size_t c = 0; c < kmeans.k(); ++c) {
    ClusterStats cs;
    cs.cluster = c;
    std::vector<double> abs_err;
    std::vector<double> targets;
    std::set<std::uint64_t> apps;
    std::size_t dups = 0;
    for (std::size_t i = 0; i < ds.size(); ++i) {
      if (labels[i] != c) continue;
      ++cs.n_jobs;
      abs_err.push_back(std::fabs(errors[i]));
      targets.push_back(ds.target(i));
      apps.insert(ds.meta(i).app_id);
      dups += is_dup[i] ? 1 : 0;
    }
    if (cs.n_jobs == 0) continue;
    cs.n_apps = apps.size();
    cs.median_abs_error = stats::median(abs_err);
    cs.median_target = stats::median(targets);
    cs.duplicate_fraction =
        static_cast<double>(dups) / static_cast<double>(cs.n_jobs);
    // Defining feature: centroid coordinate with largest |value|.
    const auto centroid = kmeans.centroids().row(c);
    std::size_t arg = 0;
    for (std::size_t f = 1; f < centroid.size(); ++f) {
      if (std::fabs(centroid[f]) > std::fabs(centroid[arg])) arg = f;
    }
    cs.defining_feature = names[arg];
    cs.defining_value = centroid[arg];
    out.clusters.push_back(std::move(cs));
  }
  std::sort(out.clusters.begin(), out.clusters.end(),
            [](const ClusterStats& a, const ClusterStats& b) {
              return a.median_abs_error > b.median_abs_error;
            });
  return out;
}

std::string render_cluster_breakdown(const ClusterBreakdown& breakdown) {
  std::ostringstream out;
  out << "overall median |log10| error: "
      << util::format_double(
             ml::log_error_to_percent(breakdown.overall_median_error), 2)
      << "%\n";
  out << "cluster  jobs  apps  err(%)  dup%  median_thpt  defining feature\n";
  for (const auto& c : breakdown.clusters) {
    char line[160];
    std::snprintf(line, sizeof(line),
                  "%7zu %5zu %5zu %7.2f %5.0f %12.2f  %s (%+.1f sd)\n",
                  c.cluster, c.n_jobs, c.n_apps,
                  ml::log_error_to_percent(c.median_abs_error),
                  c.duplicate_fraction * 100.0, c.median_target,
                  c.defining_feature.c_str(), c.defining_value);
    out << line;
  }
  return out.str();
}

}  // namespace iotax::taxonomy
