// The practical framework of §X / Fig. 7: five steps that take a raw
// job dataset to a pie-chart attribution of baseline model error across
// the taxonomy's five classes.
//
//   Step 1   train/evaluate a baseline model
//   Step 2.1 application-modeling bound from duplicate sets
//   Step 2.2 hyperparameter search toward that bound
//   Step 3.1 system-modeling bound from a start-time golden model
//   Step 3.2 close the gap with real system telemetry (LMT), if collected
//   Step 4   flag OoD jobs via deep-ensemble epistemic uncertainty
//   Step 5   contention+noise floor from concurrent duplicates
#pragma once

#include <optional>
#include <string>

#include "src/data/split.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/search.hpp"
#include "src/taxonomy/litmus.hpp"

namespace iotax::taxonomy {

struct PipelineConfig {
  /// Application feature sets the models see (POSIX+MPI-IO by default).
  std::vector<FeatureSet> app_features = {FeatureSet::kPosix,
                                          FeatureSet::kMpiio};
  /// Train/val fractions; the rest is test. The split is uniformly
  /// random, as in the paper: duplicates straddle the boundary (which is
  /// exactly what makes the litmus-1 bound *achievable* — a model can
  /// only predict a duplicate set's mean if it has seen members of that
  /// set), and the jobs interleave in time, so the golden start-time
  /// model of Step 3.1 can "compress the I/O weather". Deployment drift
  /// is a separate experiment (Fig. 1c bench); a leakage-free grouped
  /// split is available as data::grouped_random_split.
  double train_frac = 0.60;
  double val_frac = 0.15;
  std::uint64_t split_seed = 41;
  /// Step 2.2 search budget.
  ml::GbtGrid grid = {.n_estimators = {16, 32, 64, 128},
                      .max_depth = {4, 8, 12, 16},
                      .subsample = {0.9},
                      .colsample = {0.9},
                      .base = {}};
  /// Step 4 budget: ensemble size/epochs and a cap on the rows used to
  /// train it (UQ is the most expensive step).
  ml::EnsembleParams ensemble = {};
  std::size_t uq_train_cap = 3000;
  bool run_uq = true;
  /// Step 5 concurrency window (seconds).
  double dt_window = 1.0;
};

struct TaxonomyReport {
  std::string system;
  std::size_t n_jobs = 0;
  data::Split split;

  // Step 1.
  double baseline_error = 0.0;  // median |log10|, test set

  // Step 2.
  AppBoundResult app_bound;
  double tuned_error = 0.0;
  ml::GbtParams tuned_params;

  // Step 3.
  SystemBoundResult system_bound;
  std::optional<double> lmt_enriched_error;

  // Step 4 (absent when run_uq is false).
  std::optional<OodResult> ood;

  // Step 5.
  NoiseBoundResult noise;

  // Fig. 7 segments, as fractions of the baseline error (estimates; they
  // deliberately do not sum to 1 — the paper's "unexplained" remainder).
  double share_app = 0.0;            // estimated fixable by modeling
  double share_app_realized = 0.0;   // actually fixed by the search
  double share_system = 0.0;         // estimated fixable by system info
  double share_system_realized = 0.0;  // fixed by LMT logs (if any)
  double share_ood = 0.0;
  double share_aleatory = 0.0;
  double share_unexplained = 0.0;
};

/// Run the full five-step framework on a dataset (or a DatasetView
/// window of one — a Dataset converts implicitly). The pipeline
/// materializes a single superset feature matrix and runs every step
/// through views of it; peak materialized bytes are published to the
/// obs gauges `data.live_materialized_bytes` /
/// `data.peak_materialized_bytes` on return.
TaxonomyReport run_taxonomy(const data::DatasetView& ds,
                            const PipelineConfig& config = {});

/// Render the report as aligned text, including an ASCII rendition of the
/// Fig. 7 pie segments.
std::string render_report(const TaxonomyReport& report);

}  // namespace iotax::taxonomy
