// The practical framework of §X / Fig. 7: five steps that take a raw
// job dataset to a pie-chart attribution of baseline model error across
// the taxonomy's five classes.
//
//   Step 1   train/evaluate a baseline model
//   Step 2.1 application-modeling bound from duplicate sets
//   Step 2.2 hyperparameter search toward that bound
//   Step 3.1 system-modeling bound from a start-time golden model
//   Step 3.2 close the gap with real system telemetry (LMT), if collected
//   Step 4   flag OoD jobs via deep-ensemble epistemic uncertainty
//   Step 5   contention+noise floor from concurrent duplicates
#pragma once

#include <optional>
#include <string>

#include "src/data/split.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/search.hpp"
#include "src/taxonomy/litmus.hpp"

namespace iotax::taxonomy {

/// Minimum data volumes each step needs to report full confidence.
/// Below a minimum the step still runs (when it can run at all) but its
/// report section is flagged as degraded, so a pipeline fed corrupted
/// or quarantine-thinned telemetry produces a report instead of a crash.
struct StepRequirements {
  std::size_t min_train = 20;
  std::size_t min_test = 10;
  std::size_t min_val = 5;             // step 2.2 search
  std::size_t min_dup_sets = 3;        // step 2.1 application bound
  std::size_t min_uq_rows = 50;        // step 4 ensemble training
  std::size_t min_concurrent_sets = 3; // step 5 noise floor
};

/// Health of one pipeline step after a run.
///   confidence "full"    — ran with at least its required data
///   confidence "reduced" — ran, but on less data than required
///   confidence "none"    — could not run (its report numbers are absent
///                          or zero and must not be interpreted)
struct StepHealth {
  std::string step;
  bool ran = false;
  bool degraded = false;   // anything below full confidence
  std::string reason;      // empty when healthy
  std::size_t n_samples = 0;
  std::string confidence = "full";
};

struct PipelineConfig {
  /// Application feature sets the models see (POSIX+MPI-IO by default).
  std::vector<FeatureSet> app_features = {FeatureSet::kPosix,
                                          FeatureSet::kMpiio};
  /// Train/val fractions; the rest is test. The split is uniformly
  /// random, as in the paper: duplicates straddle the boundary (which is
  /// exactly what makes the litmus-1 bound *achievable* — a model can
  /// only predict a duplicate set's mean if it has seen members of that
  /// set), and the jobs interleave in time, so the golden start-time
  /// model of Step 3.1 can "compress the I/O weather". Deployment drift
  /// is a separate experiment (Fig. 1c bench); a leakage-free grouped
  /// split is available as data::grouped_random_split.
  double train_frac = 0.60;
  double val_frac = 0.15;
  std::uint64_t split_seed = 41;
  /// Step 2.2 search budget.
  ml::GbtGrid grid = {.n_estimators = {16, 32, 64, 128},
                      .max_depth = {4, 8, 12, 16},
                      .subsample = {0.9},
                      .colsample = {0.9},
                      .base = {}};
  /// Step 4 budget: ensemble size/epochs and a cap on the rows used to
  /// train it (UQ is the most expensive step).
  ml::EnsembleParams ensemble = {};
  std::size_t uq_train_cap = 3000;
  bool run_uq = true;
  /// Step 5 concurrency window (seconds).
  double dt_window = 1.0;
  /// Data minimums below which steps are flagged as degraded.
  StepRequirements requirements;
};

struct TaxonomyReport {
  std::string system;
  std::size_t n_jobs = 0;
  data::Split split;

  // Step 1.
  double baseline_error = 0.0;  // median |log10|, test set

  // Step 2.
  AppBoundResult app_bound;
  double tuned_error = 0.0;
  ml::GbtParams tuned_params;

  // Step 3.
  SystemBoundResult system_bound;
  std::optional<double> lmt_enriched_error;

  // Step 4 (absent when run_uq is false).
  std::optional<OodResult> ood;

  // Step 5.
  NoiseBoundResult noise;

  // Fig. 7 segments, as fractions of the baseline error (estimates; they
  // deliberately do not sum to 1 — the paper's "unexplained" remainder).
  double share_app = 0.0;            // estimated fixable by modeling
  double share_app_realized = 0.0;   // actually fixed by the search
  double share_system = 0.0;         // estimated fixable by system info
  double share_system_realized = 0.0;  // fixed by LMT logs (if any)
  double share_ood = 0.0;
  double share_aleatory = 0.0;
  double share_unexplained = 0.0;

  /// One entry per step, in pipeline order. A step that could not run
  /// (no duplicate sets, too few concurrent sets, UQ disabled, no LMT)
  /// appears with confidence "none" instead of aborting the run; the
  /// only hard requirement is a non-empty train and test split.
  std::vector<StepHealth> health;

  /// Health entry by step name ("baseline", "app_bound", "search",
  /// "system_bound", "lmt_enrich", "ood", "noise_bound"); nullptr when
  /// absent.
  const StepHealth* step_health(const std::string& step) const;
  /// True when any step ran below full confidence (or not at all).
  bool degraded() const;
};

/// Run the full five-step framework on a dataset (or a DatasetView
/// window of one — a Dataset converts implicitly). The pipeline
/// materializes a single superset feature matrix and runs every step
/// through views of it; peak materialized bytes are published to the
/// obs gauges `data.live_materialized_bytes` /
/// `data.peak_materialized_bytes` on return.
TaxonomyReport run_taxonomy(const data::DatasetView& ds,
                            const PipelineConfig& config = {});

/// Render the report as aligned text, including an ASCII rendition of the
/// Fig. 7 pie segments.
std::string render_report(const TaxonomyReport& report);

}  // namespace iotax::taxonomy
