// Online litmus monitors: attribute *live serving* error to taxonomy
// classes, window by window, and raise a deterministic drift trigger.
//
// The offline pipeline (taxonomy/pipeline.hpp) attributes a frozen test
// set's error once; the monitor does the streaming analogue. Jobs
// arrive scored (prediction + measured target, both log10); windows of
// `window_jobs` observations close in arrival order. The first
// `reference_windows` windows form the baseline — their pooled median
// absolute error is the irreducible floor (litmus 4/5's role online)
// and their app-id set is the in-distribution population (litmus 3's
// role online). Each later window's total absolute error then splits
// into three shares:
//
//   share_ood   — error carried by jobs whose app id never appeared in
//                 the reference windows (out-of-distribution);
//   share_noise — up to the baseline floor per in-distribution job
//                 (contention + noise, irreducible);
//   share_drift — the in-distribution excess above the floor (system /
//                 application drift: the model is now wrong about jobs
//                 it used to predict).
//
// A window triggers when its median absolute error reaches
// `error_ratio_trigger` times the baseline with at least `min_jobs`
// observations. Everything is a pure function of the observation
// sequence — two monitors fed the same stream report identical windows
// and trigger at the same observation, which is what the online_smoke
// gate and the retrain seed (`params.seed`, handed to the retrained
// model) rely on.
//
// Window health reuses the pipeline's StepHealth confidence semantics:
// "full" when the window has at least min_jobs observations, "reduced"
// below that (a flush()ed partial window), "none" while the reference
// is still accumulating — numbers from a "none" window must not be
// interpreted, and such windows never trigger.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "src/taxonomy/pipeline.hpp"

namespace iotax::taxonomy {

struct OnlineMonitorParams {
  /// Observations per attribution window.
  std::size_t window_jobs = 64;
  /// Leading windows pooled into the baseline (floor + app population).
  std::size_t reference_windows = 2;
  /// Trigger when median |error| >= this multiple of the baseline.
  double error_ratio_trigger = 1.5;
  /// Windows below this many observations report reduced confidence and
  /// never trigger.
  std::size_t min_jobs = 32;
  /// Seed recorded for the retrain the trigger provokes; the monitor
  /// itself is deterministic and draws no randomness.
  std::uint64_t seed = 41;
};

struct WindowAttribution {
  std::size_t window_index = 0;  // 0-based, includes reference windows
  std::size_t n_jobs = 0;
  double median_abs_error = 0.0;  // log10 units
  double baseline_error = 0.0;    // pooled reference median at close time
  double error_ratio = 0.0;       // median / baseline (0 while reference)
  double share_ood = 0.0;
  double share_noise = 0.0;
  double share_drift = 0.0;
  bool reference = false;  // this window fed the baseline
  bool triggered = false;
  StepHealth health;  // step = "online.window"
};

class OnlineMonitor {
 public:
  explicit OnlineMonitor(OnlineMonitorParams params);

  /// Observe one scored job. Returns the window attribution when this
  /// observation completes a window, nullopt otherwise.
  std::optional<WindowAttribution> observe(std::uint64_t app_id,
                                           double y_true, double y_pred);

  /// Close the current partial window (end of stream). Returns nullopt
  /// when no observations are pending.
  std::optional<WindowAttribution> flush();

  /// All closed windows, in order.
  const std::vector<WindowAttribution>& windows() const { return windows_; }

  /// True once every reference window has closed.
  bool reference_ready() const;
  /// Pooled reference median |error|; 0 before reference_ready().
  double baseline_error() const { return baseline_; }
  /// True if any closed window has triggered.
  bool any_trigger() const;
  const OnlineMonitorParams& params() const { return params_; }

 private:
  WindowAttribution close_window();

  OnlineMonitorParams params_;
  std::vector<double> abs_errors_;       // current window
  std::vector<std::uint64_t> app_ids_;   // current window
  std::vector<double> ref_errors_;       // pooled reference |errors|
  std::unordered_set<std::uint64_t> ref_apps_;
  double baseline_ = 0.0;
  std::size_t n_closed_ = 0;
  std::vector<WindowAttribution> windows_;
};

}  // namespace iotax::taxonomy
