// Deployment-time drift monitoring — the operational counterpart of the
// paper's generalization analysis (§VIII, Fig. 1c) and its concept-drift
// reference [5]: watch a deployed model's error stream in time windows
// and raise an alarm when the error level or its distribution departs
// from the reference period, so operators retrain *before* predictions
// quietly rot.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/data/table.hpp"
#include "src/data/view.hpp"

namespace iotax::taxonomy {

struct DriftParams {
  double window_seconds = 86400.0 * 7.0;  // one week per window
  /// First `reference_windows` windows define the healthy baseline.
  std::size_t reference_windows = 4;
  /// Alarm when a window's median |error| exceeds this multiple of the
  /// reference median.
  double error_ratio_alarm = 1.5;
  /// Alarm when the two-sample KS statistic between a window's error
  /// distribution and the reference distribution exceeds this.
  double ks_alarm = 0.30;
  /// Windows with fewer jobs are reported but never alarmed.
  std::size_t min_jobs = 30;
};

struct DriftWindow {
  double t0 = 0.0;
  double t1 = 0.0;
  std::size_t n_jobs = 0;
  double median_abs_error = 0.0;
  double error_ratio = 0.0;  // vs reference median
  double ks = 0.0;           // vs reference distribution
  bool alarm = false;
};

struct DriftReport {
  double reference_median = 0.0;
  std::size_t n_reference_jobs = 0;
  std::vector<DriftWindow> windows;  // post-reference windows only
  std::size_t n_alarms = 0;
  /// First alarmed window index, or windows.size() if none.
  std::size_t first_alarm = 0;
};

/// Analyse a deployed model's error stream. `times` are job start times
/// (seconds), `errors` signed log10 prediction errors, both parallel and
/// time-sorted. Throws if the reference period is empty.
DriftReport monitor_drift(std::span<const double> times,
                          std::span<const double> errors,
                          const DriftParams& params = {});

/// Render as aligned text rows with alarm markers.
std::string render_drift_report(const DriftReport& report);

// ------------------------------------------------------- feature drift

struct FeatureDrift {
  std::string feature;
  double ks = 0.0;  // two-sample KS: reference window vs recent window
};

/// Data drift, as opposed to error drift: compare each feature column's
/// distribution between a reference row set and a recent row set, and
/// rank features by KS distance. Flags *why* a model drifted (e.g. new
/// applications shifting POSIX_SIZE buckets) before labels/errors are
/// even available.
std::vector<FeatureDrift> feature_drift(
    const data::Table& features, std::span<const std::size_t> reference_rows,
    std::span<const std::size_t> recent_rows, std::size_t top_k = 10);

/// DatasetView overload: row sets are view-local indices.
std::vector<FeatureDrift> feature_drift(
    const data::DatasetView& ds, std::span<const std::size_t> reference_rows,
    std::span<const std::size_t> recent_rows, std::size_t top_k = 10);

}  // namespace iotax::taxonomy
