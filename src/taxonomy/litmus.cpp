#include "src/taxonomy/litmus.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

#include "src/ml/metrics.hpp"
#include "src/stats/descriptive.hpp"
#include "src/telemetry/cobalt.hpp"

namespace iotax::taxonomy {

AppBoundResult litmus_application_bound(const data::DatasetView& ds) {
  const auto sets = find_duplicate_sets(ds);
  if (sets.empty()) {
    throw std::invalid_argument(
        "litmus_application_bound: dataset has no duplicate sets");
  }
  AppBoundResult res;
  res.stats = duplicate_stats(ds, sets);
  auto errors = duplicate_errors(ds, sets);
  for (auto& e : errors) e = std::fabs(e);
  res.median_abs_error = stats::median(errors);
  res.mean_abs_error = stats::mean(errors);
  return res;
}

SystemBoundResult litmus_system_bound(const data::DatasetView& ds,
                                      const data::Split& split,
                                      const std::vector<FeatureSet>& app_sets,
                                      const ml::GbtParams& params) {
  if (split.train.empty() || split.test.empty()) {
    throw std::invalid_argument("litmus_system_bound: empty split side");
  }
  auto timed_sets = app_sets;
  timed_sets.push_back(FeatureSet::kStartTimeOnly);
  const auto x_train_app = feature_matrix(ds, app_sets, split.train);
  const auto x_test_app = feature_matrix(ds, app_sets, split.test);
  const auto x_train_timed = feature_matrix(ds, timed_sets, split.train);
  const auto x_test_timed = feature_matrix(ds, timed_sets, split.test);
  const auto y_train = targets(ds, split.train);
  const auto y_test = targets(ds, split.test);
  return litmus_system_bound(x_train_app, x_test_app, x_train_timed,
                             x_test_timed, y_train, y_test, params);
}

SystemBoundResult litmus_system_bound(const data::MatrixView& x_train_app,
                                      const data::MatrixView& x_test_app,
                                      const data::MatrixView& x_train_timed,
                                      const data::MatrixView& x_test_timed,
                                      std::span<const double> y_train,
                                      std::span<const double> y_test,
                                      const ml::GbtParams& params) {
  if (y_train.empty() || y_test.empty()) {
    throw std::invalid_argument("litmus_system_bound: empty split side");
  }
  SystemBoundResult res;
  {
    ml::GradientBoostedTrees model(params);
    model.fit(x_train_app, y_train);
    res.err_app_only =
        ml::median_abs_log_error(y_test, model.predict(x_test_app));
  }
  {
    // Remembering the whole lifetime of I/O weather takes a bigger model
    // than app behaviour alone (§VII.A): more trees, and day-level bin
    // resolution on the start-time column (weather events last hours to
    // days; coarse quantile bins would average them away).
    ml::GbtParams golden = params;
    golden.n_estimators = std::max<std::size_t>(golden.n_estimators * 2, 128);
    golden.per_feature_bins.assign(x_train_timed.cols(), golden.max_bins);
    golden.per_feature_bins.back() = 2048;  // start time is the last column
    ml::GradientBoostedTrees model(golden);
    model.fit(x_train_timed, y_train);
    res.err_with_time =
        ml::median_abs_log_error(y_test, model.predict(x_test_timed));
  }
  res.reduction_frac =
      res.err_app_only > 0.0
          ? (res.err_app_only - res.err_with_time) / res.err_app_only
          : 0.0;
  return res;
}

OodResult litmus_ood(std::span<const double> epistemic,
                     std::span<const double> abs_errors,
                     std::optional<double> eu_threshold, double shoulder_frac) {
  if (epistemic.size() != abs_errors.size() || epistemic.empty()) {
    throw std::invalid_argument("litmus_ood: bad input sizes");
  }
  if (shoulder_frac <= 0.0 || shoulder_frac >= 1.0) {
    throw std::invalid_argument("litmus_ood: shoulder_frac not in (0,1)");
  }
  const double total_error =
      std::accumulate(abs_errors.begin(), abs_errors.end(), 0.0);
  OodResult res;
  if (eu_threshold.has_value()) {
    res.eu_threshold = *eu_threshold;
  } else {
    // Inverse-cumulative-error shoulder: sort jobs by EU descending and
    // take the EU at which the running error share crosses shoulder_frac.
    std::vector<std::size_t> order(epistemic.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
      return epistemic[a] > epistemic[b];
    });
    double running = 0.0;
    res.eu_threshold = epistemic[order.front()] + 1.0;  // nothing flagged
    for (const std::size_t i : order) {
      running += abs_errors[i];
      if (running > shoulder_frac * total_error) {
        res.eu_threshold = epistemic[i];
        break;
      }
    }
  }
  res.is_ood.resize(epistemic.size());
  double ood_error = 0.0;
  for (std::size_t i = 0; i < epistemic.size(); ++i) {
    res.is_ood[i] = epistemic[i] >= res.eu_threshold;
    if (res.is_ood[i]) {
      ++res.n_ood;
      ood_error += abs_errors[i];
    }
  }
  res.frac_ood =
      static_cast<double>(res.n_ood) / static_cast<double>(epistemic.size());
  res.error_share_ood = total_error > 0.0 ? ood_error / total_error : 0.0;
  res.error_ratio = res.frac_ood > 0.0 && res.error_share_ood > 0.0
                        ? res.error_share_ood / res.frac_ood
                        : 0.0;
  return res;
}

NoiseBoundResult litmus_noise_bound(const data::DatasetView& ds, double dt_window,
                                    const std::vector<bool>* exclude) {
  auto all_sets = find_duplicate_sets(ds);
  if (exclude != nullptr) {
    if (exclude->size() != ds.size()) {
      throw std::invalid_argument("litmus_noise_bound: exclude size mismatch");
    }
    // Drop excluded rows from the sets, then re-prune.
    std::vector<DuplicateSet> kept;
    for (auto& s : all_sets) {
      DuplicateSet ns = s;
      ns.rows.clear();
      for (std::size_t r : s.rows) {
        if (!(*exclude)[r]) ns.rows.push_back(r);
      }
      if (ns.rows.size() >= 2) kept.push_back(std::move(ns));
    }
    all_sets = std::move(kept);
  }
  const auto concurrent = concurrent_subsets(ds, all_sets, dt_window);
  if (concurrent.size() < 3) {
    throw std::invalid_argument(
        "litmus_noise_bound: too few concurrent duplicate sets");
  }
  NoiseBoundResult res;
  res.n_sets = concurrent.size();
  std::size_t sets_of_two = 0;
  std::size_t sets_leq_six = 0;
  for (const auto& s : concurrent) {
    res.n_jobs += s.rows.size();
    if (s.rows.size() == 2) ++sets_of_two;
    if (s.rows.size() <= 6) ++sets_leq_six;
  }
  res.frac_sets_of_two =
      static_cast<double>(sets_of_two) / static_cast<double>(res.n_sets);
  res.frac_sets_leq_six =
      static_cast<double>(sets_leq_six) / static_cast<double>(res.n_sets);

  const auto errors = duplicate_errors(ds, concurrent);
  std::vector<double> abs_errors(errors.size());
  for (std::size_t i = 0; i < errors.size(); ++i) {
    abs_errors[i] = std::fabs(errors[i]);
  }
  res.median_abs_error = stats::median(abs_errors);
  res.normal_fit = stats::fit_normal(errors);
  res.t_fit = stats::fit_student_t(errors);
  res.t_preference =
      (res.t_fit.log_likelihood - res.normal_fit.log_likelihood) /
      static_cast<double>(errors.size());
  // Spread estimate: t-distribution variance when defined, else the
  // normal MLE; both already reflect the per-set Bessel correction.
  if (res.t_fit.df > 2.0) {
    res.sigma_log10 = std::sqrt(res.t_fit.scale * res.t_fit.scale *
                                res.t_fit.df / (res.t_fit.df - 2.0));
  } else {
    res.sigma_log10 = res.normal_fit.stddev;
  }
  res.band68_pct = (std::pow(10.0, res.sigma_log10) - 1.0) * 100.0;
  res.band95_pct = (std::pow(10.0, 1.959964 * res.sigma_log10) - 1.0) * 100.0;
  return res;
}

std::vector<DtBin> dt_binned_distributions(const data::DatasetView& ds,
                                           std::span<const double> edges) {
  if (edges.size() < 2) {
    throw std::invalid_argument("dt_binned_distributions: need >= 2 edges");
  }
  const auto sets = find_duplicate_sets(ds);
  const auto pairs = duplicate_pairs(ds, sets);
  std::vector<DtBin> bins(edges.size() - 1);
  std::vector<std::vector<double>> values(bins.size());
  std::vector<std::vector<double>> weights(bins.size());
  for (std::size_t b = 0; b < bins.size(); ++b) {
    bins[b].dt_lo = edges[b];
    bins[b].dt_hi = edges[b + 1];
  }
  for (const auto& p : pairs) {
    auto it = std::upper_bound(edges.begin(), edges.end(), p.dt);
    long b = std::distance(edges.begin(), it) - 1;
    b = std::clamp(b, 0L, static_cast<long>(bins.size()) - 1);
    values[static_cast<std::size_t>(b)].push_back(p.dphi);
    weights[static_cast<std::size_t>(b)].push_back(p.weight);
  }
  for (std::size_t b = 0; b < bins.size(); ++b) {
    bins[b].n_pairs = values[b].size();
    if (values[b].empty()) continue;
    bins[b].p05 = stats::weighted_quantile(values[b], weights[b], 0.05);
    bins[b].p25 = stats::weighted_quantile(values[b], weights[b], 0.25);
    bins[b].median = stats::weighted_quantile(values[b], weights[b], 0.5);
    bins[b].p75 = stats::weighted_quantile(values[b], weights[b], 0.75);
    bins[b].p95 = stats::weighted_quantile(values[b], weights[b], 0.95);
    bins[b].stddev =
        values[b].size() >= 2 ? stats::stddev(values[b]) : 0.0;
  }
  return bins;
}

}  // namespace iotax::taxonomy
