#include "src/taxonomy/drift.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

#include "src/stats/descriptive.hpp"
#include "src/stats/fitting.hpp"
#include "src/util/str.hpp"

namespace iotax::taxonomy {

DriftReport monitor_drift(std::span<const double> times,
                          std::span<const double> errors,
                          const DriftParams& params) {
  if (times.size() != errors.size() || times.empty()) {
    throw std::invalid_argument("monitor_drift: bad input sizes");
  }
  if (params.window_seconds <= 0.0 || params.reference_windows == 0) {
    throw std::invalid_argument("monitor_drift: bad params");
  }
  for (std::size_t i = 1; i < times.size(); ++i) {
    if (times[i] < times[i - 1]) {
      throw std::invalid_argument("monitor_drift: times must be sorted");
    }
  }

  // Slice into windows.
  const double t_begin = times.front();
  std::vector<std::vector<double>> window_abs;
  for (std::size_t i = 0; i < times.size(); ++i) {
    const auto w = static_cast<std::size_t>((times[i] - t_begin) /
                                            params.window_seconds);
    if (w >= window_abs.size()) window_abs.resize(w + 1);
    window_abs[w].push_back(std::fabs(errors[i]));
  }
  if (window_abs.size() <= params.reference_windows) {
    throw std::invalid_argument(
        "monitor_drift: not enough data beyond the reference period");
  }

  DriftReport report;
  std::vector<double> reference;
  for (std::size_t w = 0; w < params.reference_windows; ++w) {
    reference.insert(reference.end(), window_abs[w].begin(),
                     window_abs[w].end());
  }
  if (reference.empty()) {
    throw std::invalid_argument("monitor_drift: empty reference period");
  }
  report.reference_median = stats::median(reference);
  report.n_reference_jobs = reference.size();

  for (std::size_t w = params.reference_windows; w < window_abs.size(); ++w) {
    DriftWindow win;
    win.t0 = t_begin + static_cast<double>(w) * params.window_seconds;
    win.t1 = win.t0 + params.window_seconds;
    win.n_jobs = window_abs[w].size();
    if (!window_abs[w].empty()) {
      win.median_abs_error = stats::median(window_abs[w]);
      win.error_ratio =
          report.reference_median > 0.0
              ? win.median_abs_error / report.reference_median
              : 0.0;
      win.ks = stats::two_sample_ks(window_abs[w], reference);
      win.alarm = win.n_jobs >= params.min_jobs &&
                  (win.error_ratio > params.error_ratio_alarm ||
                   win.ks > params.ks_alarm);
    }
    report.windows.push_back(win);
  }
  report.first_alarm = report.windows.size();
  for (std::size_t i = 0; i < report.windows.size(); ++i) {
    if (report.windows[i].alarm) {
      ++report.n_alarms;
      if (report.first_alarm == report.windows.size()) report.first_alarm = i;
    }
  }
  return report;
}

std::string render_drift_report(const DriftReport& report) {
  std::ostringstream out;
  out << "drift monitor: reference median |log10 err| = "
      << util::format_double(report.reference_median, 4) << " ("
      << report.n_reference_jobs << " jobs)\n";
  out << "window(day)   jobs   median    ratio     KS   status\n";
  for (const auto& w : report.windows) {
    char line[128];
    std::snprintf(line, sizeof(line), "%6.0f-%-6.0f %5zu %8.4f %8.2f %6.2f   %s\n",
                  w.t0 / 86400.0, w.t1 / 86400.0, w.n_jobs,
                  w.median_abs_error, w.error_ratio, w.ks,
                  w.alarm ? "ALARM" : (w.n_jobs == 0 ? "empty" : "ok"));
    out << line;
  }
  out << report.n_alarms << " alarmed window(s)\n";
  return out.str();
}

std::vector<FeatureDrift> feature_drift(
    const data::Table& features, std::span<const std::size_t> reference_rows,
    std::span<const std::size_t> recent_rows, std::size_t top_k) {
  if (reference_rows.empty() || recent_rows.empty()) {
    throw std::invalid_argument("feature_drift: empty row set");
  }
  std::vector<FeatureDrift> drifts;
  drifts.reserve(features.n_cols());
  std::vector<double> ref;
  std::vector<double> rec;
  for (std::size_t c = 0; c < features.n_cols(); ++c) {
    const auto col = features.col(c);
    data::gather(col, reference_rows, &ref);
    data::gather(col, recent_rows, &rec);
    drifts.push_back({features.names()[c], stats::two_sample_ks(ref, rec)});
  }
  std::sort(drifts.begin(), drifts.end(),
            [](const FeatureDrift& a, const FeatureDrift& b) {
              return a.ks > b.ks;
            });
  if (drifts.size() > top_k) drifts.resize(top_k);
  return drifts;
}

std::vector<FeatureDrift> feature_drift(const data::DatasetView& ds,
                                        std::span<const std::size_t>
                                            reference_rows,
                                        std::span<const std::size_t>
                                            recent_rows,
                                        std::size_t top_k) {
  // Map view-local rows to base rows once, then reuse the Table path.
  std::vector<std::size_t> ref_base(reference_rows.size());
  std::vector<std::size_t> rec_base(recent_rows.size());
  for (std::size_t i = 0; i < reference_rows.size(); ++i) {
    ref_base[i] = ds.base_row(reference_rows[i]);
  }
  for (std::size_t i = 0; i < recent_rows.size(); ++i) {
    rec_base[i] = ds.base_row(recent_rows[i]);
  }
  return feature_drift(ds.features(), ref_base, rec_base, top_k);
}

}  // namespace iotax::taxonomy
