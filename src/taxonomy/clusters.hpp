// Workload clustering meets the taxonomy: group jobs by their I/O
// features (the §II "workload clustering" direction) and break a model's
// error down per cluster, so an I/O expert sees *which kinds of jobs*
// the model fails on rather than a single aggregate number.
#pragma once

#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/ml/kmeans.hpp"
#include "src/taxonomy/feature_sets.hpp"

namespace iotax::taxonomy {

struct ClusterStats {
  std::size_t cluster = 0;
  std::size_t n_jobs = 0;
  std::size_t n_apps = 0;          // distinct applications inside
  double median_abs_error = 0.0;   // model error within the cluster
  double median_target = 0.0;      // median log10 throughput
  double duplicate_fraction = 0.0; // share of jobs in duplicate sets
  /// The feature (by name) whose standardised centroid coordinate has
  /// the largest magnitude — a one-word hint at what the cluster *is*.
  std::string defining_feature;
  double defining_value = 0.0;     // that coordinate (standardised units)
};

struct ClusterBreakdown {
  std::vector<ClusterStats> clusters;  // sorted by median error, desc
  double overall_median_error = 0.0;
};

/// Cluster the jobs (application features) and attribute model errors.
/// `errors` are signed log10 prediction errors, parallel to the view's
/// rows.
ClusterBreakdown cluster_error_breakdown(
    const data::DatasetView& ds, std::span<const double> errors,
    const std::vector<FeatureSet>& feature_sets, ml::KMeansParams params = {});

/// Render as aligned rows.
std::string render_cluster_breakdown(const ClusterBreakdown& breakdown);

}  // namespace iotax::taxonomy
