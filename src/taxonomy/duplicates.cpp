#include "src/taxonomy/duplicates.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <stdexcept>

#include "src/stats/descriptive.hpp"

namespace iotax::taxonomy {

std::vector<DuplicateSet> find_duplicate_sets(const data::DatasetView& ds) {
  // std::map gives a deterministic (sorted) set order.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::vector<std::size_t>>
      groups;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    groups[{ds.meta(i).app_id, ds.meta(i).config_id}].push_back(i);
  }
  std::vector<DuplicateSet> sets;
  for (auto& [key, rows] : groups) {
    if (rows.size() < 2) continue;
    DuplicateSet set;
    set.app_id = key.first;
    set.config_id = key.second;
    set.rows = std::move(rows);
    double sum = 0.0;
    for (std::size_t r : set.rows) sum += ds.target(r);
    set.mean_target = sum / static_cast<double>(set.rows.size());
    sets.push_back(std::move(set));
  }
  return sets;
}

DuplicateStats duplicate_stats(const data::DatasetView& ds,
                               const std::vector<DuplicateSet>& sets) {
  DuplicateStats stats;
  stats.n_sets = sets.size();
  for (const auto& s : sets) {
    stats.n_duplicate_jobs += s.rows.size();
    stats.largest_set = std::max(stats.largest_set, s.rows.size());
  }
  stats.duplicate_fraction =
      ds.size() == 0 ? 0.0
                     : static_cast<double>(stats.n_duplicate_jobs) /
                           static_cast<double>(ds.size());
  return stats;
}

std::vector<double> duplicate_errors(const data::DatasetView& ds,
                                     const std::vector<DuplicateSet>& sets) {
  std::vector<double> errors;
  for (const auto& s : sets) {
    const auto n = static_cast<double>(s.rows.size());
    // Bessel factor: the sample mean is closer to the samples than the
    // true mean, shrinking raw deviations by sqrt((n-1)/n) on average.
    const double bessel = std::sqrt(n / (n - 1.0));
    for (std::size_t r : s.rows) {
      errors.push_back((ds.target(r) - s.mean_target) * bessel);
    }
  }
  return errors;
}

std::vector<DuplicatePair> duplicate_pairs(const data::DatasetView& ds,
                                           const std::vector<DuplicateSet>& sets,
                                           std::size_t max_set_pairs_from) {
  std::vector<DuplicatePair> pairs;
  for (const auto& s : sets) {
    // Sort rows of the set by start time so consecutive subsampling picks
    // natural neighbours.
    auto rows = s.rows;
    std::sort(rows.begin(), rows.end(), [&ds](std::size_t a, std::size_t b) {
      return ds.meta(a).start_time < ds.meta(b).start_time;
    });
    std::vector<std::pair<std::size_t, std::size_t>> idx_pairs;
    if (rows.size() <= max_set_pairs_from) {
      for (std::size_t i = 0; i < rows.size(); ++i) {
        for (std::size_t j = i + 1; j < rows.size(); ++j) {
          idx_pairs.emplace_back(rows[i], rows[j]);
        }
      }
    } else {
      for (std::size_t i = 0; i + 1 < rows.size(); ++i) {
        idx_pairs.emplace_back(rows[i], rows[i + 1]);
      }
    }
    if (idx_pairs.empty()) continue;
    const double w = 1.0 / static_cast<double>(idx_pairs.size());
    for (const auto& [a, b] : idx_pairs) {
      DuplicatePair p;
      p.row_a = a;
      p.row_b = b;
      p.dt = std::fabs(ds.meta(a).start_time - ds.meta(b).start_time);
      p.dphi = ds.target(a) - ds.target(b);
      p.weight = w;
      pairs.push_back(p);
    }
  }
  return pairs;
}

std::vector<DuplicateSet> concurrent_subsets(
    const data::DatasetView& ds, const std::vector<DuplicateSet>& sets,
    double dt_window) {
  if (dt_window <= 0.0) {
    throw std::invalid_argument("concurrent_subsets: dt_window must be > 0");
  }
  std::vector<DuplicateSet> out;
  for (const auto& s : sets) {
    auto rows = s.rows;
    std::sort(rows.begin(), rows.end(), [&ds](std::size_t a, std::size_t b) {
      return ds.meta(a).start_time < ds.meta(b).start_time;
    });
    std::size_t cluster_begin = 0;
    const auto flush = [&](std::size_t begin, std::size_t end) {
      if (end - begin < 2) return;
      DuplicateSet sub;
      sub.app_id = s.app_id;
      sub.config_id = s.config_id;
      sub.rows.assign(rows.begin() + static_cast<long>(begin),
                      rows.begin() + static_cast<long>(end));
      double sum = 0.0;
      for (std::size_t r : sub.rows) sum += ds.target(r);
      sub.mean_target = sum / static_cast<double>(sub.rows.size());
      out.push_back(std::move(sub));
    };
    for (std::size_t i = 1; i <= rows.size(); ++i) {
      const bool breaks =
          i == rows.size() ||
          ds.meta(rows[i]).start_time -
                  ds.meta(rows[cluster_begin]).start_time >
              dt_window;
      if (breaks) {
        flush(cluster_begin, i);
        cluster_begin = i;
      }
    }
  }
  return out;
}

}  // namespace iotax::taxonomy
