// Cross-cluster transfer litmus: train a throughput model on cluster A,
// score it on cluster B, and attribute the transfer gap to the
// taxonomy's error classes. The paper's authors could only speculate
// about this decomposition — production logs never come with the
// counterfactual "what would this model's error be if cluster B had no
// weather/contention/noise?" — but the simulator's per-job ground-truth
// decomposition (JobMeta log_fa/fg/fl/fn) answers it exactly: ablating
// one truth component at a time from the test targets isolates how much
// of the transferred model's error each class contributes.
//
// The out-of-distribution share is measured twice: as ground truth (the
// fraction of B's jobs whose application never appears in A's training
// rows — knowable only in simulation) and as a deployable estimate from
// the existing cluster machinery (distance to the A-trained k-means
// centroids, thresholded at a quantile of A's own distances). The
// litmus reports both, plus the ranking quality of the estimator
// against the ground truth, so the transfer smoke can check the
// estimate against the oracle.
#pragma once

#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/kmeans.hpp"
#include "src/taxonomy/drift.hpp"
#include "src/taxonomy/feature_sets.hpp"

namespace iotax::taxonomy {

struct TransferParams {
  /// Model trained on cluster A's training rows.
  ml::GbtParams gbt;
  /// Fraction of A (time-ordered tail) held out for the in-cluster
  /// error the transfer gap is measured against.
  double holdout_frac = 0.25;
  /// Feature sets the model consumes; defaults to the counters every
  /// platform collects (POSIX + MPI-IO), so A-trained models score B
  /// rows even when only one side runs LMT.
  std::vector<FeatureSet> feature_sets = {FeatureSet::kPosix,
                                          FeatureSet::kMpiio};
  /// Clusters for the OoD distance estimator.
  ml::KMeansParams kmeans;
  /// A B row is flagged OoD when its distance to the nearest A-train
  /// centroid exceeds this quantile of A-train's own distances.
  double ood_quantile = 0.98;
  /// Feature-drift features reported (largest KS first).
  std::size_t drift_top_k = 8;

  void validate() const;
};

/// Fractions of the transferred model's error attributable to each
/// taxonomy class, from ground-truth ablation; non-negative, sum to 1
/// (when the transfer error is nonzero).
struct TransferShares {
  double application = 0.0;  // model vs f_a: app behaviour incl. OoD apps
  double system = 0.0;       // f_g: I/O climate and weather
  double contention = 0.0;   // f_l: neighbour interference
  double noise = 0.0;        // f_n: inherent noise
};

struct TransferReport {
  std::string train_system;
  std::string test_system;
  std::size_t n_train = 0;
  std::size_t n_holdout = 0;
  std::size_t n_test = 0;

  double in_cluster_error = 0.0;  // median |log10 err| on the A holdout
  double transfer_error = 0.0;    // median |log10 err| on all of B
  double gap = 0.0;               // transfer_error - in_cluster_error

  /// Ablation shares of the transfer error (on B). Cross-platform pairs
  /// are dominated by the application term: the platform's throughput
  /// response is part of f_a, and a model trained on A has learned A's.
  TransferShares oracle;
  /// The same ablation on the A holdout, for contrast: in-cluster error
  /// splits across weather/contention/noise, transfer error does not.
  TransferShares oracle_in_cluster;

  /// Ground truth: share of B rows whose app never occurs in A-train.
  double ood_fraction_truth = 0.0;
  /// Estimate: share of B rows beyond the centroid-distance threshold.
  double ood_fraction_est = 0.0;
  /// Ranking quality of the distance score against the ground-truth OoD
  /// labels (0.5 = blind, 1.0 = perfect).
  double ood_auc = 0.0;

  /// Features most drifted between A-train and B (two-sample KS).
  std::vector<FeatureDrift> top_drift;
};

/// Run the litmus on two finished datasets (each carrying simulator
/// ground truth in its JobMeta). Throws std::invalid_argument when
/// either side is too small to split or the feature sets are absent.
TransferReport run_transfer_litmus(const data::Dataset& train_ds,
                                   const data::Dataset& test_ds,
                                   const TransferParams& params = {});

/// Render as aligned text rows.
std::string render_transfer_report(const TransferReport& report);

}  // namespace iotax::taxonomy
