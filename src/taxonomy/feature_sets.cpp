#include "src/taxonomy/feature_sets.hpp"

#include <stdexcept>

#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax::taxonomy {

std::vector<std::string> feature_columns(const data::DatasetView& ds,
                                         const std::vector<FeatureSet>& sets) {
  std::vector<std::string> cols;
  const auto append = [&cols, &ds](const std::vector<std::string>& names) {
    for (const auto& n : names) {
      if (!ds.has_feature(n)) {
        throw std::invalid_argument("feature_columns: dataset for system '" +
                                    ds.system_name() + "' lacks column " + n);
      }
      cols.push_back(n);
    }
  };
  for (const auto set : sets) {
    switch (set) {
      case FeatureSet::kPosix:
        append(telemetry::posix_feature_names());
        break;
      case FeatureSet::kMpiio:
        append(telemetry::mpiio_feature_names());
        break;
      case FeatureSet::kCobalt:
        append(telemetry::cobalt_feature_names());
        break;
      case FeatureSet::kLmt:
        append(telemetry::lmt_feature_names());
        break;
      case FeatureSet::kStartTimeOnly:
        append({telemetry::start_time_feature_name()});
        break;
      case FeatureSet::kBurst:
        append(telemetry::burst_feature_names());
        break;
    }
  }
  return cols;
}

data::Matrix feature_matrix(const data::DatasetView& ds,
                            const std::vector<FeatureSet>& sets,
                            std::span<const std::size_t> rows) {
  const auto cols = feature_columns(ds, sets);
  const std::size_t n = rows.empty() ? ds.size() : rows.size();
  data::Matrix m(n, cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto col = ds.features().col(cols[c]);
    for (std::size_t r = 0; r < n; ++r) {
      m(r, c) = col[ds.base_row(rows.empty() ? r : rows[r])];
    }
  }
  return m;
}

data::MatrixView feature_view(const data::DatasetView& ds,
                              const std::vector<FeatureSet>& sets,
                              std::vector<std::size_t>* cols_storage,
                              std::vector<std::size_t>* rows_storage,
                              std::span<const std::size_t> rows) {
  const auto names = feature_columns(ds, sets);
  cols_storage->clear();
  cols_storage->reserve(names.size());
  for (const auto& name : names) {
    cols_storage->push_back(ds.features().index_of(name));
  }
  const std::size_t n = rows.empty() ? ds.size() : rows.size();
  rows_storage->resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    (*rows_storage)[i] = ds.base_row(rows.empty() ? i : rows[i]);
  }
  return data::MatrixView(ds.features(), *rows_storage, *cols_storage);
}

std::vector<double> targets(const data::DatasetView& ds,
                            std::span<const std::size_t> rows) {
  const std::size_t n = rows.empty() ? ds.size() : rows.size();
  std::vector<double> out(n);
  for (std::size_t i = 0; i < n; ++i) {
    out[i] = ds.target(rows.empty() ? i : rows[i]);
  }
  return out;
}

}  // namespace iotax::taxonomy
