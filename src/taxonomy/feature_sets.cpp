#include "src/taxonomy/feature_sets.hpp"

#include <stdexcept>

#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax::taxonomy {

std::vector<std::string> feature_columns(const data::Dataset& ds,
                                         const std::vector<FeatureSet>& sets) {
  std::vector<std::string> cols;
  const auto append = [&cols, &ds](const std::vector<std::string>& names) {
    for (const auto& n : names) {
      if (!ds.features.has_column(n)) {
        throw std::invalid_argument("feature_columns: dataset for system '" +
                                    ds.system_name + "' lacks column " + n);
      }
      cols.push_back(n);
    }
  };
  for (const auto set : sets) {
    switch (set) {
      case FeatureSet::kPosix:
        append(telemetry::posix_feature_names());
        break;
      case FeatureSet::kMpiio:
        append(telemetry::mpiio_feature_names());
        break;
      case FeatureSet::kCobalt:
        append(telemetry::cobalt_feature_names());
        break;
      case FeatureSet::kLmt:
        append(telemetry::lmt_feature_names());
        break;
      case FeatureSet::kStartTimeOnly:
        append({telemetry::start_time_feature_name()});
        break;
    }
  }
  return cols;
}

data::Matrix feature_matrix(const data::Dataset& ds,
                            const std::vector<FeatureSet>& sets,
                            std::span<const std::size_t> rows) {
  const auto cols = feature_columns(ds, sets);
  data::Matrix m(rows.empty() ? ds.size() : rows.size(), cols.size());
  for (std::size_t c = 0; c < cols.size(); ++c) {
    const auto col = ds.features.col(cols[c]);
    if (rows.empty()) {
      for (std::size_t r = 0; r < col.size(); ++r) m(r, c) = col[r];
    } else {
      for (std::size_t r = 0; r < rows.size(); ++r) m(r, c) = col[rows[r]];
    }
  }
  return m;
}

std::vector<double> targets(const data::Dataset& ds,
                            std::span<const std::size_t> rows) {
  if (rows.empty()) return ds.target;
  std::vector<double> out(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) out[i] = ds.target[rows[i]];
  return out;
}

}  // namespace iotax::taxonomy
