// Model interpretation for I/O experts, in the spirit of the authors'
// earlier "explainable local models" work ([2] in the paper): rank which
// counters a trained throughput model actually relies on, aggregate them
// into human-level feature groups, and contrast app-feature importance
// with the share taken by time/system features when they are available.
#pragma once

#include <string>
#include <vector>

#include "src/ml/gbt.hpp"

namespace iotax::taxonomy {

struct FeatureImportance {
  std::string name;
  double importance = 0.0;  // normalised gain share, sums to 1 over all
};

/// Per-feature gain importances of a fitted GBT, sorted descending.
std::vector<FeatureImportance> ranked_importances(
    const ml::GradientBoostedTrees& model,
    const std::vector<std::string>& feature_names);

struct GroupImportance {
  std::string group;
  double importance = 0.0;
};

/// Aggregate importances into semantic groups by counter-name prefix:
/// volume (BYTES/SIZE buckets), access pattern (SEQ/CONSEC/SWITCH/ALIGN),
/// metadata (OPENS/STATS/SEEKS/FSYNC), files (FILES), scale (NPROCS/
/// NODES/CORES), time (START_TIME/RUNTIME), storage (LMT_*), other.
std::vector<GroupImportance> grouped_importances(
    const std::vector<FeatureImportance>& features);

/// Render the top-k features and all groups as aligned text.
std::string render_importance_report(
    const std::vector<FeatureImportance>& features, std::size_t top_k = 15);

}  // namespace iotax::taxonomy
