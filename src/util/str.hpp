// Small string utilities shared across the library (no locale surprises).
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace iotax::util {

/// Split on a single-character delimiter; keeps empty fields.
std::vector<std::string> split(std::string_view s, char delim);

/// Strip ASCII whitespace from both ends.
std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`.
bool starts_with(std::string_view s, std::string_view prefix);

/// Join items with a separator.
std::string join(const std::vector<std::string>& items,
                 std::string_view sep);

/// Locale-independent double parsing; throws std::invalid_argument on
/// malformed input (trailing junk included).
double parse_double(std::string_view s);

/// Locale-independent integer parsing with the same strictness.
long long parse_int(std::string_view s);

/// printf-style double formatting with fixed precision.
std::string format_double(double v, int precision = 6);

/// Render n as a human-readable byte count ("1.5 GiB").
std::string human_bytes(double n);

}  // namespace iotax::util
