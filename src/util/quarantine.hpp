// Shared vocabulary for ingest-time data defects. Every layer that can
// reject or repair a record — the telemetry parsers, the dataset
// builder, Dataset::validate_all — reports violations through the same
// reason codes, so a quarantine report reads the same whether the
// defect was caught at the byte, record, or dataset level, and fault-
// injection ground truth can be compared against it exactly.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/util/json.hpp"

namespace iotax::util {

/// Why a record (or byte range) was quarantined or repaired. Codes are
/// grouped by the layer that detects them; the numeric values are part
/// of the tooling interface (stable across releases).
enum class Reason : std::uint8_t {
  // Container / framing level (binary + text parsers).
  kBadMagic = 0,        // archive does not start with the format magic
  kBadVersion,          // unsupported container version
  kTruncated,           // stream ended inside a header or record
  kImplausibleSize,     // framing length field is corrupt
  kBadChecksum,         // record payload fails its CRC
  kCounterIndexOutOfRange,  // sparse counter index past the schema
  kTrailingBytes,       // payload longer than its decoded content
  // Text / CSV / JSON field level.
  kMalformedHeader,     // header line is not "# key: value"
  kIncompleteHeader,    // record ended before all required header fields
  kMalformedLine,       // counter/CSV line with the wrong field count
  kUnknownCounter,      // counter name not in the schema
  kUnknownModule,       // counter module not POSIX/MPIIO
  kBadNumber,           // numeric field failed to parse
  kRaggedRow,           // CSV row width differs from the header
  // Record semantics (dataset builder / validate).
  kSizeMismatch,        // counter vector sizes do not match the schema
  kBadThroughput,       // non-positive or non-finite target throughput
  kNonFiniteValue,      // NaN/Inf in a counter or feature column
  kNegativeCounter,     // negative value in a non-negative counter
  kTimeInverted,        // job ends before it starts
  kDuplicateJobId,      // job id already ingested (log duplication)
  kMissingTruth,        // job absent from the ground-truth map
  kTruthMismatch,       // target disagrees with the truth decomposition
  // Process / network level (serving fleet). Appended so every earlier
  // code keeps its stable numeric value.
  kDeadlineExpired,     // peer failed to answer within the deadline
  kConnectionReset,     // peer vanished mid-conversation
};

inline constexpr std::size_t kReasonCount = 24;

/// Stable kebab-case name for a reason code ("bad-checksum").
const char* reason_name(Reason reason);

/// Reverse lookup of reason_name: false (and *out untouched) for a
/// string outside the vocabulary. Used by serve clients rendering typed
/// error replies and by tooling that reads quarantine JSON back.
bool reason_from_name(std::string_view name, Reason* out);

struct QuarantineEntry {
  Reason reason = Reason::kBadMagic;
  std::uint64_t job_id = 0;     // 0 when not attributable to a job
  /// Index of the record in the input stream; npos when not record-scoped.
  std::size_t record_index = static_cast<std::size_t>(-1);
  /// Byte offset (binary formats) or line number (text formats).
  std::size_t offset = 0;
  std::string detail;
};

/// Accumulates quarantined records and applied repairs across an ingest
/// pass. Per-reason counts are exact so they can be checked against
/// fault-injection ground truth; the entry list is a bounded sample
/// (kMaxStoredEntries) so a pathological input — e.g. a corrupted record
/// count promising 4 billion records — cannot drive memory growth.
class QuarantineReport {
 public:
  static constexpr std::size_t kMaxStoredEntries = 10000;

  void add(QuarantineEntry entry);
  /// Count `n` rejections of one reason at once, storing a single sample
  /// entry. Used when a truncation wipes out a whole tail of records.
  void add_many(Reason reason, std::size_t n, QuarantineEntry sample);
  void note_repair(Reason reason);
  void merge(const QuarantineReport& other);

  /// Bounded sample of quarantined records (counts stay exact above it).
  const std::vector<QuarantineEntry>& entries() const { return entries_; }
  std::size_t total() const;
  std::size_t count(Reason reason) const;
  std::size_t repaired_total() const;
  std::size_t repaired(Reason reason) const;
  bool empty() const { return total() == 0 && repaired_total() == 0; }

  /// Deterministic JSON: {"quarantined": N, "repaired": N,
  ///  "by_reason": {...}, "repaired_by_reason": {...}, "entries": [...]}.
  /// At most `max_entries` entries are emitted (the counts stay exact).
  Json to_json(std::size_t max_entries = 50) const;

  /// Aligned text table of per-reason counts for CLI output.
  std::string render() const;

 private:
  std::vector<QuarantineEntry> entries_;
  std::array<std::size_t, kReasonCount> counts_{};
  std::array<std::size_t, kReasonCount> repairs_{};
};

}  // namespace iotax::util
