// Minimal CSV reader/writer used by the dataset pipeline and benches.
// Handles quoting per RFC 4180 (quoted fields, embedded commas/quotes);
// does not support embedded newlines, which our log formats never emit.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace iotax::util {

struct Csv {
  std::vector<std::string> header;
  std::vector<std::vector<std::string>> rows;

  /// Column index by name; throws std::out_of_range if absent.
  std::size_t column(const std::string& name) const;
};

/// Parse one CSV line into fields (RFC 4180 quoting).
std::vector<std::string> parse_csv_line(const std::string& line);

/// Quote a field if it contains a comma, quote, or leading/trailing space.
std::string csv_escape(const std::string& field);

Csv read_csv(std::istream& in, bool has_header = true);
Csv read_csv_file(const std::string& path, bool has_header = true);

void write_csv(std::ostream& out, const Csv& csv);
void write_csv_file(const std::string& path, const Csv& csv);

}  // namespace iotax::util
