// Retry pacing primitives shared by the serving fleet: a jittered
// exponential backoff schedule and a monotonic deadline.
//
// Both are deterministic where it matters. backoff_delay_ms draws its
// jitter from a caller-owned Rng, so a seeded retry loop replays the
// exact same delay sequence run after run — which is what lets the
// chaos tests assert counter-exact ground truth instead of sleeping
// "long enough". Deadline is a thin wrapper over steady_clock that the
// retry loops use to split one per-request budget across attempts.
#pragma once

#include <chrono>
#include <cstdint>

#include "src/util/rng.hpp"

namespace iotax::util {

/// Exponential backoff schedule: attempt k (0-based) sleeps
/// min(initial_ms * multiplier^k, max_ms), scaled by a uniform jitter in
/// [1 - jitter, 1 + jitter]. jitter = 0 makes the schedule exact.
struct BackoffPolicy {
  std::uint64_t initial_ms = 1;
  std::uint64_t max_ms = 64;
  double multiplier = 2.0;
  double jitter = 0.5;

  /// Throws std::invalid_argument when multiplier < 1, jitter outside
  /// [0, 1), or initial_ms > max_ms.
  void validate() const;
};

/// Delay before retry attempt `attempt` (0-based). Never returns more
/// than policy.max_ms * (1 + jitter); returns 0 only when initial_ms
/// is 0.
std::uint64_t backoff_delay_ms(const BackoffPolicy& policy,
                               std::size_t attempt, Rng& rng);

/// A point in the future against steady_clock. `after_ms(0)` is the
/// infinite deadline (never expires, remaining_ms saturates).
class Deadline {
 public:
  static Deadline after_ms(std::uint64_t ms);
  static Deadline infinite() { return after_ms(0); }

  bool is_infinite() const { return infinite_; }
  bool expired() const;
  /// Milliseconds left, 0 when expired; ~0ULL when infinite.
  std::uint64_t remaining_ms() const;
  /// min(cap, remaining): the per-attempt slice of the budget. A cap of
  /// 0 means "no per-attempt cap" and yields the full remainder.
  std::uint64_t slice_ms(std::uint64_t cap) const;

 private:
  std::chrono::steady_clock::time_point at_{};
  bool infinite_ = true;
};

}  // namespace iotax::util
