#include "src/util/frame.hpp"

#include <cstring>

namespace iotax::util {

namespace {

void put_bytes(std::string* out, const void* p, std::size_t n) {
  out->append(static_cast<const char*>(p), n);
}

bool get_bytes(std::span<const std::uint8_t> buf, std::size_t* pos, void* p,
               std::size_t n) {
  if (buf.size() - *pos < n) return false;
  std::memcpy(p, buf.data() + *pos, n);
  *pos += n;
  return true;
}

}  // namespace

// The library only targets little-endian hosts (the binary archive
// format already assumes it), so the "codec" is a bounds-checked memcpy.
void put_u16(std::string* out, std::uint16_t v) { put_bytes(out, &v, 2); }
void put_u32(std::string* out, std::uint32_t v) { put_bytes(out, &v, 4); }
void put_u64(std::string* out, std::uint64_t v) { put_bytes(out, &v, 8); }
void put_f64(std::string* out, double v) { put_bytes(out, &v, 8); }

bool get_u16(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint16_t* v) {
  return get_bytes(buf, pos, v, 2);
}
bool get_u32(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint32_t* v) {
  return get_bytes(buf, pos, v, 4);
}
bool get_u64(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint64_t* v) {
  return get_bytes(buf, pos, v, 8);
}
bool get_f64(std::span<const std::uint8_t> buf, std::size_t* pos, double* v) {
  return get_bytes(buf, pos, v, 8);
}

std::string encode_frame(FrameType type, std::uint8_t flags,
                         std::uint64_t request_id, std::string_view payload) {
  std::string out;
  out.reserve(FrameHeader::kWireSize + payload.size());
  put_u32(&out, FrameHeader::kMagic);
  put_u16(&out, FrameHeader::kVersion);
  out.push_back(static_cast<char>(type));
  out.push_back(static_cast<char>(flags));
  put_u64(&out, request_id);
  put_u32(&out, static_cast<std::uint32_t>(payload.size()));
  out.append(payload);
  return out;
}

FrameDecode decode_frame(std::span<const std::uint8_t> buf) {
  FrameDecode r;
  // Reject a wrong magic as soon as the bytes that disagree arrive: a
  // peer speaking another protocol should not be able to stall us by
  // sending three bytes and pausing.
  const std::uint8_t magic_bytes[4] = {0x49, 0x4F, 0x54, 0x58};  // "IOTX"
  for (std::size_t i = 0; i < 4 && i < buf.size(); ++i) {
    if (buf[i] != magic_bytes[i]) {
      r.status = FrameDecode::Status::kBad;
      r.reason = Reason::kBadMagic;
      r.detail = "frame does not start with IOTX";
      return r;
    }
  }
  if (buf.size() < FrameHeader::kWireSize) {
    r.status = FrameDecode::Status::kNeedMore;
    return r;
  }
  std::size_t pos = 4;  // magic already checked
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  get_u16(buf, &pos, &r.header.version);
  get_bytes(buf, &pos, &type, 1);
  get_bytes(buf, &pos, &flags, 1);
  get_u64(buf, &pos, &r.header.request_id);
  get_u32(buf, &pos, &r.header.payload_len);
  r.header.type = type;
  r.header.flags = flags;
  if (r.header.version != FrameHeader::kVersion) {
    r.status = FrameDecode::Status::kBad;
    r.reason = Reason::kBadVersion;
    r.detail = "protocol version " + std::to_string(r.header.version);
    return r;
  }
  if (r.header.payload_len > FrameHeader::kMaxPayload) {
    r.status = FrameDecode::Status::kBad;
    r.reason = Reason::kImplausibleSize;
    r.detail = "payload length " + std::to_string(r.header.payload_len);
    return r;
  }
  if (buf.size() < FrameHeader::kWireSize + r.header.payload_len) {
    r.status = FrameDecode::Status::kNeedMore;
    return r;
  }
  r.status = FrameDecode::Status::kOk;
  r.consumed = FrameHeader::kWireSize + r.header.payload_len;
  return r;
}

}  // namespace iotax::util
