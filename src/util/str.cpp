#include "src/util/str.hpp"

#include <array>
#include <cctype>
#include <charconv>
#include <cstdio>
#include <stdexcept>

namespace iotax::util {

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string join(const std::vector<std::string>& items, std::string_view sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i != 0) out += sep;
    out += items[i];
  }
  return out;
}

double parse_double(std::string_view s) {
  s = trim(s);
  double v = 0.0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("parse_double: bad input '" + std::string(s) +
                                "'");
  }
  return v;
}

long long parse_int(std::string_view s) {
  s = trim(s);
  long long v = 0;
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, v);
  if (ec != std::errc{} || ptr != end) {
    throw std::invalid_argument("parse_int: bad input '" + std::string(s) +
                                "'");
  }
  return v;
}

std::string format_double(double v, int precision) {
  std::array<char, 64> buf{};
  const int n = std::snprintf(buf.data(), buf.size(), "%.*f", precision, v);
  return std::string(buf.data(), static_cast<std::size_t>(n));
}

std::string human_bytes(double n) {
  static constexpr const char* kUnits[] = {"B",   "KiB", "MiB",
                                           "GiB", "TiB", "PiB"};
  int unit = 0;
  while (n >= 1024.0 && unit < 5) {
    n /= 1024.0;
    ++unit;
  }
  return format_double(n, n < 10 ? 2 : 1) + " " + kUnits[unit];
}

}  // namespace iotax::util
