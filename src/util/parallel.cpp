#include "src/util/parallel.hpp"

#include <algorithm>
#include <atomic>
#include <exception>
#include <limits>

#include "src/util/env.hpp"

namespace iotax::util {

namespace {

// Workers set this once and for all; the calling thread sets it only
// while it participates in a job.
thread_local bool tl_in_parallel = false;

struct RegionGuard {
  bool prev;
  RegionGuard() : prev(tl_in_parallel) { tl_in_parallel = true; }
  ~RegionGuard() { tl_in_parallel = prev; }
};

// ~4 claimable chunks per thread keeps the shared-queue load balancing
// effective without shrinking chunks below cache-friendly sizes.
constexpr std::size_t kChunksPerThread = 4;

}  // namespace

std::size_t parallel_threads() { return env_threads(); }

bool in_parallel_region() { return tl_in_parallel; }

struct ThreadPool::Job {
  std::size_t n_chunks = 0;
  const std::function<void(std::size_t)>* chunk_fn = nullptr;
  std::uint64_t seq = 0;
  std::atomic<std::size_t> next{0};
  std::atomic<std::size_t> completed{0};
  std::atomic<bool> cancelled{false};
  std::mutex done_mu;
  std::condition_variable done_cv;
  std::mutex err_mu;
  std::size_t err_chunk = std::numeric_limits<std::size_t>::max();
  std::exception_ptr err;

  // Claim-and-run loop shared by workers and the calling thread. Every
  // chunk index is claimed exactly once and counted exactly once, even
  // after cancellation, so `completed == n_chunks` is the job's single
  // termination condition.
  void process() {
    for (;;) {
      const std::size_t c = next.fetch_add(1, std::memory_order_relaxed);
      if (c >= n_chunks) break;
      if (!cancelled.load(std::memory_order_relaxed)) {
        try {
          (*chunk_fn)(c);
        } catch (...) {
          {
            std::lock_guard<std::mutex> lock(err_mu);
            // Keep the lowest-index exception so error reporting does not
            // depend on scheduling.
            if (c < err_chunk) {
              err_chunk = c;
              err = std::current_exception();
            }
          }
          cancelled.store(true, std::memory_order_relaxed);
        }
      }
      if (completed.fetch_add(1, std::memory_order_acq_rel) + 1 == n_chunks) {
        std::lock_guard<std::mutex> lock(done_mu);
        done_cv.notify_all();
      }
    }
  }
};

ThreadPool::ThreadPool(std::size_t n_workers) {
  std::lock_guard<std::mutex> lock(pool_mu_);
  grow_locked(n_workers);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    stop_ = true;
  }
  wake_cv_.notify_all();
  for (auto& t : workers_) t.join();
}

std::size_t ThreadPool::n_workers() const {
  std::lock_guard<std::mutex> lock(pool_mu_);
  return workers_.size();
}

void ThreadPool::grow_locked(std::size_t target_workers) {
  target_workers = std::min<std::size_t>(target_workers, 255);
  while (workers_.size() < target_workers) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

void ThreadPool::worker_loop() {
  tl_in_parallel = true;  // workers only ever execute inside regions
  std::uint64_t last_seq = 0;
  std::unique_lock<std::mutex> lock(pool_mu_);
  for (;;) {
    wake_cv_.wait(lock, [&] {
      return stop_ || (job_ != nullptr && job_->seq != last_seq);
    });
    if (stop_) return;
    auto job = job_;
    last_seq = job->seq;
    lock.unlock();
    job->process();
    lock.lock();
  }
}

void ThreadPool::run(std::size_t n_chunks, std::size_t max_threads,
                     const std::function<void(std::size_t)>& chunk_fn) {
  if (n_chunks == 0) return;
  if (tl_in_parallel || n_chunks == 1 || max_threads <= 1) {
    // Serial path: inline, in chunk order. Covers IOTAX_THREADS=1 and
    // nested calls from inside a region (which must not re-enter the
    // pool: its workers may all be busy with the enclosing job).
    RegionGuard guard;
    for (std::size_t c = 0; c < n_chunks; ++c) chunk_fn(c);
    return;
  }
  std::lock_guard<std::mutex> run_lock(run_mu_);
  auto job = std::make_shared<Job>();
  job->n_chunks = n_chunks;
  job->chunk_fn = &chunk_fn;
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    grow_locked(std::min(max_threads, n_chunks) - 1);
    job->seq = ++job_seq_;
    job_ = job;
  }
  wake_cv_.notify_all();
  {
    RegionGuard guard;
    job->process();  // caller participates; exceptions are captured
  }
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&] {
      return job->completed.load(std::memory_order_acquire) == n_chunks;
    });
  }
  {
    std::lock_guard<std::mutex> lock(pool_mu_);
    job_ = nullptr;
  }
  if (job->err) std::rethrow_exception(job->err);
}

ThreadPool& ThreadPool::global() {
  static ThreadPool pool(0);
  return pool;
}

void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  const std::size_t threads = tl_in_parallel ? 1 : parallel_threads();
  if (threads <= 1 || n <= grain) {
    RegionGuard guard;
    body(0, n);
    return;
  }
  const std::size_t target = threads * kChunksPerThread;
  const std::size_t chunk = std::max(grain, (n + target - 1) / target);
  const std::size_t n_chunks = (n + chunk - 1) / chunk;
  if (n_chunks <= 1) {
    RegionGuard guard;
    body(0, n);
    return;
  }
  ThreadPool::global().run(n_chunks, threads, [&](std::size_t c) {
    const std::size_t lo = c * chunk;
    body(lo, std::min(n, lo + chunk));
  });
}

void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body) {
  parallel_for_chunks(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) body(i);
  });
}

}  // namespace iotax::util
