// Runtime configuration knobs read from the environment.
//
// All dataset sizes in the benches are multiplied by IOTAX_SCALE so that
// the full evaluation can be grown toward paper scale on bigger machines
// (IOTAX_SCALE=10 roughly matches the paper's Theta job count) or shrunk
// for CI (IOTAX_SCALE=0.2).
#pragma once

#include <cstddef>
#include <string>

namespace iotax::util {

/// IOTAX_SCALE env var as a double, clamped to [0.05, 100]; default 1.0.
double env_scale();

/// IOTAX_THREADS env var as a thread count, clamped to [1, 256]; unset
/// or unparsable values fall back to hardware_concurrency() (1 when the
/// runtime cannot report it). Re-read on every call so runtime flips
/// (tests, benches) take effect immediately.
std::size_t env_threads();

/// Generic env lookup with default.
std::string env_or(const std::string& name, const std::string& fallback);

/// Scale a default count by env_scale(), with a floor to keep statistics
/// meaningful at tiny scales.
std::size_t scaled_count(std::size_t base, std::size_t floor = 100);

}  // namespace iotax::util
