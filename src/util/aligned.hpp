// 32-byte-aligned allocation for SIMD kernel buffers.
//
// The AVX2 kernels use unaligned loads (penalty-free on every AVX2 part
// when the data is in fact aligned), so alignment is a throughput
// nicety, not a correctness requirement — but cache-line-aligning the
// PackedForest node arrays and GEMM panels keeps hot vectors from
// straddling lines.
#pragma once

#include <cstddef>
#include <cstdlib>
#include <limits>
#include <new>
#include <vector>

namespace iotax::util {

inline constexpr std::size_t kSimdAlign = 32;

template <typename T, std::size_t Align = kSimdAlign>
struct AlignedAllocator {
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  T* allocate(std::size_t n) {
    if (n > std::numeric_limits<std::size_t>::max() / sizeof(T)) {
      throw std::bad_alloc();
    }
    // aligned_alloc requires the size to be a multiple of the alignment.
    const std::size_t bytes = (n * sizeof(T) + Align - 1) / Align * Align;
    void* p = std::aligned_alloc(Align, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, std::size_t) noexcept { std::free(p); }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

template <typename T>
using aligned_vector = std::vector<T, AlignedAllocator<T>>;

}  // namespace iotax::util
