// Bounded multi-producer / multi-consumer queue with explicit
// backpressure, built for the serve request path: session readers
// try_push() and treat a full queue as "shed this request", the batcher
// pop_batch()es up to a batch size within a bounded gather window, and
// close() starts a graceful drain — producers are refused, consumers
// keep popping until the queue is empty and only then see "done".
//
// All synchronisation is a mutex + two condition variables; no lock-free
// cleverness, so the type is trivially ThreadSanitizer-clean and the
// shutdown ordering is easy to reason about.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace iotax::util {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(std::size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Non-blocking push. False when the queue is full (backpressure: the
  /// caller sheds) or closed (drain: the caller refuses new work).
  bool try_push(T v) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_ || q_.size() >= capacity_) return false;
      q_.push_back(std::move(v));
    }
    nonempty_cv_.notify_one();
    return true;
  }

  /// Pop up to `max_n` items as one batch. Blocks until at least one
  /// item is available (or the queue is closed); once the first item of
  /// the batch is in hand, waits at most `gather_wait` for more before
  /// returning what accumulated. Returns an empty vector only when the
  /// queue is closed *and* drained — the consumer's signal to exit.
  std::vector<T> pop_batch(std::size_t max_n,
                           std::chrono::microseconds gather_wait) {
    std::unique_lock<std::mutex> lock(mu_);
    nonempty_cv_.wait(lock, [&] { return !q_.empty() || closed_; });
    if (q_.empty()) return {};  // closed and drained
    if (q_.size() < max_n && !closed_) {
      const auto deadline = std::chrono::steady_clock::now() + gather_wait;
      nonempty_cv_.wait_until(lock, deadline, [&] {
        return q_.size() >= max_n || closed_;
      });
    }
    std::vector<T> batch;
    const std::size_t n = q_.size() < max_n ? q_.size() : max_n;
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    return batch;
  }

  /// Refuse all future pushes and wake every blocked consumer. Items
  /// already queued stay poppable (drain-then-exit semantics).
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    nonempty_cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return q_.size();
  }

  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable nonempty_cv_;
  std::deque<T> q_;
  bool closed_ = false;
};

}  // namespace iotax::util
