// Deterministic, seedable random number generation for simulation and ML.
//
// We use xoshiro256** (Blackman & Vigna) seeded through SplitMix64 rather
// than std::mt19937 because (1) its state is small enough to copy freely
// when forking per-job streams, and (2) its output is identical across
// standard libraries, which keeps experiments reproducible bit-for-bit.
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

namespace iotax::util {

/// SplitMix64 generator; used to expand a single 64-bit seed into the
/// xoshiro state and useful on its own for hashing counters into seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** PRNG with distribution helpers.
///
/// Satisfies UniformRandomBitGenerator so it can be used with <random>
/// distributions and std::shuffle, but the members below avoid the
/// libstdc++-specific value sequences of std:: distributions.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x1234abcdULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return next(); }

  std::uint64_t next();

  /// Fork an independent stream; `stream` values give distinct streams.
  Rng fork(std::uint64_t stream) const;

  /// Uniform double in [0, 1).
  double uniform();
  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);
  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
  /// Standard normal via Box-Muller (cached second variate).
  double normal();
  /// Normal with the given mean and standard deviation.
  double normal(double mean, double stddev);
  /// Log-normal: exp(Normal(mu, sigma)).
  double lognormal(double mu, double sigma);
  /// Exponential with the given rate (lambda > 0).
  double exponential(double rate);
  /// Student-t variate with `df` degrees of freedom (df > 0).
  double student_t(double df);
  /// Gamma variate, shape k > 0, scale theta > 0 (Marsaglia-Tsang).
  double gamma(double shape, double scale);
  /// Bernoulli trial.
  bool bernoulli(double p);
  /// Poisson variate (Knuth for small mean, normal approx for large).
  std::int64_t poisson(double mean);
  /// Zipf-like heavy-tailed integer in [0, n) with exponent s >= 0.
  /// s == 0 degenerates to uniform. Uses inverse-CDF on precomputable
  /// weights only for small n; otherwise rejection sampling.
  std::int64_t zipf(std::int64_t n, double s);

  /// Index into a discrete distribution given non-negative weights.
  std::size_t categorical(std::span<const double> weights);

  /// Sample k distinct indices from [0, n) (k <= n), order unspecified.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(v[i - 1], v[j]);
    }
  }

  template <typename T>
  const T& choice(const std::vector<T>& v) {
    return v[static_cast<std::size_t>(
        uniform_int(0, static_cast<std::int64_t>(v.size()) - 1))];
  }

 private:
  std::array<std::uint64_t, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace iotax::util
