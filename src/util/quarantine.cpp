#include "src/util/quarantine.hpp"

#include <sstream>

namespace iotax::util {

namespace {

constexpr std::array<const char*, kReasonCount> kReasonNames = {
    "bad-magic",
    "bad-version",
    "truncated",
    "implausible-size",
    "bad-checksum",
    "counter-index-out-of-range",
    "trailing-bytes",
    "malformed-header",
    "incomplete-header",
    "malformed-line",
    "unknown-counter",
    "unknown-module",
    "bad-number",
    "ragged-row",
    "size-mismatch",
    "bad-throughput",
    "non-finite-value",
    "negative-counter",
    "time-inverted",
    "duplicate-job-id",
    "missing-truth",
    "truth-mismatch",
    "deadline-expired",
    "connection-reset",
};

std::size_t index_of(Reason reason) {
  return static_cast<std::size_t>(reason);
}

}  // namespace

const char* reason_name(Reason reason) {
  return kReasonNames[index_of(reason)];
}

bool reason_from_name(std::string_view name, Reason* out) {
  for (std::size_t i = 0; i < kReasonCount; ++i) {
    if (name == kReasonNames[i]) {
      *out = static_cast<Reason>(i);
      return true;
    }
  }
  return false;
}

void QuarantineReport::add(QuarantineEntry entry) {
  ++counts_[index_of(entry.reason)];
  if (entries_.size() < kMaxStoredEntries) {
    entries_.push_back(std::move(entry));
  }
}

void QuarantineReport::add_many(Reason reason, std::size_t n,
                                QuarantineEntry sample) {
  if (n == 0) return;
  counts_[index_of(reason)] += n;
  sample.reason = reason;
  if (entries_.size() < kMaxStoredEntries) {
    entries_.push_back(std::move(sample));
  }
}

void QuarantineReport::note_repair(Reason reason) {
  ++repairs_[index_of(reason)];
}

void QuarantineReport::merge(const QuarantineReport& other) {
  for (std::size_t i = 0; i < kReasonCount; ++i) {
    counts_[i] += other.counts_[i];
    repairs_[i] += other.repairs_[i];
  }
  for (const auto& e : other.entries_) {
    if (entries_.size() >= kMaxStoredEntries) break;
    entries_.push_back(e);
  }
}

std::size_t QuarantineReport::total() const {
  std::size_t total = 0;
  for (const auto n : counts_) total += n;
  return total;
}

std::size_t QuarantineReport::count(Reason reason) const {
  return counts_[index_of(reason)];
}

std::size_t QuarantineReport::repaired_total() const {
  std::size_t total = 0;
  for (const auto n : repairs_) total += n;
  return total;
}

std::size_t QuarantineReport::repaired(Reason reason) const {
  return repairs_[index_of(reason)];
}

Json QuarantineReport::to_json(std::size_t max_entries) const {
  Json doc = Json::object();
  doc.set("quarantined", total());
  doc.set("repaired", repaired_total());
  Json by_reason = Json::object();
  Json repaired_by = Json::object();
  for (std::size_t i = 0; i < kReasonCount; ++i) {
    if (counts_[i] != 0) by_reason.set(kReasonNames[i], counts_[i]);
    if (repairs_[i] != 0) repaired_by.set(kReasonNames[i], repairs_[i]);
  }
  doc.set("by_reason", std::move(by_reason));
  doc.set("repaired_by_reason", std::move(repaired_by));
  Json list = Json::array();
  const std::size_t n = entries_.size() < max_entries ? entries_.size()
                                                      : max_entries;
  for (std::size_t i = 0; i < n; ++i) {
    const auto& e = entries_[i];
    Json item = Json::object();
    item.set("reason", reason_name(e.reason));
    if (e.job_id != 0) item.set("job_id", static_cast<double>(e.job_id));
    if (e.record_index != static_cast<std::size_t>(-1)) {
      item.set("record", e.record_index);
    }
    item.set("offset", e.offset);
    if (!e.detail.empty()) item.set("detail", e.detail);
    list.push_back(std::move(item));
  }
  doc.set("entries", std::move(list));
  return doc;
}

std::string QuarantineReport::render() const {
  std::ostringstream out;
  out << "quarantined " << total() << " record(s), repaired "
      << repaired_total() << '\n';
  for (std::size_t i = 0; i < kReasonCount; ++i) {
    if (counts_[i] == 0 && repairs_[i] == 0) continue;
    out << "  " << kReasonNames[i];
    for (std::size_t pad = std::string(kReasonNames[i]).size(); pad < 28;
         ++pad) {
      out << ' ';
    }
    out << "quarantined " << counts_[i];
    if (repairs_[i] != 0) out << ", repaired " << repairs_[i];
    out << '\n';
  }
  return out.str();
}

}  // namespace iotax::util
