#include "src/util/backoff.hpp"

#include <cmath>
#include <stdexcept>

namespace iotax::util {

void BackoffPolicy::validate() const {
  if (!(multiplier >= 1.0) || !std::isfinite(multiplier)) {
    throw std::invalid_argument("backoff: multiplier must be >= 1");
  }
  if (!(jitter >= 0.0 && jitter < 1.0)) {
    throw std::invalid_argument("backoff: jitter must be in [0, 1)");
  }
  if (initial_ms > max_ms) {
    throw std::invalid_argument("backoff: initial_ms must be <= max_ms");
  }
}

std::uint64_t backoff_delay_ms(const BackoffPolicy& policy,
                               std::size_t attempt, Rng& rng) {
  double base = static_cast<double>(policy.initial_ms);
  for (std::size_t k = 0; k < attempt; ++k) {
    base *= policy.multiplier;
    if (base >= static_cast<double>(policy.max_ms)) break;
  }
  if (base > static_cast<double>(policy.max_ms)) {
    base = static_cast<double>(policy.max_ms);
  }
  const double scale =
      policy.jitter > 0.0
          ? rng.uniform(1.0 - policy.jitter, 1.0 + policy.jitter)
          : 1.0;
  const double delay = base * scale;
  return delay <= 0.0 ? 0 : static_cast<std::uint64_t>(std::llround(delay));
}

Deadline Deadline::after_ms(std::uint64_t ms) {
  Deadline d;
  if (ms == 0) {
    d.infinite_ = true;
    return d;
  }
  d.infinite_ = false;
  d.at_ = std::chrono::steady_clock::now() + std::chrono::milliseconds(ms);
  return d;
}

bool Deadline::expired() const {
  if (infinite_) return false;
  return std::chrono::steady_clock::now() >= at_;
}

std::uint64_t Deadline::remaining_ms() const {
  if (infinite_) return ~0ULL;
  const auto left = at_ - std::chrono::steady_clock::now();
  if (left <= std::chrono::steady_clock::duration::zero()) return 0;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(left).count());
}

std::uint64_t Deadline::slice_ms(std::uint64_t cap) const {
  const std::uint64_t left = remaining_ms();
  if (cap == 0) return left;
  return left < cap ? left : cap;
}

}  // namespace iotax::util
