#include "src/util/csv.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iotax::util {

std::size_t Csv::column(const std::string& name) const {
  for (std::size_t i = 0; i < header.size(); ++i) {
    if (header[i] == name) return i;
  }
  throw std::out_of_range("Csv::column: no column named '" + name + "'");
}

std::vector<std::string> parse_csv_line(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  bool in_quotes = false;
  for (std::size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < line.size() && line[i + 1] == '"') {
          cur += '"';
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        cur += c;
      }
    } else if (c == '"') {
      in_quotes = true;
    } else if (c == ',') {
      fields.push_back(std::move(cur));
      cur.clear();
    } else if (c != '\r') {
      cur += c;
    }
  }
  fields.push_back(std::move(cur));
  return fields;
}

std::string csv_escape(const std::string& field) {
  const bool needs_quotes =
      field.find_first_of(",\"") != std::string::npos ||
      (!field.empty() && (field.front() == ' ' || field.back() == ' '));
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

Csv read_csv(std::istream& in, bool has_header) {
  Csv csv;
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    auto fields = parse_csv_line(line);
    if (first && has_header) {
      csv.header = std::move(fields);
    } else {
      csv.rows.push_back(std::move(fields));
    }
    first = false;
  }
  return csv;
}

Csv read_csv_file(const std::string& path, bool has_header) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_csv_file: cannot open " + path);
  return read_csv(in, has_header);
}

void write_csv(std::ostream& out, const Csv& csv) {
  auto write_row = [&out](const std::vector<std::string>& row) {
    for (std::size_t i = 0; i < row.size(); ++i) {
      if (i != 0) out << ',';
      out << csv_escape(row[i]);
    }
    out << '\n';
  };
  if (!csv.header.empty()) write_row(csv.header);
  for (const auto& row : csv.rows) write_row(row);
}

void write_csv_file(const std::string& path, const Csv& csv) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_csv_file: cannot open " + path);
  write_csv(out, csv);
}

}  // namespace iotax::util
