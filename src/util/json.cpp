#include "src/util/json.hpp"

#include <cmath>
#include <cstdio>
#include <stdexcept>

namespace iotax::util {

namespace {

[[noreturn]] void fail(const char* what, std::size_t pos) {
  throw std::invalid_argument("Json::parse: " + std::string(what) +
                              " at offset " + std::to_string(pos));
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r')) {
      ++pos;
    }
  }

  char peek() {
    if (pos >= text.size()) fail("unexpected end of input", pos);
    return text[pos];
  }

  void expect(char c) {
    if (peek() != c) fail("unexpected character", pos);
    ++pos;
  }

  bool consume_literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return false;
    pos += lit.size();
    return true;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos >= text.size()) fail("unterminated string", pos);
      const char c = text[pos++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) {
        fail("control character in string", pos - 1);
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos >= text.size()) fail("unterminated escape", pos);
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos + 4 > text.size()) fail("bad \\u escape", pos);
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text[pos++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code += static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code += static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code += static_cast<unsigned>(h - 'A' + 10);
            } else {
              fail("bad \\u escape", pos - 1);
            }
          }
          // UTF-8 encode the basic-plane code point (surrogate pairs are
          // rejected; the library never emits them).
          if (code >= 0xD800 && code <= 0xDFFF) {
            fail("surrogate \\u escapes unsupported", pos - 6);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("bad escape character", pos - 1);
      }
    }
  }

  Json parse_number() {
    const std::size_t start = pos;
    if (peek() == '-') ++pos;
    while (pos < text.size() &&
           ((text[pos] >= '0' && text[pos] <= '9') || text[pos] == '.' ||
            text[pos] == 'e' || text[pos] == 'E' || text[pos] == '+' ||
            text[pos] == '-')) {
      ++pos;
    }
    const std::string token(text.substr(start, pos - start));
    char* end = nullptr;
    const double v = std::strtod(token.c_str(), &end);
    if (end != token.c_str() + token.size() || token.empty() ||
        !std::isfinite(v)) {
      fail("malformed number", start);
    }
    return Json(v);
  }

  Json parse_value(int depth) {
    if (depth > 64) fail("nesting too deep", pos);
    skip_ws();
    const char c = peek();
    if (c == '{') {
      ++pos;
      Json obj = Json::object();
      skip_ws();
      if (peek() == '}') {
        ++pos;
        return obj;
      }
      while (true) {
        skip_ws();
        const std::size_t key_pos = pos;
        std::string key = parse_string();
        if (obj.has(key)) fail("duplicate object key", key_pos);
        skip_ws();
        expect(':');
        obj.set(std::move(key), parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect('}');
        return obj;
      }
    }
    if (c == '[') {
      ++pos;
      Json arr = Json::array();
      skip_ws();
      if (peek() == ']') {
        ++pos;
        return arr;
      }
      while (true) {
        arr.push_back(parse_value(depth + 1));
        skip_ws();
        if (peek() == ',') {
          ++pos;
          continue;
        }
        expect(']');
        return arr;
      }
    }
    if (c == '"') return Json(parse_string());
    if (consume_literal("true")) return Json(true);
    if (consume_literal("false")) return Json(false);
    if (consume_literal("null")) return Json();
    if (c == '-' || (c >= '0' && c <= '9')) return parse_number();
    fail("unexpected character", pos);
  }
};

std::string format_number(double v) {
  // Integers render without a decimal point; everything else uses the
  // shortest round-trippable form %.17g provides.
  if (std::rint(v) == v && std::fabs(v) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
    return buf;
  }
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

}  // namespace

Json Json::parse(std::string_view text) {
  Parser p{text};
  Json v = p.parse_value(0);
  p.skip_ws();
  if (p.pos != text.size()) fail("trailing garbage", p.pos);
  return v;
}

bool Json::as_bool() const {
  if (type_ != Type::kBool) throw std::invalid_argument("Json: not a bool");
  return bool_;
}

double Json::as_double() const {
  if (type_ != Type::kNumber) {
    throw std::invalid_argument("Json: not a number");
  }
  return num_;
}

long long Json::as_int() const {
  const double v = as_double();
  if (std::rint(v) != v || std::fabs(v) > 9.007199254740992e15) {
    throw std::invalid_argument("Json: not an integer");
  }
  return static_cast<long long>(v);
}

const std::string& Json::as_string() const {
  if (type_ != Type::kString) {
    throw std::invalid_argument("Json: not a string");
  }
  return str_;
}

std::size_t Json::size() const {
  if (type_ == Type::kArray) return arr_.size();
  if (type_ == Type::kObject) return obj_.size();
  return 0;
}

const Json& Json::operator[](std::size_t i) const {
  if (type_ != Type::kArray) throw std::invalid_argument("Json: not an array");
  return arr_.at(i);
}

void Json::push_back(Json v) {
  if (type_ != Type::kArray) throw std::invalid_argument("Json: not an array");
  arr_.push_back(std::move(v));
}

bool Json::has(const std::string& key) const { return find(key) != nullptr; }

const Json& Json::at(const std::string& key) const {
  const Json* v = find(key);
  if (v == nullptr) {
    throw std::invalid_argument("Json: missing key '" + key + "'");
  }
  return *v;
}

const Json* Json::find(const std::string& key) const {
  if (type_ != Type::kObject) return nullptr;
  for (const auto& [k, v] : obj_) {
    if (k == key) return &v;
  }
  return nullptr;
}

void Json::set(const std::string& key, Json v) {
  if (type_ != Type::kObject) {
    throw std::invalid_argument("Json: not an object");
  }
  for (auto& [k, existing] : obj_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  obj_.emplace_back(key, std::move(v));
}

const std::vector<std::pair<std::string, Json>>& Json::items() const {
  if (type_ != Type::kObject) {
    throw std::invalid_argument("Json: not an object");
  }
  return obj_;
}

std::string json_quote(std::string_view s) {
  std::string out = "\"";
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
  return out;
}

void Json::dump_to(std::string* out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent < 0) return;
    *out += '\n';
    out->append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: *out += "null"; break;
    case Type::kBool: *out += bool_ ? "true" : "false"; break;
    case Type::kNumber: *out += format_number(num_); break;
    case Type::kString: *out += json_quote(str_); break;
    case Type::kArray: {
      if (arr_.empty()) {
        *out += "[]";
        break;
      }
      *out += '[';
      for (std::size_t i = 0; i < arr_.size(); ++i) {
        if (i != 0) *out += ',';
        newline_pad(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      *out += ']';
      break;
    }
    case Type::kObject: {
      if (obj_.empty()) {
        *out += "{}";
        break;
      }
      *out += '{';
      for (std::size_t i = 0; i < obj_.size(); ++i) {
        if (i != 0) *out += ',';
        newline_pad(depth + 1);
        *out += json_quote(obj_[i].first);
        *out += ':';
        if (indent >= 0) *out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      newline_pad(depth);
      *out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  dump_to(&out, indent, 0);
  return out;
}

}  // namespace iotax::util
