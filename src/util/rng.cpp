#include "src/util/rng.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

namespace iotax::util {

namespace {
std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) {
  SplitMix64 sm(seed);
  for (auto& s : state_) s = sm.next();
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

Rng Rng::fork(std::uint64_t stream) const {
  SplitMix64 sm(state_[0] ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return Rng(sm.next());
}

double Rng::uniform() {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next());  // full range
  // Lemire-style rejection to avoid modulo bias.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * range;
  auto l = static_cast<std::uint64_t>(m);
  if (l < range) {
    const std::uint64_t t = (0 - range) % range;
    while (l < t) {
      x = next();
      m = static_cast<__uint128_t>(x) * range;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return lo + static_cast<std::int64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

double Rng::lognormal(double mu, double sigma) {
  return std::exp(normal(mu, sigma));
}

double Rng::exponential(double rate) {
  if (rate <= 0.0) throw std::invalid_argument("exponential: rate must be > 0");
  double u = 0.0;
  do {
    u = uniform();
  } while (u <= 0.0);
  return -std::log(u) / rate;
}

double Rng::student_t(double df) {
  if (df <= 0.0) throw std::invalid_argument("student_t: df must be > 0");
  // t = Z / sqrt(ChiSq(df)/df); ChiSq(df) = Gamma(df/2, 2).
  const double z = normal();
  const double chi2 = gamma(df / 2.0, 2.0);
  return z / std::sqrt(chi2 / df);
}

double Rng::gamma(double shape, double scale) {
  if (shape <= 0.0 || scale <= 0.0) {
    throw std::invalid_argument("gamma: shape and scale must be > 0");
  }
  if (shape < 1.0) {
    // Boost to shape >= 1 and correct with a power of a uniform.
    const double u = std::max(uniform(), 1e-300);
    return gamma(shape + 1.0, scale) * std::pow(u, 1.0 / shape);
  }
  // Marsaglia-Tsang squeeze method.
  const double d = shape - 1.0 / 3.0;
  const double c = 1.0 / std::sqrt(9.0 * d);
  for (;;) {
    double x = 0.0;
    double v = 0.0;
    do {
      x = normal();
      v = 1.0 + c * x;
    } while (v <= 0.0);
    v = v * v * v;
    const double u = uniform();
    if (u < 1.0 - 0.0331 * x * x * x * x) return d * v * scale;
    if (u > 0.0 &&
        std::log(u) < 0.5 * x * x + d * (1.0 - v + std::log(v))) {
      return d * v * scale;
    }
  }
}

bool Rng::bernoulli(double p) { return uniform() < p; }

std::int64_t Rng::poisson(double mean) {
  if (mean < 0.0) throw std::invalid_argument("poisson: mean must be >= 0");
  if (mean == 0.0) return 0;
  if (mean < 30.0) {
    const double limit = std::exp(-mean);
    double prod = uniform();
    std::int64_t k = 0;
    while (prod > limit) {
      prod *= uniform();
      ++k;
    }
    return k;
  }
  // Normal approximation with continuity correction.
  const double v = normal(mean, std::sqrt(mean));
  return v < 0.0 ? 0 : static_cast<std::int64_t>(v + 0.5);
}

std::int64_t Rng::zipf(std::int64_t n, double s) {
  if (n <= 0) throw std::invalid_argument("zipf: n must be > 0");
  if (s < 0.0) throw std::invalid_argument("zipf: s must be >= 0");
  if (s == 0.0) return uniform_int(0, n - 1);
  // Rejection sampling against the bounding density (Devroye).
  const double b = std::pow(2.0, s - 1.0);
  for (;;) {
    const double u = std::max(uniform(), 1e-300);
    const double v = uniform();
    const double x = std::floor(std::pow(u, -1.0 / (s - 1.0 + 1e-12)));
    if (x < 1.0 || x > static_cast<double>(n)) continue;
    const double t = std::pow(1.0 + 1.0 / x, s - 1.0);
    if (v * x * (t - 1.0) / (b - 1.0) <= t / b) {
      return static_cast<std::int64_t>(x) - 1;
    }
  }
}

std::size_t Rng::categorical(std::span<const double> weights) {
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("categorical: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("categorical: weights sum to zero");
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  if (k > n) throw std::invalid_argument("sample_without_replacement: k > n");
  // Partial Fisher-Yates over an index vector.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = static_cast<std::size_t>(
        uniform_int(static_cast<std::int64_t>(i),
                    static_cast<std::int64_t>(n) - 1));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace iotax::util
