#include "src/util/env.hpp"

#include <algorithm>
#include <cstdlib>
#include <thread>

namespace iotax::util {

double env_scale() {
  const char* raw = std::getenv("IOTAX_SCALE");
  if (raw == nullptr) return 1.0;
  char* end = nullptr;
  const double v = std::strtod(raw, &end);
  if (end == raw || v <= 0.0) return 1.0;
  return std::clamp(v, 0.05, 100.0);
}

std::size_t env_threads() {
  const char* raw = std::getenv("IOTAX_THREADS");
  if (raw != nullptr) {
    char* end = nullptr;
    const long v = std::strtol(raw, &end, 10);
    if (end != raw && v > 0) {
      return static_cast<std::size_t>(std::min(v, 256L));
    }
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

std::string env_or(const std::string& name, const std::string& fallback) {
  const char* raw = std::getenv(name.c_str());
  return raw == nullptr ? fallback : std::string(raw);
}

std::size_t scaled_count(std::size_t base, std::size_t floor) {
  const auto scaled =
      static_cast<std::size_t>(static_cast<double>(base) * env_scale());
  return std::max(scaled, floor);
}

}  // namespace iotax::util
