// Minimal JSON value type with a strict parser and a deterministic
// writer. Covers the subset the library needs — metrics/trace export,
// model-factory parameter strings, and CLI validation of emitted files —
// with no external dependency. Object keys keep insertion order so every
// export is byte-stable across runs.
#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace iotax::util {

class Json {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Json() : type_(Type::kNull) {}
  Json(bool b) : type_(Type::kBool), bool_(b) {}
  Json(double v) : type_(Type::kNumber), num_(v) {}
  Json(int v) : type_(Type::kNumber), num_(v) {}
  Json(long long v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::size_t v) : type_(Type::kNumber), num_(static_cast<double>(v)) {}
  Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  /// Parse a complete JSON document; throws std::invalid_argument on any
  /// syntax error or trailing garbage.
  static Json parse(std::string_view text);

  Type type() const { return type_; }
  bool is_null() const { return type_ == Type::kNull; }
  bool is_bool() const { return type_ == Type::kBool; }
  bool is_number() const { return type_ == Type::kNumber; }
  bool is_string() const { return type_ == Type::kString; }
  bool is_array() const { return type_ == Type::kArray; }
  bool is_object() const { return type_ == Type::kObject; }

  /// Typed accessors; throw std::invalid_argument on a type mismatch.
  bool as_bool() const;
  double as_double() const;
  long long as_int() const;  // also rejects non-integral numbers
  const std::string& as_string() const;

  /// Array/object size; 0 for scalars.
  std::size_t size() const;

  /// Array element access (throws std::out_of_range / type mismatch).
  const Json& operator[](std::size_t i) const;
  void push_back(Json v);

  /// Object access. `at` throws when the key is missing; `find` returns
  /// nullptr. `set` inserts or overwrites, preserving first-seen order.
  bool has(const std::string& key) const;
  const Json& at(const std::string& key) const;
  const Json* find(const std::string& key) const;
  void set(const std::string& key, Json v);
  const std::vector<std::pair<std::string, Json>>& items() const;

  /// Serialize. indent < 0 → compact one-line form; indent >= 0 →
  /// pretty-printed with that many spaces per level.
  std::string dump(int indent = -1) const;

 private:
  Type type_;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<Json> arr_;
  std::vector<std::pair<std::string, Json>> obj_;

  void dump_to(std::string* out, int indent, int depth) const;
};

/// Escape a string for embedding in a JSON document (adds quotes).
std::string json_quote(std::string_view s);

}  // namespace iotax::util
