// Deterministic fork-join parallelism for the library's hot paths.
//
// A single process-wide ThreadPool executes index ranges split into
// chunks. Callers write results into pre-sized per-index slots and run
// any floating-point reduction serially in index order afterwards, so
// model outputs are bit-identical for every IOTAX_THREADS value: chunk
// boundaries and scheduling may differ between runs, but the slot each
// index writes never does. The rules that keep this true:
//
//   1. a parallel body writes only to slots owned by its index;
//   2. reductions (sums, argmins, callbacks) happen serially, in index
//      order, after the region completes — never via atomics into a
//      shared accumulator;
//   3. any RNG consumed inside a region is pre-seeded per index from a
//      serial draw before the region starts.
//
// IOTAX_THREADS=1 short-circuits every region to the plain serial loop.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace iotax::util {

/// Threads a parallel region may use (calling thread included):
/// IOTAX_THREADS when set and positive (clamped to [1, 256]), otherwise
/// hardware_concurrency(). Re-read from the environment on every call so
/// tests and benches can flip it at runtime.
std::size_t parallel_threads();

/// True while the calling thread executes inside a parallel region.
/// Nested parallel_for calls check this and degrade to the serial loop
/// instead of deadlocking the pool.
bool in_parallel_region();

/// Fixed set of worker threads executing chunk jobs. One job runs at a
/// time (concurrent run() calls from distinct external threads
/// serialize); the calling thread participates in its own job, so a
/// one-thread region never touches the pool. The pool grows lazily up
/// to the largest thread count ever requested and is shared process-wide
/// through global().
class ThreadPool {
 public:
  explicit ThreadPool(std::size_t n_workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t n_workers() const;

  /// Run chunk_fn(c) exactly once for every c in [0, n_chunks), using at
  /// most `max_threads` threads including the caller. Blocks until all
  /// chunks completed. If a chunk throws, remaining unstarted chunks are
  /// skipped and the exception from the lowest-index throwing chunk is
  /// rethrown on the caller. Called from inside a parallel region, runs
  /// the chunks inline and in order (nested-call rejection).
  void run(std::size_t n_chunks, std::size_t max_threads,
           const std::function<void(std::size_t)>& chunk_fn);

  /// Process-wide pool; starts with zero workers and grows on demand.
  static ThreadPool& global();

 private:
  struct Job;
  void worker_loop();
  void grow_locked(std::size_t target_workers);

  std::mutex run_mu_;  // serializes external run() calls
  mutable std::mutex pool_mu_;
  std::condition_variable wake_cv_;
  std::vector<std::thread> workers_;
  std::shared_ptr<Job> job_;       // guarded by pool_mu_
  std::uint64_t job_seq_ = 0;      // guarded by pool_mu_
  bool stop_ = false;              // guarded by pool_mu_
};

/// body(lo, hi) over disjoint chunks covering [0, n), each at least
/// `grain` indices (except possibly the last). Chunk boundaries depend
/// on the thread count, so bodies must only produce per-index results;
/// per-chunk scratch buffers are fine, per-chunk FP reductions are not.
void parallel_for_chunks(
    std::size_t n, const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t grain = 1);

/// body(i) for every i in [0, n), distributed over the pool.
void parallel_for(std::size_t n,
                  const std::function<void(std::size_t)>& body);

/// out[i] = fn(i) for i in [0, n); slot order is index order regardless
/// of scheduling. T must be default-constructible and move-assignable.
template <typename T, typename F>
std::vector<T> parallel_map(std::size_t n, F&& fn) {
  std::vector<T> out(n);
  parallel_for_chunks(n, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) out[i] = fn(i);
  });
  return out;
}

}  // namespace iotax::util
