// Length-prefixed binary frame codec for the serve wire protocol.
//
// Every message on a serve connection is one frame: a fixed 20-byte
// little-endian header followed by `payload_len` payload bytes. The
// codec is transport-agnostic (the same bytes flow over Unix-domain and
// TCP sockets) and decoding is non-throwing: a malformed header maps to
// the shared quarantine Reason vocabulary (bad-magic, bad-version,
// implausible-size, truncated), so a corrupt or hostile peer produces a
// typed error reply and a quarantine entry instead of killing the
// daemon — the same failure model the archive parsers follow.
//
//   offset  size  field
//        0     4  magic        0x58544F49 ("IOTX")
//        4     2  version      protocol version (currently 1)
//        6     1  type         FrameType
//        7     1  flags        FrameFlag bits
//        8     8  request_id   client-chosen, echoed verbatim in replies
//       16     4  payload_len  bytes following the header
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>

#include "src/util/quarantine.hpp"

namespace iotax::util {

enum class FrameType : std::uint8_t {
  kPredictRequest = 1,   // payload: PredictRequest (serve/protocol.hpp)
  kPredictResponse = 2,  // payload: PredictResponse
  kErrorResponse = 3,    // payload: ErrorResponse
  kPing = 4,             // empty payload; server replies kPong
  kPong = 5,             // empty payload
  kControlRequest = 6,   // payload: ControlRequest (promote/rollback/status)
  kControlResponse = 7,  // payload: ControlResponse
};

enum FrameFlag : std::uint8_t {
  kFlagPredictDist = 1,  // request mean/aleatory/epistemic, not a point
  kFlagShadow = 2,       // also score the shadow model: values = {prod, shadow}
};

struct FrameHeader {
  static constexpr std::uint32_t kMagic = 0x58544F49u;  // "IOTX" on the wire
  static constexpr std::uint16_t kVersion = 1;
  static constexpr std::size_t kWireSize = 20;
  /// Upper bound on payload_len; anything larger is kImplausibleSize
  /// (a corrupt length field must not drive allocation).
  static constexpr std::uint32_t kMaxPayload = 1u << 20;

  std::uint16_t version = kVersion;
  std::uint8_t type = 0;
  std::uint8_t flags = 0;
  std::uint64_t request_id = 0;
  std::uint32_t payload_len = 0;
};

// -- little-endian primitive codec (append / cursor-read) -------------------

void put_u16(std::string* out, std::uint16_t v);
void put_u32(std::string* out, std::uint32_t v);
void put_u64(std::string* out, std::uint64_t v);
/// f64 is transported as its IEEE-754 bit pattern, so a value round-trips
/// bit-identically (the serve-vs-offline golden tests depend on this).
void put_f64(std::string* out, double v);

/// Cursor reads: advance *pos past the field; return false when fewer
/// than the needed bytes remain (cursor unchanged).
bool get_u16(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint16_t* v);
bool get_u32(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint32_t* v);
bool get_u64(std::span<const std::uint8_t> buf, std::size_t* pos,
             std::uint64_t* v);
bool get_f64(std::span<const std::uint8_t> buf, std::size_t* pos, double* v);

// -- frame encode / decode --------------------------------------------------

/// One whole frame (header + payload) as wire bytes.
std::string encode_frame(FrameType type, std::uint8_t flags,
                         std::uint64_t request_id, std::string_view payload);

struct FrameDecode {
  enum class Status {
    kOk,        // header + full payload present; `header`/`consumed` valid
    kNeedMore,  // prefix of a plausible frame; feed more bytes
    kBad,       // unrecoverable framing defect; `reason`/`detail` valid
  };
  Status status = Status::kNeedMore;
  FrameHeader header;
  /// Total bytes (header + payload) consumed when kOk.
  std::size_t consumed = 0;
  Reason reason = Reason::kBadMagic;
  std::string detail;
};

/// Inspect the start of `buf` for one frame. Never throws; a bad magic,
/// unsupported version, or implausible length is kBad with the matching
/// quarantine Reason. kNeedMore callers that hit end-of-stream should
/// quarantine as Reason::kTruncated (the codec cannot distinguish a slow
/// peer from a truncated one).
FrameDecode decode_frame(std::span<const std::uint8_t> buf);

}  // namespace iotax::util
