// Job arrival schedule. Reproduces the structural properties the litmus
// tests rely on:
//   * heavy-tailed application popularity (a few apps dominate),
//   * most jobs run a *fresh* configuration (jittered volume/concurrency)
//     and are unique; only a controlled fraction reuse a configuration
//     verbatim and become duplicates — Theta had 23.5% duplicates and
//     Cori 54% (§VI.A),
//   * duplicate batches: users submit the same configuration many times
//     at once, producing the Δt≈0 duplicate pairs of §IX (on Theta, 70%
//     of same-start duplicate sets have only two jobs),
//   * a periodic system benchmark (app 0) that spaces duplicates across
//     the full timeline, filling the Δt axis of Fig. 6,
//   * diurnally modulated arrivals so concurrent load varies.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/app_model.hpp"
#include "src/sim/ost_load.hpp"
#include "src/util/rng.hpp"

namespace iotax::sim {

struct PlannedJob {
  std::uint64_t job_id = 0;
  std::uint64_t app_id = 0;
  /// Identifies the exact configuration run; jobs sharing (app_id,
  /// config_uid) have bit-identical signatures and form a duplicate set.
  std::uint64_t config_uid = 0;
  AppConfig config;              // materialized (possibly jittered) config
  double start_time = 0.0;
  double duration = 0.0;         // planned wall time (seconds)
  double placement_spread = 0.0; // [0,1], from the scheduler's allocation
  /// Which OSTs this run's files stripe over. Re-rolled per run: two
  /// duplicates of one configuration land on different servers, which is
  /// the mechanistic source of their contention difference (§IX).
  StripePlacement stripes;
};

struct WorkloadParams {
  std::size_t n_jobs = 20000;
  double horizon = 86400.0 * 365.0;
  /// Probability that a (non-benchmark) arrival reuses a catalog
  /// configuration verbatim instead of running a fresh jittered one.
  double config_reuse_prob = 0.10;
  /// Probability that an arrival is a simultaneous duplicate batch.
  double batch_prob = 0.05;
  /// Batch size = 2 + Zipf(max_batch, s): mostly pairs, occasionally huge.
  double batch_zipf_s = 2.4;
  std::size_t max_batch = 128;
  /// Benchmark (app 0) cadence and concurrent runs per firing; 0 period
  /// disables the benchmark.
  double bench_period = 86400.0;
  std::size_t bench_runs = 2;
  /// Relative amplitude of the diurnal arrival-rate modulation.
  double diurnal_amplitude = 0.35;
};

/// Generate a time-sorted schedule of at least `n_jobs` jobs.
/// Deterministic in (params, catalog, rng seed).
std::vector<PlannedJob> generate_workload(
    const WorkloadParams& params, const std::vector<Application>& catalog,
    const PlatformConfig& platform, util::Rng& rng);

}  // namespace iotax::sim
