// Generates the storage-side LMT telemetry stream from the simulated
// load and weather. The key property (§VII.B): the LMT signals *encode*
// the global system state — server CPU spikes and transfer rates sag
// during degradations — so a Lustre-enriched model can recover ζ_g(t)
// without being told the time.
#pragma once

#include "src/sim/contention.hpp"
#include "src/sim/platform.hpp"
#include "src/sim/weather.hpp"
#include "src/telemetry/lmt.hpp"
#include "src/util/rng.hpp"

namespace iotax::sim {

telemetry::LmtTimeline generate_lmt_timeline(const LoadTimeline& load,
                                             const GlobalWeather& weather,
                                             const PlatformConfig& platform,
                                             double horizon, util::Rng& rng);

}  // namespace iotax::sim
