#include "src/sim/platform.hpp"

#include <stdexcept>

namespace iotax::sim {

void PlatformConfig::validate() const {
  if (n_nodes == 0 || cores_per_node == 0 || n_oss == 0 || n_ost == 0 ||
      n_mds == 0) {
    throw std::invalid_argument("PlatformConfig: zero-sized component");
  }
  if (peak_bandwidth_mib <= 0.0 || per_proc_bandwidth_mib <= 0.0) {
    throw std::invalid_argument("PlatformConfig: non-positive bandwidth");
  }
  if (noise_sigma_log10 < 0.0) {
    throw std::invalid_argument("PlatformConfig: negative noise sigma");
  }
  if (contention_strength < 0.0) {
    throw std::invalid_argument("PlatformConfig: negative contention strength");
  }
  if (lmt_period_s <= 0.0) {
    throw std::invalid_argument("PlatformConfig: non-positive LMT period");
  }
}

PlatformConfig theta_platform() {
  PlatformConfig p;
  p.name = "theta";
  p.n_nodes = 4392;
  p.cores_per_node = 64;
  p.n_oss = 28;
  p.n_ost = 56;
  p.peak_bandwidth_mib = 200000.0;
  p.per_proc_bandwidth_mib = 1200.0;
  p.noise_sigma_log10 = 0.0235;  // +-5.7% @ 68% incl. contention jitter
  p.contention_strength = 0.20;
  p.lmt_enabled = false;
  return p;
}

PlatformConfig bb_platform() {
  PlatformConfig p;
  p.name = "bb";
  p.n_nodes = 6174;
  p.cores_per_node = 48;
  p.n_oss = 40;
  p.n_ost = 144;
  p.peak_bandwidth_mib = 1600000.0;  // the buffer tier, not the PFS
  p.per_proc_bandwidth_mib = 4000.0;
  p.noise_sigma_log10 = 0.0360;  // buffer allocation variance dominates
  p.contention_strength = 0.11;  // the buffer absorbs neighbour bursts
  p.lmt_enabled = true;
  return p;
}

PlatformConfig flash_platform() {
  PlatformConfig p;
  p.name = "flash";
  p.n_nodes = 1536;
  p.cores_per_node = 128;
  p.n_oss = 24;
  p.n_ost = 48;
  p.peak_bandwidth_mib = 900000.0;
  p.per_proc_bandwidth_mib = 6000.0;
  p.noise_sigma_log10 = 0.0140;  // no spinning media, tight latency tails
  p.contention_strength = 0.07;
  p.lmt_enabled = true;
  return p;
}

PlatformConfig cori_platform() {
  PlatformConfig p;
  p.name = "cori";
  p.n_nodes = 12076;
  p.cores_per_node = 68;
  p.n_oss = 64;
  p.n_ost = 248;
  p.peak_bandwidth_mib = 700000.0;
  p.per_proc_bandwidth_mib = 1500.0;
  p.noise_sigma_log10 = 0.0275;  // +-7.2% @ 68% incl. contention jitter
  p.contention_strength = 0.26;
  p.lmt_enabled = true;
  return p;
}

}  // namespace iotax::sim
