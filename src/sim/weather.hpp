// Global system state over time — the paper's ζ_g(t) ("I/O climate and
// weather", §VII). Three ingredients:
//   * configuration epochs: step changes at provisioning/upgrade events,
//   * degradation episodes: dips lasting hours to weeks (failing OSTs,
//     metadata storms, rebuilds),
//   * seasonal drift: a small smooth periodic component.
// The impact is a log10 offset applied to every job running at time t,
// which is exactly what makes it learnable from a start-time feature.
#pragma once

#include <vector>

#include "src/util/rng.hpp"

namespace iotax::sim {

struct Degradation {
  double start = 0.0;
  double duration = 0.0;
  double severity = 0.0;  // positive magnitude of the log10 dip
  double ramp = 0.0;      // edge smoothing time constant (seconds)
};

struct WeatherParams {
  double horizon = 86400.0 * 365.0;  // seconds simulated
  std::size_t n_epochs = 4;
  double epoch_offset_sigma = 0.02;  // log10
  double degradations_per_year = 9.0;
  double degradation_min_days = 0.25;
  double degradation_max_days = 12.0;
  double degradation_min_severity = 0.04;  // log10 (~ -9%)
  double degradation_max_severity = 0.30;  // log10 (~ -50%)
  double seasonal_amplitude = 0.008;       // log10
  double seasonal_period = 86400.0 * 91.0;
};

class GlobalWeather {
 public:
  GlobalWeather(const WeatherParams& params, util::Rng& rng);

  /// ζ_g(t): the log10 throughput offset applied to all jobs at time t.
  double log_offset(double t) const;

  /// True when t falls inside any degradation episode.
  bool degraded(double t) const;

  const std::vector<Degradation>& degradations() const {
    return degradations_;
  }
  const std::vector<double>& epoch_boundaries() const {
    return epoch_boundaries_;
  }

 private:
  WeatherParams params_;
  std::vector<double> epoch_boundaries_;  // ascending, inside (0, horizon)
  std::vector<double> epoch_offsets_;     // size = boundaries + 1
  std::vector<Degradation> degradations_; // sorted by start
};

}  // namespace iotax::sim
