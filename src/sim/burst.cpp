#include "src/sim/burst.hpp"

#include <cmath>
#include <stdexcept>

#include "src/telemetry/lmt.hpp"

namespace iotax::sim {

namespace {

// MEAN is the third of the four aggregates per signal (lmt.cpp).
constexpr std::size_t kSignals = 9;
double mean_of(const std::vector<double>& agg, std::size_t signal) {
  return agg[signal * 4 + 2];
}

constexpr std::size_t kReadSignal = 2;
constexpr std::size_t kWriteSignal = 3;

}  // namespace

void BurstParams::validate() const {
  if (!(window_seconds > 0.0) || !std::isfinite(window_seconds)) {
    throw std::invalid_argument("BurstParams: non-positive window_seconds");
  }
  if (!(threshold_frac > 0.0) || !(threshold_frac < 1.0)) {
    throw std::invalid_argument("BurstParams: threshold_frac not in (0,1)");
  }
}

BurstDataset build_burst_dataset(const SimulationResult& sim,
                                 const BurstParams& params) {
  params.validate();
  if (sim.lmt.size() == 0) {
    throw std::invalid_argument(
        "build_burst_dataset: simulation has no LMT telemetry "
        "(platform.lmt_enabled is off)");
  }
  const double horizon = sim.config.workload.horizon;
  const auto n_total =
      static_cast<std::size_t>(std::floor(horizon / params.window_seconds));
  if (n_total < 3) {
    throw std::invalid_argument(
        "build_burst_dataset: horizon shorter than three windows");
  }
  const double threshold_mib =
      params.threshold_frac * sim.config.platform.peak_bandwidth_mib;

  const auto& names = telemetry::burst_feature_names();
  BurstDataset out;
  out.threshold_mib = threshold_mib;
  out.dataset.system_name = sim.config.name + "-burst";
  out.dataset.features = data::Table(names);
  out.dataset.features.reserve_rows(n_total - 2);

  // One aggregate per window, reused for features (window i), deltas
  // (window i-1) and labels (window i+1).
  std::vector<std::vector<double>> agg(n_total);
  for (std::size_t w = 0; w < n_total; ++w) {
    const double t0 = static_cast<double>(w) * params.window_seconds;
    agg[w] = sim.lmt.aggregate(t0, t0 + params.window_seconds);
  }

  std::vector<double> row(names.size());
  for (std::size_t w = 1; w + 1 < n_total; ++w) {
    const double t0 = static_cast<double>(w) * params.window_seconds;
    const double t1 = t0 + params.window_seconds;
    std::size_t c = 0;
    for (const double v : agg[w]) row[c++] = v;
    for (std::size_t sig = 0; sig < kSignals; ++sig) {
      row[c++] = mean_of(agg[w], sig) - mean_of(agg[w - 1], sig);
    }
    const double tod = 2.0 * M_PI * std::fmod(t0, 86400.0) / 86400.0;
    row[c++] = std::sin(tod);
    row[c++] = std::cos(tod);
    out.dataset.features.add_row(row);

    const double next_rate = mean_of(agg[w + 1], kReadSignal) +
                             mean_of(agg[w + 1], kWriteSignal);
    const double label = next_rate > threshold_mib ? 1.0 : 0.0;

    data::JobMeta meta;
    meta.job_id = w;
    meta.app_id = 0;
    meta.config_id = w;
    meta.start_time = t0;
    meta.end_time = t1;
    meta.nodes = 1;
    // The label doubles as the full "decomposition" so the Dataset
    // identity target == log_fa + log_fg + log_fl + log_fn holds.
    meta.log_fa = label;
    out.dataset.meta.push_back(meta);
    out.dataset.target.push_back(label);
    if (label == 1.0) ++out.n_bursts;
    ++out.n_windows;
  }
  out.dataset.validate();
  return out;
}

}  // namespace iotax::sim
