#include "src/sim/weather.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::sim {

GlobalWeather::GlobalWeather(const WeatherParams& params, util::Rng& rng)
    : params_(params) {
  if (params.horizon <= 0.0) {
    throw std::invalid_argument("GlobalWeather: non-positive horizon");
  }
  if (params.degradation_min_days > params.degradation_max_days ||
      params.degradation_min_severity > params.degradation_max_severity) {
    throw std::invalid_argument("GlobalWeather: inverted degradation range");
  }
  // Epoch boundaries: uniform over the horizon, sorted.
  for (std::size_t i = 0; i + 1 < params.n_epochs; ++i) {
    epoch_boundaries_.push_back(rng.uniform(0.0, params.horizon));
  }
  std::sort(epoch_boundaries_.begin(), epoch_boundaries_.end());
  for (std::size_t i = 0; i < params.n_epochs; ++i) {
    epoch_offsets_.push_back(rng.normal(0.0, params.epoch_offset_sigma));
  }

  const double years = params.horizon / (86400.0 * 365.0);
  const auto n_degradations = static_cast<std::size_t>(
      rng.poisson(params.degradations_per_year * years));
  for (std::size_t i = 0; i < n_degradations; ++i) {
    Degradation d;
    d.start = rng.uniform(0.0, params.horizon);
    d.duration = 86400.0 * rng.uniform(params.degradation_min_days,
                                       params.degradation_max_days);
    d.severity = rng.uniform(params.degradation_min_severity,
                             params.degradation_max_severity);
    d.ramp = std::max(3600.0, 0.05 * d.duration);
    degradations_.push_back(d);
  }
  std::sort(degradations_.begin(), degradations_.end(),
            [](const Degradation& a, const Degradation& b) {
              return a.start < b.start;
            });
}

double GlobalWeather::log_offset(double t) const {
  // Epoch step level.
  const auto it = std::upper_bound(epoch_boundaries_.begin(),
                                   epoch_boundaries_.end(), t);
  const auto epoch = static_cast<std::size_t>(
      std::distance(epoch_boundaries_.begin(), it));
  double offset = epoch_offsets_[epoch];

  // Seasonal drift.
  offset += params_.seasonal_amplitude *
            std::sin(2.0 * M_PI * t / params_.seasonal_period);

  // Degradation dips with smooth ramps.
  for (const auto& d : degradations_) {
    const double rel_in = (t - d.start) / d.ramp;
    const double rel_out = (d.start + d.duration - t) / d.ramp;
    const double gate = (1.0 / (1.0 + std::exp(-rel_in))) *
                        (1.0 / (1.0 + std::exp(-rel_out)));
    offset -= d.severity * gate;
  }
  return offset;
}

bool GlobalWeather::degraded(double t) const {
  for (const auto& d : degradations_) {
    if (t >= d.start && t <= d.start + d.duration) return true;
  }
  return false;
}

}  // namespace iotax::sim
