// The burst-prediction workload: turn a simulated cluster's LMT stream
// into a windowed, labeled classification dataset — "given this
// window's storage telemetry, will the *next* window run hot?" — per
// the Darshan-log burst-prediction line of work the README cites.
//
// Each row is one telemetry window of `window_seconds`: features are
// the window's 37 LMT aggregates, the mean-signal deltas against the
// previous window, and the time-of-day phase (telemetry::
// burst_feature_names()); the label is 1 when the next window's mean
// total OST transfer rate exceeds threshold_frac of the platform peak.
// Labels come from the same simulated telemetry the weather and load
// timelines generated, so they are sim ground truth, not a heuristic
// over noisy measurements.
//
// The result is a regular data::Dataset (window index as job id, label
// stored as the target and as log_fa so Dataset::validate()'s
// decomposition identity holds) — the whole CSV/feature-set/serve
// tool-chain consumes it unchanged via taxonomy::FeatureSet::kBurst.
#pragma once

#include <cstddef>

#include "src/data/dataset.hpp"
#include "src/sim/simulator.hpp"

namespace iotax::sim {

struct BurstParams {
  /// Telemetry window length (seconds).
  double window_seconds = 6.0 * 3600.0;
  /// A window is a burst when its mean total OST rate (read + write)
  /// exceeds this fraction of platform peak bandwidth. The default
  /// labels roughly the top quarter of windows on the presets.
  double threshold_frac = 0.35;

  void validate() const;
};

struct BurstDataset {
  /// Features (BURST_* columns) + binary target; system_name is the sim
  /// name with a "-burst" suffix. Row i predicts window i+1.
  data::Dataset dataset;
  std::size_t n_windows = 0;  // rows
  std::size_t n_bursts = 0;   // positive labels
  /// The absolute rate threshold the labels used (MiB/s).
  double threshold_mib = 0.0;
};

/// Build the windowed burst dataset from a finished simulation. The sim
/// must have LMT telemetry (platform.lmt_enabled); throws
/// std::invalid_argument otherwise, or when the horizon is too short
/// for at least three windows (previous + current + label).
BurstDataset build_burst_dataset(const SimulationResult& sim,
                                 const BurstParams& params = {});

}  // namespace iotax::sim
