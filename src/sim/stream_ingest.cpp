#include "src/sim/stream_ingest.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "src/obs/metrics.hpp"

namespace iotax::sim {

namespace {
// A record boundary is the terminator line including its newline; a
// "# end_of_record" without the trailing '\n' may still be a partial
// write of a longer line, so only the full sequence splits the buffer.
constexpr const char kRecordBoundary[] = "# end_of_record\n";
constexpr std::size_t kBoundaryLen = sizeof(kRecordBoundary) - 1;
}  // namespace

LogTailer::LogTailer(std::string path) : path_(std::move(path)) {}

std::vector<telemetry::JobLogRecord> LogTailer::poll() {
  std::ifstream in(path_, std::ios::binary);
  if (in) {
    in.seekg(static_cast<std::streamoff>(offset_));
    char chunk[1 << 16];
    while (in.read(chunk, sizeof(chunk)) || in.gcount() > 0) {
      pending_.append(chunk, static_cast<std::size_t>(in.gcount()));
      offset_ += static_cast<std::uint64_t>(in.gcount());
    }
  }
  const auto boundary = pending_.rfind(kRecordBoundary);
  if (boundary == std::string::npos) return {};
  std::string complete = pending_.substr(0, boundary + kBoundaryLen);
  pending_.erase(0, boundary + kBoundaryLen);

  std::istringstream stream(complete);
  auto outcome =
      telemetry::parse_archive_outcome(stream, telemetry::ParseMode::kLenient);
  quarantine_.merge(outcome.quarantine);
  IOTAX_OBS_COUNT("stream.records",
                  static_cast<std::uint64_t>(outcome.records.size()));
  if (outcome.quarantine.total() > 0) {
    IOTAX_OBS_COUNT("stream.quarantined",
                    static_cast<std::uint64_t>(outcome.quarantine.total()));
  }
  return std::move(outcome.records);
}

StreamIngestStep ingest_stream_records(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name) {
  StreamIngestStep step;
  if (records.empty()) return step;
  auto result = build_dataset_ingest(records, lmt, system_name,
                                     /*truth=*/nullptr, IngestMode::kLenient);
  step.dataset = std::move(result.dataset);
  step.quarantine = std::move(result.quarantine);
  step.kept_records = std::move(result.kept_records);
  return step;
}

}  // namespace iotax::sim
