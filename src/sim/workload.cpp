#include "src/sim/workload.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::sim {

namespace {

/// Planned wall time: compute phase (with unobservable run-to-run jitter)
/// plus the I/O phase at the configuration's idealized rate. The jitter
/// dominates, which is what stops a model from simply inverting
/// runtime -> throughput when Cobalt timing features are added (§VI.C).
double planned_duration(const AppConfig& cfg, const PlatformConfig& platform,
                        util::Rng& rng) {
  const double ideal_mib =
      std::pow(10.0, ideal_log_throughput(cfg.signature, platform));
  const double io_time = cfg.signature.total_bytes() / 1048576.0 / ideal_mib;
  const double compute = cfg.compute_time_s * rng.lognormal(0.0, 0.35);
  return std::max(10.0, compute + io_time);
}

/// Jitter a catalog configuration into a fresh, almost-surely-unique one:
/// same application, different input scale. The volume perturbation flows
/// into the byte counters, so no other job shares its feature vector.
AppConfig fresh_variant(const AppConfig& base, const PlatformConfig& platform,
                        util::Rng& rng) {
  AppConfig cfg = base;
  const double vol_scale = rng.lognormal(0.0, 0.55);
  cfg.signature.bytes_read *= vol_scale;
  cfg.signature.bytes_written *= vol_scale;
  if (rng.bernoulli(0.3)) {
    const double procs = std::clamp(
        static_cast<double>(cfg.signature.n_procs) *
            std::pow(2.0, static_cast<double>(rng.uniform_int(-1, 1))),
        1.0,
        static_cast<double>(platform.n_nodes) * platform.cores_per_node / 4.0);
    cfg.signature.n_procs = static_cast<std::uint32_t>(procs);
    cfg.nodes = static_cast<std::uint32_t>(std::max(
        1.0,
        std::ceil(procs / static_cast<double>(platform.cores_per_node))));
  }
  cfg.compute_time_s = base.compute_time_s * rng.lognormal(0.0, 0.2);
  cfg.signature.validate();
  return cfg;
}


/// Stripe placement for one run: stripe width grows with node count (big
/// jobs stripe wide, as admins configure), capped by the platform; the
/// starting OST is the per-run placement roll.
StripePlacement roll_stripes(std::uint32_t nodes,
                             const PlatformConfig& platform,
                             util::Rng& rng) {
  std::uint32_t count = 1;
  while (count < nodes && count < 64) count *= 2;
  StripePlacement p;
  p.count = std::min(count, platform.n_ost);
  p.begin = static_cast<std::uint32_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(platform.n_ost) - 1));
  return p;
}

}  // namespace

std::vector<PlannedJob> generate_workload(
    const WorkloadParams& params, const std::vector<Application>& catalog,
    const PlatformConfig& platform, util::Rng& rng) {
  if (catalog.empty()) {
    throw std::invalid_argument("generate_workload: empty catalog");
  }
  if (params.horizon <= 0.0 || params.n_jobs == 0) {
    throw std::invalid_argument("generate_workload: bad params");
  }
  if (params.config_reuse_prob < 0.0 || params.config_reuse_prob > 1.0 ||
      params.batch_prob < 0.0 || params.batch_prob > 1.0) {
    throw std::invalid_argument("generate_workload: bad probabilities");
  }
  std::vector<PlannedJob> jobs;
  jobs.reserve(params.n_jobs + params.n_jobs / 8);
  std::uint64_t next_id = 1;
  // config_uid space: catalog configs use app_id * 4096 + config_index;
  // fresh configs use a disjoint high range keyed by the first job id.
  constexpr std::uint64_t kFreshBase = 1ULL << 40;

  // Periodic benchmark runs (app 0): `bench_runs` concurrent copies at
  // every firing, spanning the whole timeline.
  if (!catalog[0].configs.empty() && params.bench_period > 0.0) {
    for (double t = params.bench_period / 2.0; t < params.horizon;
         t += params.bench_period) {
      for (std::size_t r = 0; r < params.bench_runs; ++r) {
        PlannedJob j;
        j.job_id = next_id++;
        j.app_id = catalog[0].app_id;
        j.config_uid = catalog[0].app_id * 4096;
        j.config = catalog[0].configs[0];
        j.start_time = t + rng.uniform(0.0, 0.5);
        j.duration = planned_duration(j.config, platform, rng);
        j.placement_spread = rng.uniform(0.0, 1.0);
        j.stripes = roll_stripes(j.config.nodes, platform, rng);
        jobs.push_back(std::move(j));
      }
    }
  }

  // Popularity weights (the benchmark has popularity 0).
  std::vector<double> weights;
  weights.reserve(catalog.size());
  for (const auto& app : catalog) weights.push_back(app.popularity);

  while (jobs.size() < params.n_jobs) {
    // Arrival time with diurnal modulation, via thinning.
    double t = 0.0;
    for (;;) {
      t = rng.uniform(0.0, params.horizon);
      const double day_phase = 2.0 * M_PI * t / 86400.0;
      const double accept =
          (1.0 + params.diurnal_amplitude * std::sin(day_phase)) /
          (1.0 + params.diurnal_amplitude);
      if (rng.uniform() < accept) break;
    }
    // Pick an application that exists at time t.
    std::size_t app_idx = 0;
    for (int attempt = 0; attempt < 64; ++attempt) {
      app_idx = rng.categorical(weights);
      if (catalog[app_idx].introduced_at <= t) break;
      app_idx = 0;
    }
    if (app_idx == 0) continue;  // benchmark handled above
    const auto& app = catalog[app_idx];
    const auto cfg_idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(app.configs.size()) - 1));

    std::size_t copies = 1;
    if (rng.bernoulli(params.batch_prob)) {
      copies = 2 + static_cast<std::size_t>(rng.zipf(
                       static_cast<std::int64_t>(params.max_batch),
                       params.batch_zipf_s));
    }
    // Materialize the configuration once per arrival; all batch members
    // share it (they are duplicates of each other even when fresh).
    AppConfig cfg;
    std::uint64_t config_uid = 0;
    if (rng.bernoulli(params.config_reuse_prob)) {
      cfg = app.configs[cfg_idx];
      config_uid = app.app_id * 4096 + cfg_idx;
    } else {
      cfg = fresh_variant(app.configs[cfg_idx], platform, rng);
      config_uid = kFreshBase + next_id;
    }
    for (std::size_t c = 0; c < copies; ++c) {
      PlannedJob j;
      j.job_id = next_id++;
      j.app_id = app.app_id;
      j.config_uid = config_uid;
      j.config = cfg;
      j.start_time = t + rng.uniform(0.0, 0.5);
      j.duration = planned_duration(cfg, platform, rng);
      j.placement_spread = rng.uniform(0.0, 1.0);
      j.stripes = roll_stripes(cfg.nodes, platform, rng);
      jobs.push_back(std::move(j));
    }
  }

  std::sort(jobs.begin(), jobs.end(),
            [](const PlannedJob& a, const PlannedJob& b) {
              return a.start_time < b.start_time;
            });
  return jobs;
}

}  // namespace iotax::sim
