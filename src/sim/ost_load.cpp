#include "src/sim/ost_load.hpp"

#include <algorithm>
#include <cmath>
#include <span>
#include <stdexcept>

namespace iotax::sim {

OstLoadTimeline::OstLoadTimeline(std::uint32_t n_ost, double horizon,
                                 double bin_seconds, double peak_per_ost_mib)
    : n_ost_(n_ost),
      horizon_(horizon),
      bin_s_(bin_seconds),
      peak_per_ost_(peak_per_ost_mib) {
  if (n_ost == 0 || horizon <= 0.0 || bin_seconds <= 0.0 ||
      peak_per_ost_mib <= 0.0) {
    throw std::invalid_argument("OstLoadTimeline: bad construction params");
  }
  bins_ = static_cast<std::size_t>(std::ceil(horizon / bin_seconds)) + 1;
  load_.assign(static_cast<std::size_t>(n_ost_) * bins_, 0.0f);
}

std::size_t OstLoadTimeline::bin_index(double t) const {
  const double clamped = std::clamp(t, 0.0, horizon_);
  return std::min(static_cast<std::size_t>(clamped / bin_s_), bins_ - 1);
}

void OstLoadTimeline::add_demand(const StripePlacement& placement,
                                 double start, double duration,
                                 double demand_mib) {
  if (placement.count == 0 || placement.count > n_ost_) {
    throw std::invalid_argument("OstLoadTimeline: bad stripe count");
  }
  if (duration <= 0.0 || demand_mib <= 0.0) return;
  const double frac_per_ost =
      demand_mib / static_cast<double>(placement.count) / peak_per_ost_;
  const std::size_t b0 = bin_index(start);
  const std::size_t b1 = bin_index(start + duration);
  for (std::uint32_t s = 0; s < placement.count; ++s) {
    const std::uint32_t ost = (placement.begin + s) % n_ost_;
    for (std::size_t b = b0; b <= b1; ++b) {
      cell(ost, b) += static_cast<float>(frac_per_ost);
    }
  }
}

void OstLoadTimeline::add_background_bin(std::size_t bin,
                                         std::span<const double> frac) {
  if (bin >= bins_) {
    throw std::invalid_argument("OstLoadTimeline: bin out of range");
  }
  if (frac.size() != n_ost_) {
    throw std::invalid_argument("OstLoadTimeline: background size mismatch");
  }
  for (std::uint32_t ost = 0; ost < n_ost_; ++ost) {
    if (frac[ost] < 0.0) {
      throw std::invalid_argument("OstLoadTimeline: negative background");
    }
    cell(ost, bin) += static_cast<float>(frac[ost]);
  }
}

double OstLoadTimeline::mean_load(const StripePlacement& placement, double t0,
                                  double t1) const {
  if (placement.count == 0 || placement.count > n_ost_) {
    throw std::invalid_argument("OstLoadTimeline: bad stripe count");
  }
  if (t1 < t0) throw std::invalid_argument("OstLoadTimeline: t1 < t0");
  const std::size_t b0 = bin_index(t0);
  const std::size_t b1 = bin_index(t1);
  double sum = 0.0;
  for (std::uint32_t s = 0; s < placement.count; ++s) {
    const std::uint32_t ost = (placement.begin + s) % n_ost_;
    for (std::size_t b = b0; b <= b1; ++b) sum += cell(ost, b);
  }
  return sum / static_cast<double>(placement.count) /
         static_cast<double>(b1 - b0 + 1);
}

double OstLoadTimeline::aggregate_load_at(double t) const {
  const std::size_t b = bin_index(t);
  double sum = 0.0;
  for (std::uint32_t ost = 0; ost < n_ost_; ++ost) sum += cell(ost, b);
  return sum / static_cast<double>(n_ost_);
}

}  // namespace iotax::sim
