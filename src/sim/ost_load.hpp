// Per-OST (object storage target) load tracking. Files on Lustre are
// striped over a subset of OSTs; two jobs contend only where their
// stripe sets overlap, and "placement luck" — which neighbours you share
// servers with — is exactly the job-specific, practically-unobservable
// ζ_l component of the paper (§IX: a model never sees who your
// neighbours were). The aggregate LMT view exposes only cross-OST
// summary statistics, so the per-OST detail stays hidden from models,
// as on the real systems.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace iotax::sim {

/// A job's stripe placement: `count` consecutive OSTs starting at
/// `begin` (wrapping around the ring, as Lustre round-robins).
struct StripePlacement {
  std::uint32_t begin = 0;
  std::uint32_t count = 1;
};

class OstLoadTimeline {
 public:
  /// `n_ost` targets over `horizon` seconds in `bin_seconds` buckets.
  /// `peak_per_ost_mib` is one target's bandwidth capability.
  OstLoadTimeline(std::uint32_t n_ost, double horizon, double bin_seconds,
                  double peak_per_ost_mib);

  /// Spread a job's demand (MiB/s, total) evenly over its stripes for
  /// [start, start+duration).
  void add_demand(const StripePlacement& placement, double start,
                  double duration, double demand_mib);

  /// Add per-OST background load fractions for one time bin; used by the
  /// simulator to give every OST its own background level. `frac` must
  /// have n_ost entries (fractions of one OST's peak).
  void add_background_bin(std::size_t bin, std::span<const double> frac);

  /// Mean demand fraction over the job's stripes and time window.
  double mean_load(const StripePlacement& placement, double t0,
                   double t1) const;

  /// Mean demand fraction across all OSTs at time t (the LMT-style view).
  double aggregate_load_at(double t) const;

  std::uint32_t n_ost() const { return n_ost_; }
  std::size_t bins() const { return bins_; }
  double bin_seconds() const { return bin_s_; }

 private:
  std::size_t bin_index(double t) const;
  float& cell(std::uint32_t ost, std::size_t bin) {
    return load_[static_cast<std::size_t>(ost) * bins_ + bin];
  }
  float cell(std::uint32_t ost, std::size_t bin) const {
    return load_[static_cast<std::size_t>(ost) * bins_ + bin];
  }

  std::uint32_t n_ost_;
  double horizon_;
  double bin_s_;
  double peak_per_ost_;
  std::size_t bins_;
  std::vector<float> load_;  // [ost][bin], fraction of one OST's peak
};

}  // namespace iotax::sim
