// End-to-end simulation: catalog -> schedule -> weather/contention/noise
// -> per-job throughput decomposition (the paper's Eq. 3) -> Darshan-style
// records, LMT stream, and the joined model Dataset with ground truth.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/sim/app_model.hpp"
#include "src/sim/contention.hpp"
#include "src/sim/dataset_builder.hpp"
#include "src/sim/ost_load.hpp"
#include "src/sim/platform.hpp"
#include "src/sim/weather.hpp"
#include "src/sim/workload.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax::sim {

/// Background demand from the mass of small jobs the study datasets
/// exclude (everything under 1 GiB, §V). Modelled as a mean-reverting
/// (Ornstein-Uhlenbeck) random walk with a diurnal cycle, in fractions of
/// the filesystem peak bandwidth. This is what makes LMT rates reflect
/// the *system*, not any single studied job.
struct BackgroundParams {
  double mean_frac = 0.35;
  double reversion = 0.15;     // OU pull toward the mean per step
  double walk_sigma = 0.05;    // OU innovation per step
  /// OU step length. Daily by default: the paper's "I/O weather" moves on
  /// day-to-week scales, which is what keeps it compressible into a
  /// start-time feature (§VII.A).
  double step_seconds = 86400.0;
  double diurnal_amplitude = 0.08;
  double min_frac = 0.02;
  /// Log-space spread of the slow per-OST background multipliers: how
  /// unevenly the small-job mass lands on individual targets. This is
  /// the mechanistic source of concurrent-duplicate contention
  /// differences (two placements sample different targets).
  double ost_spread_sigma = 0.55;
};

struct SimConfig {
  std::string name = "generic";
  PlatformConfig platform;
  CatalogParams catalog;
  WorkloadParams workload;
  WeatherParams weather;
  BackgroundParams background;
  std::uint64_t seed = 1;
  /// Fraction of the horizon used as the model training period; novel
  /// applications only appear after this point.
  double train_cutoff_frac = 0.70;

  /// When nonzero, the application catalog is generated from this seed
  /// (instead of a fork of `seed`) against `catalog_platform` (instead
  /// of `platform`). Two configs sharing catalog_seed, catalog_platform,
  /// catalog params, horizon and train_cutoff_frac then produce the
  /// *identical* application population — the knob the cross-cluster
  /// transfer litmus turns to hold the app mix fixed while platform,
  /// workload draw and weather differ. Zero keeps the historical
  /// behaviour (per-run catalog) bit-for-bit.
  std::uint64_t catalog_seed = 0;
  /// Platform the shared catalog is sized against; only consulted when
  /// catalog_seed != 0.
  PlatformConfig catalog_platform;

  void validate() const;
};

struct SimulationResult {
  SimConfig config;
  std::vector<Application> catalog;
  std::vector<telemetry::JobLogRecord> records;
  telemetry::LmtTimeline lmt;  // empty when !platform.lmt_enabled
  TruthMap truth;
  data::Dataset dataset;       // features + ground-truth metadata
  double train_cutoff_time = 0.0;

  /// Convenience: weather object used for the run (for plotting benches).
  std::shared_ptr<const GlobalWeather> weather;
};

/// Run the full simulation. Deterministic in `config`.
SimulationResult simulate(const SimConfig& config);

}  // namespace iotax::sim
