#include "src/sim/presets.hpp"

#include "src/util/env.hpp"

namespace iotax::sim {

namespace {

void set_horizon(SimConfig& cfg, double horizon) {
  cfg.workload.horizon = horizon;
  cfg.weather.horizon = horizon;
  cfg.catalog.horizon = horizon;
}

}  // namespace

SimConfig theta_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "theta-like";
  cfg.seed = seed;
  cfg.platform = theta_platform();
  set_horizon(cfg, 86400.0 * 365.0 * 3.0);  // 2017-2020: three years

  cfg.catalog.n_apps = 140;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 5;
  cfg.catalog.novel_app_frac = 0.10;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(16000, 2000);
  // Duplicate sources sum to ~23.5% of jobs: the daily benchmark pair
  // (~2190 jobs), small same-submit batches, and verbatim config reuse.
  // Reuse (time-spread duplicates) dominates batches so the duplicate
  // population samples the weather like the rest of the dataset does —
  // otherwise the litmus-1 bound dips below what any model can reach.
  cfg.workload.config_reuse_prob = 0.060;
  cfg.workload.batch_prob = 0.030;
  cfg.workload.batch_zipf_s = 2.6;
  cfg.workload.max_batch = 96;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 5;
  cfg.weather.epoch_offset_sigma = 0.022;
  cfg.weather.degradations_per_year = 8.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

SimConfig cori_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "cori-like";
  cfg.seed = seed;
  cfg.platform = cori_platform();
  set_horizon(cfg, 86400.0 * 365.0 * 2.0);  // 2018-2019: two years

  cfg.catalog.n_apps = 220;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 6;
  cfg.catalog.novel_app_frac = 0.08;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(26000, 3000);
  // Cori's workload repeats far more (54% duplicates, §VI.A): heavier
  // batching and much more verbatim reuse.
  cfg.workload.config_reuse_prob = 0.41;
  cfg.workload.batch_prob = 0.05;
  cfg.workload.batch_zipf_s = 2.2;
  cfg.workload.max_batch = 192;
  cfg.workload.bench_period = 86400.0 / 2.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 4;
  cfg.weather.epoch_offset_sigma = 0.028;
  cfg.weather.degradations_per_year = 10.0;

  cfg.train_cutoff_frac = 0.75;
  return cfg;
}

SimConfig tiny_system(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "tiny";
  cfg.seed = seed;
  cfg.platform = theta_platform();
  cfg.platform.lmt_enabled = true;
  cfg.platform.lmt_period_s = 1800.0;
  set_horizon(cfg, 86400.0 * 60.0);  // two months

  cfg.catalog.n_apps = 30;
  cfg.catalog.max_configs_per_app = 3;
  cfg.catalog.novel_app_frac = 0.10;

  cfg.workload.n_jobs = 1500;
  cfg.workload.config_reuse_prob = 0.15;
  cfg.workload.batch_prob = 0.06;
  cfg.workload.max_batch = 32;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 3;
  cfg.weather.degradations_per_year = 18.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

}  // namespace iotax::sim
