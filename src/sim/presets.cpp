#include "src/sim/presets.hpp"

#include <algorithm>

#include "src/util/env.hpp"

namespace iotax::sim {

namespace {

void set_horizon(SimConfig& cfg, double horizon) {
  cfg.workload.horizon = horizon;
  cfg.weather.horizon = horizon;
  cfg.catalog.horizon = horizon;
}

}  // namespace

SimConfig theta_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "theta-like";
  cfg.seed = seed;
  cfg.platform = theta_platform();
  set_horizon(cfg, 86400.0 * 365.0 * 3.0);  // 2017-2020: three years

  cfg.catalog.n_apps = 140;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 5;
  cfg.catalog.novel_app_frac = 0.10;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(16000, 2000);
  // Duplicate sources sum to ~23.5% of jobs: the daily benchmark pair
  // (~2190 jobs), small same-submit batches, and verbatim config reuse.
  // Reuse (time-spread duplicates) dominates batches so the duplicate
  // population samples the weather like the rest of the dataset does —
  // otherwise the litmus-1 bound dips below what any model can reach.
  cfg.workload.config_reuse_prob = 0.060;
  cfg.workload.batch_prob = 0.030;
  cfg.workload.batch_zipf_s = 2.6;
  cfg.workload.max_batch = 96;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 5;
  cfg.weather.epoch_offset_sigma = 0.022;
  cfg.weather.degradations_per_year = 8.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

SimConfig cori_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "cori-like";
  cfg.seed = seed;
  cfg.platform = cori_platform();
  set_horizon(cfg, 86400.0 * 365.0 * 2.0);  // 2018-2019: two years

  cfg.catalog.n_apps = 220;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 6;
  cfg.catalog.novel_app_frac = 0.08;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(26000, 3000);
  // Cori's workload repeats far more (54% duplicates, §VI.A): heavier
  // batching and much more verbatim reuse.
  cfg.workload.config_reuse_prob = 0.41;
  cfg.workload.batch_prob = 0.05;
  cfg.workload.batch_zipf_s = 2.2;
  cfg.workload.max_batch = 192;
  cfg.workload.bench_period = 86400.0 / 2.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 4;
  cfg.weather.epoch_offset_sigma = 0.028;
  cfg.weather.degradations_per_year = 10.0;

  cfg.train_cutoff_frac = 0.75;
  return cfg;
}

SimConfig tiny_system(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "tiny";
  cfg.seed = seed;
  cfg.platform = theta_platform();
  cfg.platform.lmt_enabled = true;
  cfg.platform.lmt_period_s = 1800.0;
  set_horizon(cfg, 86400.0 * 60.0);  // two months

  cfg.catalog.n_apps = 30;
  cfg.catalog.max_configs_per_app = 3;
  cfg.catalog.novel_app_frac = 0.10;

  cfg.workload.n_jobs = 1500;
  cfg.workload.config_reuse_prob = 0.15;
  cfg.workload.batch_prob = 0.06;
  cfg.workload.max_batch = 32;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 3;
  cfg.weather.degradations_per_year = 18.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

SimConfig bb_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "bb-like";
  cfg.seed = seed;
  cfg.platform = bb_platform();
  set_horizon(cfg, 86400.0 * 365.0 * 1.5);

  cfg.catalog.n_apps = 160;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 5;
  cfg.catalog.novel_app_frac = 0.12;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(14000, 2000);
  cfg.workload.config_reuse_prob = 0.20;
  cfg.workload.batch_prob = 0.04;
  cfg.workload.batch_zipf_s = 2.4;
  cfg.workload.max_batch = 128;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  // Buffer drains and reprovisioning show up as frequent short
  // degradations with meaty epoch offsets.
  cfg.weather.n_epochs = 4;
  cfg.weather.epoch_offset_sigma = 0.030;
  cfg.weather.degradations_per_year = 14.0;
  cfg.weather.degradation_max_days = 4.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

SimConfig flash_like(std::uint64_t seed) {
  SimConfig cfg;
  cfg.name = "flash-like";
  cfg.seed = seed;
  cfg.platform = flash_platform();
  set_horizon(cfg, 86400.0 * 365.0);

  cfg.catalog.n_apps = 100;
  cfg.catalog.min_configs_per_app = 1;
  cfg.catalog.max_configs_per_app = 4;
  cfg.catalog.novel_app_frac = 0.08;
  cfg.catalog.novel_shift = 1.2;

  cfg.workload.n_jobs = util::scaled_count(12000, 2000);
  cfg.workload.config_reuse_prob = 0.10;
  cfg.workload.batch_prob = 0.04;
  cfg.workload.batch_zipf_s = 2.6;
  cfg.workload.max_batch = 64;
  cfg.workload.bench_period = 86400.0;
  cfg.workload.bench_runs = 2;

  cfg.weather.n_epochs = 3;
  cfg.weather.epoch_offset_sigma = 0.012;
  cfg.weather.degradations_per_year = 5.0;

  cfg.train_cutoff_frac = 0.70;
  return cfg;
}

std::pair<SimConfig, SimConfig> make_transfer_pair(SimConfig train,
                                                   SimConfig test,
                                                   std::uint64_t seed) {
  const double horizon =
      std::min(train.workload.horizon, test.workload.horizon);
  set_horizon(train, horizon);
  set_horizon(test, horizon);
  // One app population for both sides: same catalog params, same cutoff
  // (novel_after = horizon * frac feeds catalog generation), same
  // dedicated catalog stream sized against the train platform.
  test.catalog = train.catalog;
  test.train_cutoff_frac = train.train_cutoff_frac;
  const std::uint64_t catalog_seed =
      (seed * 0x9e3779b97f4a7c15ULL + 0xca7a106ULL) | 1ULL;
  train.catalog_seed = catalog_seed;
  test.catalog_seed = catalog_seed;
  train.catalog_platform = train.platform;
  test.catalog_platform = train.platform;
  // Decorrelate everything else (workload draw, weather, noise).
  train.seed = seed;
  test.seed = seed ^ 0x5117c0deULL;
  return {std::move(train), std::move(test)};
}

}  // namespace iotax::sim
