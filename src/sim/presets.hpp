// Ready-made simulation configurations mirroring the paper's two study
// systems. Job counts default far below the real datasets (100K / 1.1M
// jobs) to stay single-core friendly; IOTAX_SCALE grows them.
#pragma once

#include <utility>

#include "src/sim/simulator.hpp"

namespace iotax::sim {

/// ALCF-Theta-like: 3 simulated years, ~23.5% duplicate jobs, no LMT,
/// noise calibrated to a +-5.7% (68%) throughput band.
SimConfig theta_like(std::uint64_t seed = 7);

/// NERSC-Cori-like: 2 simulated years, ~54% duplicate jobs, LMT enabled,
/// noise calibrated to a +-7.2% (68%) band.
SimConfig cori_like(std::uint64_t seed = 11);

/// Small fast config for unit tests and the quickstart example.
SimConfig tiny_system(std::uint64_t seed = 3);

/// Burst-buffer-heavy cluster: 1.5 simulated years on bb_platform() —
/// high absolute bandwidth, weak contention, noisy per-job behaviour,
/// frequent buffer-drain degradations. One end of the transfer litmus.
SimConfig bb_like(std::uint64_t seed = 13);

/// All-flash cluster: one simulated year on flash_platform() — low
/// noise, low contention, calm weather. The other transfer extreme.
SimConfig flash_like(std::uint64_t seed = 19);

/// Harmonize two preset configs into a cross-cluster transfer pair
/// sharing one application catalog: horizons are clamped to the shorter
/// of the two, the train config's catalog params and cutoff fraction
/// apply to both, and both get the same nonzero catalog_seed with the
/// train platform as the catalog sizing platform — so the app
/// population (ids, signatures, sensitivities, introduction times) is
/// bit-identical across the pair while platform response, workload
/// draw and weather differ. `seed` drives both runs (the test side is
/// decorrelated deterministically). Returns {train, test}.
std::pair<SimConfig, SimConfig> make_transfer_pair(SimConfig train,
                                                   SimConfig test,
                                                   std::uint64_t seed);

}  // namespace iotax::sim
