// Ready-made simulation configurations mirroring the paper's two study
// systems. Job counts default far below the real datasets (100K / 1.1M
// jobs) to stay single-core friendly; IOTAX_SCALE grows them.
#pragma once

#include "src/sim/simulator.hpp"

namespace iotax::sim {

/// ALCF-Theta-like: 3 simulated years, ~23.5% duplicate jobs, no LMT,
/// noise calibrated to a +-5.7% (68%) throughput band.
SimConfig theta_like(std::uint64_t seed = 7);

/// NERSC-Cori-like: 2 simulated years, ~54% duplicate jobs, LMT enabled,
/// noise calibrated to a +-7.2% (68%) band.
SimConfig cori_like(std::uint64_t seed = 11);

/// Small fast config for unit tests and the quickstart example.
SimConfig tiny_system(std::uint64_t seed = 3);

}  // namespace iotax::sim
