#include "src/sim/dataset_builder.hpp"

#include <cmath>
#include <stdexcept>

#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"

namespace iotax::sim {

std::vector<std::string> dataset_feature_names(bool with_lmt) {
  std::vector<std::string> names = telemetry::posix_feature_names();
  const auto& mpiio = telemetry::mpiio_feature_names();
  names.insert(names.end(), mpiio.begin(), mpiio.end());
  const auto& cobalt = telemetry::cobalt_feature_names();
  names.insert(names.end(), cobalt.begin(), cobalt.end());
  if (with_lmt) {
    const auto& lmt = telemetry::lmt_feature_names();
    names.insert(names.end(), lmt.begin(), lmt.end());
  }
  return names;
}

data::Dataset build_dataset(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth) {
  const bool with_lmt = lmt != nullptr;
  data::Dataset ds;
  ds.system_name = system_name;
  ds.features = data::Table(dataset_feature_names(with_lmt));
  ds.features.reserve_rows(records.size());
  ds.meta.reserve(records.size());
  ds.target.reserve(records.size());

  std::vector<double> row;
  row.reserve(ds.features.n_cols());
  for (const auto& rec : records) {
    if (rec.posix.size() != telemetry::posix_feature_names().size() ||
        rec.mpiio.size() != telemetry::mpiio_feature_names().size()) {
      throw std::invalid_argument("build_dataset: malformed record counters");
    }
    if (rec.agg_perf_mib <= 0.0) {
      throw std::invalid_argument("build_dataset: non-positive throughput");
    }
    row.clear();
    row.insert(row.end(), rec.posix.begin(), rec.posix.end());
    row.insert(row.end(), rec.mpiio.begin(), rec.mpiio.end());
    telemetry::CobaltRecord cob;
    cob.job_id = rec.job_id;
    cob.nodes = rec.nodes;
    cob.cores = rec.n_procs;  // Darshan nprocs as the core-count proxy
    cob.start_time = rec.start_time;
    cob.end_time = rec.end_time;
    cob.placement_spread = rec.placement_spread;
    const auto cob_f = telemetry::cobalt_features(cob);
    row.insert(row.end(), cob_f.begin(), cob_f.end());
    if (with_lmt) {
      const auto lmt_f = lmt->aggregate(rec.start_time, rec.end_time);
      row.insert(row.end(), lmt_f.begin(), lmt_f.end());
    }
    ds.features.add_row(row);

    data::JobMeta m;
    m.job_id = rec.job_id;
    m.app_id = rec.app_id;
    m.config_id = rec.config_id;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.nodes = rec.nodes;
    const double log_phi = std::log10(rec.agg_perf_mib);
    if (truth != nullptr) {
      const auto it = truth->find(rec.job_id);
      if (it == truth->end()) {
        throw std::invalid_argument("build_dataset: job missing from truth");
      }
      m.log_fa = it->second.log_fa;
      m.log_fg = it->second.log_fg;
      m.log_fl = it->second.log_fl;
      m.log_fn = it->second.log_fn;
      m.novel_app = it->second.novel_app;
      const double recomposed = m.log_throughput();
      if (std::fabs(recomposed - log_phi) > 1e-6) {
        throw std::invalid_argument(
            "build_dataset: truth does not match measured throughput");
      }
      // Absorb the residual from the text round-trip of agg_perf_mib so
      // Dataset::validate()'s exact check holds.
      m.log_fn += log_phi - recomposed;
    } else {
      m.log_fa = log_phi;
    }
    ds.meta.push_back(m);
    ds.target.push_back(log_phi);
  }
  return ds;
}

}  // namespace iotax::sim
