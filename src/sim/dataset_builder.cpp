#include "src/sim/dataset_builder.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "src/obs/metrics.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"
#include "src/util/parallel.hpp"

namespace iotax::sim {

std::vector<std::string> dataset_feature_names(bool with_lmt) {
  std::vector<std::string> names = telemetry::posix_feature_names();
  const auto& mpiio = telemetry::mpiio_feature_names();
  names.insert(names.end(), mpiio.begin(), mpiio.end());
  const auto& cobalt = telemetry::cobalt_feature_names();
  names.insert(names.end(), cobalt.begin(), cobalt.end());
  if (with_lmt) {
    const auto& lmt = telemetry::lmt_feature_names();
    names.insert(names.end(), lmt.begin(), lmt.end());
  }
  return names;
}

namespace {

/// First defect found in one record, or repaired state. The check order
/// is fixed (sizes, throughput, counter values, times, duplication,
/// truth) so quarantine counts are reproducible and match the fault
/// injector's expectations. The duplicate check needs global state, so
/// it lives with the caller (serial loop or sharded merge); everything
/// up to it is record-local and safe to run on the thread pool.
struct RecordVerdict {
  bool quarantined = false;
  util::Reason reason = util::Reason::kSizeMismatch;
  std::string detail;
  /// Fixes applied in kRepair mode, in application order. Repairs stick
  /// even when a later check (duplication, truth) rejects the record,
  /// exactly like the serial single-pass ingest.
  std::vector<util::Reason> repairs;
};

/// Record-local validation: sizes, throughput, counter values, times.
/// `rec` may be mutated in kRepair mode only.
RecordVerdict check_record_local(telemetry::JobLogRecord& rec,
                                 IngestMode mode) {
  RecordVerdict v;
  const auto reject = [&v](util::Reason reason, std::string detail) {
    v.quarantined = true;
    v.reason = reason;
    v.detail = std::move(detail);
  };

  if (rec.posix.size() != telemetry::posix_feature_names().size() ||
      rec.mpiio.size() != telemetry::mpiio_feature_names().size()) {
    reject(util::Reason::kSizeMismatch, "malformed record counters");
    return v;
  }
  if (!std::isfinite(rec.agg_perf_mib) || rec.agg_perf_mib <= 0.0) {
    reject(util::Reason::kBadThroughput,
           "non-positive or non-finite throughput");
    return v;
  }
  for (auto* counters : {&rec.posix, &rec.mpiio}) {
    for (double& value : *counters) {
      if (!std::isfinite(value)) {
        if (mode == IngestMode::kRepair) {
          value = 0.0;
          v.repairs.push_back(util::Reason::kNonFiniteValue);
          continue;
        }
        reject(util::Reason::kNonFiniteValue, "non-finite counter value");
        return v;
      }
      if (value < 0.0) {
        if (mode == IngestMode::kRepair) {
          value = 0.0;
          v.repairs.push_back(util::Reason::kNegativeCounter);
          continue;
        }
        reject(util::Reason::kNegativeCounter, "negative counter value");
        return v;
      }
    }
  }
  if (!std::isfinite(rec.start_time) || !std::isfinite(rec.end_time)) {
    reject(util::Reason::kNonFiniteValue, "non-finite job timestamps");
    return v;
  }
  if (rec.end_time < rec.start_time) {
    if (mode == IngestMode::kRepair) {
      std::swap(rec.start_time, rec.end_time);
      v.repairs.push_back(util::Reason::kTimeInverted);
    } else {
      reject(util::Reason::kTimeInverted, "job ends before it starts");
      return v;
    }
  }
  return v;
}

/// Ground-truth consistency — the last check in the canonical order
/// (after duplication). Pure read of the truth map, thread-safe.
RecordVerdict check_record_truth(const telemetry::JobLogRecord& rec,
                                 const TruthMap* truth) {
  RecordVerdict v;
  if (truth == nullptr) return v;
  const auto it = truth->find(rec.job_id);
  if (it == truth->end()) {
    v.quarantined = true;
    v.reason = util::Reason::kMissingTruth;
    v.detail = "job missing from truth";
    return v;
  }
  const auto& t = it->second;
  const double recomposed = t.log_fa + t.log_fg + t.log_fl + t.log_fn;
  const double log_phi = std::log10(rec.agg_perf_mib);
  if (std::fabs(recomposed - log_phi) > 1e-6) {
    v.quarantined = true;
    v.reason = util::Reason::kTruthMismatch;
    v.detail = "truth does not match measured throughput";
  }
  return v;
}

/// Append one accepted record's feature row, meta and target to `ds`.
/// `row` is caller-owned scratch to avoid per-record allocation.
void append_record(const telemetry::JobLogRecord& rec,
                   const telemetry::LmtTimeline* lmt, const TruthMap* truth,
                   data::Dataset& ds, std::vector<double>& row) {
  row.clear();
  row.insert(row.end(), rec.posix.begin(), rec.posix.end());
  row.insert(row.end(), rec.mpiio.begin(), rec.mpiio.end());
  telemetry::CobaltRecord cob;
  cob.job_id = rec.job_id;
  cob.nodes = rec.nodes;
  cob.cores = rec.n_procs;  // Darshan nprocs as the core-count proxy
  cob.start_time = rec.start_time;
  cob.end_time = rec.end_time;
  cob.placement_spread = rec.placement_spread;
  const auto cob_f = telemetry::cobalt_features(cob);
  row.insert(row.end(), cob_f.begin(), cob_f.end());
  if (lmt != nullptr) {
    const auto lmt_f = lmt->aggregate(rec.start_time, rec.end_time);
    row.insert(row.end(), lmt_f.begin(), lmt_f.end());
  }
  ds.features.add_row(row);

  data::JobMeta m;
  m.job_id = rec.job_id;
  m.app_id = rec.app_id;
  m.config_id = rec.config_id;
  m.start_time = rec.start_time;
  m.end_time = rec.end_time;
  m.nodes = rec.nodes;
  const double log_phi = std::log10(rec.agg_perf_mib);
  if (truth != nullptr) {
    const auto& t = truth->at(rec.job_id);
    m.log_fa = t.log_fa;
    m.log_fg = t.log_fg;
    m.log_fl = t.log_fl;
    m.log_fn = t.log_fn;
    m.novel_app = t.novel_app;
    // Absorb the residual from the text round-trip of agg_perf_mib so
    // Dataset::validate()'s exact check holds.
    m.log_fn += log_phi - m.log_throughput();
  } else {
    m.log_fa = log_phi;
  }
  ds.meta.push_back(m);
  ds.target.push_back(log_phi);
}

[[noreturn]] void throw_strict(const RecordVerdict& v, std::size_t idx) {
  throw IngestError(v.reason, "build_dataset: " + v.detail + " [" +
                                  util::reason_name(v.reason) + ", record " +
                                  std::to_string(idx) + "]");
}

}  // namespace

IngestResult build_dataset_ingest(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth, IngestMode mode) {
  const bool with_lmt = lmt != nullptr;
  IngestResult out;
  data::Dataset& ds = out.dataset;
  ds.system_name = system_name;
  ds.features = data::Table(dataset_feature_names(with_lmt));
  ds.features.reserve_rows(records.size());
  ds.meta.reserve(records.size());
  ds.target.reserve(records.size());
  out.kept_records.reserve(records.size());

  std::unordered_set<std::uint64_t> seen_jobs;
  seen_jobs.reserve(records.size());

  std::vector<double> row;
  row.reserve(ds.features.n_cols());
  std::size_t repaired = 0;
  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    // Records are checked (and possibly repaired) on a copy; the caller's
    // archive stays exactly as parsed.
    telemetry::JobLogRecord rec = records[idx];
    RecordVerdict verdict = check_record_local(rec, mode);
    for (const auto reason : verdict.repairs) {
      out.quarantine.note_repair(reason);
    }
    repaired += verdict.repairs.size();
    if (!verdict.quarantined) {
      if (!seen_jobs.insert(rec.job_id).second) {
        verdict.quarantined = true;
        verdict.reason = util::Reason::kDuplicateJobId;
        verdict.detail = "job id already ingested (duplicated log record)";
      } else {
        RecordVerdict t = check_record_truth(rec, truth);
        if (t.quarantined) verdict = std::move(t);
      }
    }
    if (verdict.quarantined) {
      if (mode == IngestMode::kStrict) throw_strict(verdict, idx);
      out.quarantine.add({verdict.reason, rec.job_id, idx, 0, verdict.detail});
      continue;
    }
    append_record(rec, lmt, truth, ds, row);
    out.kept_records.push_back(idx);
  }
  IOTAX_OBS_COUNT("ingest.records", records.size());
  IOTAX_OBS_COUNT("ingest.quarantined", out.quarantine.total());
  IOTAX_OBS_COUNT("ingest.repaired", repaired);
  return out;
}

data::Dataset build_dataset(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth) {
  return build_dataset_ingest(records, lmt, system_name, truth,
                              IngestMode::kStrict)
      .dataset;
}

namespace {

/// Everything one shard contributes, computed on the thread pool. Rows
/// are pre-built for every record that passes its local and truth
/// checks; the merge discards the ones the global duplicate check
/// rejects, so no parallel state ever depends on another shard.
struct ShardWork {
  bool parse_ok = true;
  std::string parse_error;
  util::QuarantineReport parse_quarantine;
  std::vector<telemetry::JobLogRecord> records;  // post-repair state
  std::vector<RecordVerdict> verdicts;           // local checks
  std::vector<RecordVerdict> truth_verdicts;     // deferred (post-dup) check
  std::vector<char> has_row;                     // row built for record i?
  data::Dataset rows;                            // candidate rows, in order
};

ShardWork process_shard(const IngestShard& shard,
                        const telemetry::LmtTimeline* lmt,
                        const std::string& system_name, const TruthMap* truth,
                        IngestMode mode,
                        const std::vector<std::string>& feature_names) {
  ShardWork w;
  auto outcome = shard.binary
                     ? telemetry::read_binary_archive_file_outcome(
                           shard.path, telemetry::ParseMode::kLenient)
                     : telemetry::parse_archive_file_outcome(
                           shard.path, telemetry::ParseMode::kLenient);
  if (!outcome.ok) {
    w.parse_ok = false;
    w.parse_error = outcome.error;
    return w;
  }
  w.parse_quarantine = std::move(outcome.quarantine);
  w.records = std::move(outcome.records);
  w.verdicts.reserve(w.records.size());
  w.truth_verdicts.resize(w.records.size());
  w.has_row.assign(w.records.size(), 0);
  w.rows.system_name = system_name;
  w.rows.features = data::Table(feature_names);
  w.rows.features.reserve_rows(w.records.size());
  std::vector<double> row;
  row.reserve(feature_names.size());
  for (std::size_t i = 0; i < w.records.size(); ++i) {
    telemetry::JobLogRecord& rec = w.records[i];
    w.verdicts.push_back(check_record_local(rec, mode));
    if (w.verdicts.back().quarantined) continue;
    w.truth_verdicts[i] = check_record_truth(rec, truth);
    if (w.truth_verdicts[i].quarantined) continue;
    append_record(rec, lmt, truth, w.rows, row);
    w.has_row[i] = 1;
  }
  return w;
}

}  // namespace

ShardedIngestSummary ingest_shards(
    const std::vector<IngestShard>& shards, const telemetry::LmtTimeline* lmt,
    const std::string& system_name, const TruthMap* truth, IngestMode mode,
    const std::function<void(data::Dataset&&)>& emit) {
  const std::vector<std::string> feature_names =
      dataset_feature_names(lmt != nullptr);
  ShardedIngestSummary out;
  std::unordered_set<std::uint64_t> seen_jobs;
  std::size_t base = 0;  // global index of the current shard's record 0

  // Shards are processed in waves of pool width, merged in shard order
  // as each wave lands: bounded memory (one wave of parsed shards), and
  // a merge whose outcome cannot depend on scheduling.
  const std::size_t wave = std::max<std::size_t>(1, util::parallel_threads());
  std::vector<std::size_t> ok_rows;
  for (std::size_t s0 = 0; s0 < shards.size(); s0 += wave) {
    const std::size_t s1 = std::min(s0 + wave, shards.size());
    auto works = util::parallel_map<ShardWork>(s1 - s0, [&](std::size_t i) {
      return process_shard(shards[s0 + i], lmt, system_name, truth, mode,
                           feature_names);
    });
    for (std::size_t i = 0; i < works.size(); ++i) {
      ShardWork& w = works[i];
      const std::string& path = shards[s0 + i].path;
      if (!w.parse_ok) {
        throw std::runtime_error("ingest: unreadable archive '" + path +
                                 "': " + w.parse_error);
      }
      if (mode == IngestMode::kStrict && w.parse_quarantine.total() > 0) {
        const auto& e = w.parse_quarantine.entries().front();
        throw IngestError(e.reason, "build_dataset: " + e.detail + " [" +
                                        util::reason_name(e.reason) + ", " +
                                        path + "]");
      }
      out.quarantine.merge(w.parse_quarantine);
      ok_rows.clear();
      std::size_t row_cursor = 0;
      for (std::size_t r = 0; r < w.records.size(); ++r) {
        const std::size_t global_idx = base + r;
        RecordVerdict& v = w.verdicts[r];
        for (const auto reason : v.repairs) {
          out.quarantine.note_repair(reason);
        }
        out.repaired += v.repairs.size();
        const bool local_ok = !v.quarantined;
        if (local_ok) {
          if (!seen_jobs.insert(w.records[r].job_id).second) {
            v.quarantined = true;
            v.reason = util::Reason::kDuplicateJobId;
            v.detail = "job id already ingested (duplicated log record)";
          } else if (w.truth_verdicts[r].quarantined) {
            v = std::move(w.truth_verdicts[r]);
          }
        }
        if (v.quarantined) {
          if (mode == IngestMode::kStrict) throw_strict(v, global_idx);
          out.quarantine.add(
              {v.reason, w.records[r].job_id, global_idx, 0, v.detail});
        } else {
          ok_rows.push_back(row_cursor);
          out.kept_records.push_back(global_idx);
        }
        if (w.has_row[r] != 0) ++row_cursor;
      }
      base += w.records.size();
      out.total_records += w.records.size();
      if (!ok_rows.empty()) {
        data::Dataset chunk;
        chunk.system_name = system_name;
        chunk.features = w.rows.features.take(ok_rows);
        chunk.meta.reserve(ok_rows.size());
        chunk.target.reserve(ok_rows.size());
        for (const std::size_t rr : ok_rows) {
          chunk.meta.push_back(w.rows.meta[rr]);
          chunk.target.push_back(w.rows.target[rr]);
        }
        emit(std::move(chunk));
      }
      w = ShardWork();  // free this shard before the next wave lands
    }
  }
  IOTAX_OBS_COUNT("ingest.shards", shards.size());
  IOTAX_OBS_COUNT("ingest.records", out.total_records);
  IOTAX_OBS_COUNT("ingest.quarantined", out.quarantine.total());
  IOTAX_OBS_COUNT("ingest.repaired", out.repaired);
  return out;
}

IngestResult build_dataset_ingest_sharded(
    const std::vector<IngestShard>& shards, const telemetry::LmtTimeline* lmt,
    const std::string& system_name, const TruthMap* truth, IngestMode mode) {
  IngestResult out;
  data::Dataset& ds = out.dataset;
  ds.system_name = system_name;
  ds.features = data::Table(dataset_feature_names(lmt != nullptr));
  bool first = true;
  auto summary = ingest_shards(
      shards, lmt, system_name, truth, mode, [&](data::Dataset&& chunk) {
        if (first) {
          ds.features = std::move(chunk.features);
          ds.meta = std::move(chunk.meta);
          ds.target = std::move(chunk.target);
          first = false;
          return;
        }
        ds.features = ds.features.vcat(chunk.features);
        ds.meta.insert(ds.meta.end(), chunk.meta.begin(), chunk.meta.end());
        ds.target.insert(ds.target.end(), chunk.target.begin(),
                         chunk.target.end());
      });
  out.quarantine = std::move(summary.quarantine);
  out.kept_records = std::move(summary.kept_records);
  return out;
}

}  // namespace iotax::sim
