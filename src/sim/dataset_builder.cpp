#include "src/sim/dataset_builder.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "src/obs/metrics.hpp"
#include "src/telemetry/cobalt.hpp"
#include "src/telemetry/counters.hpp"

namespace iotax::sim {

std::vector<std::string> dataset_feature_names(bool with_lmt) {
  std::vector<std::string> names = telemetry::posix_feature_names();
  const auto& mpiio = telemetry::mpiio_feature_names();
  names.insert(names.end(), mpiio.begin(), mpiio.end());
  const auto& cobalt = telemetry::cobalt_feature_names();
  names.insert(names.end(), cobalt.begin(), cobalt.end());
  if (with_lmt) {
    const auto& lmt = telemetry::lmt_feature_names();
    names.insert(names.end(), lmt.begin(), lmt.end());
  }
  return names;
}

namespace {

/// First defect found in one record, or repaired state. The check order
/// is fixed (sizes, throughput, counter values, times, duplication,
/// truth) so quarantine counts are reproducible and match the fault
/// injector's expectations.
struct RecordVerdict {
  bool quarantined = false;
  util::Reason reason = util::Reason::kSizeMismatch;
  std::string detail;
  std::size_t repairs = 0;  // fixes applied in kRepair mode
};

/// Validate (and in repair mode fix) one record. `rec` may be mutated in
/// kRepair mode only.
RecordVerdict check_record(telemetry::JobLogRecord& rec, IngestMode mode,
                           std::unordered_set<std::uint64_t>& seen_jobs,
                           const TruthMap* truth,
                           util::QuarantineReport& quarantine) {
  RecordVerdict v;
  const auto reject = [&v](util::Reason reason, std::string detail) {
    v.quarantined = true;
    v.reason = reason;
    v.detail = std::move(detail);
  };

  if (rec.posix.size() != telemetry::posix_feature_names().size() ||
      rec.mpiio.size() != telemetry::mpiio_feature_names().size()) {
    reject(util::Reason::kSizeMismatch, "malformed record counters");
    return v;
  }
  if (!std::isfinite(rec.agg_perf_mib) || rec.agg_perf_mib <= 0.0) {
    reject(util::Reason::kBadThroughput,
           "non-positive or non-finite throughput");
    return v;
  }
  for (auto* counters : {&rec.posix, &rec.mpiio}) {
    for (double& value : *counters) {
      if (!std::isfinite(value)) {
        if (mode == IngestMode::kRepair) {
          value = 0.0;
          ++v.repairs;
          quarantine.note_repair(util::Reason::kNonFiniteValue);
          continue;
        }
        reject(util::Reason::kNonFiniteValue, "non-finite counter value");
        return v;
      }
      if (value < 0.0) {
        if (mode == IngestMode::kRepair) {
          value = 0.0;
          ++v.repairs;
          quarantine.note_repair(util::Reason::kNegativeCounter);
          continue;
        }
        reject(util::Reason::kNegativeCounter, "negative counter value");
        return v;
      }
    }
  }
  if (!std::isfinite(rec.start_time) || !std::isfinite(rec.end_time)) {
    reject(util::Reason::kNonFiniteValue, "non-finite job timestamps");
    return v;
  }
  if (rec.end_time < rec.start_time) {
    if (mode == IngestMode::kRepair) {
      std::swap(rec.start_time, rec.end_time);
      ++v.repairs;
      quarantine.note_repair(util::Reason::kTimeInverted);
    } else {
      reject(util::Reason::kTimeInverted, "job ends before it starts");
      return v;
    }
  }
  if (!seen_jobs.insert(rec.job_id).second) {
    reject(util::Reason::kDuplicateJobId,
           "job id already ingested (duplicated log record)");
    return v;
  }
  if (truth != nullptr) {
    const auto it = truth->find(rec.job_id);
    if (it == truth->end()) {
      reject(util::Reason::kMissingTruth, "job missing from truth");
      return v;
    }
    const auto& t = it->second;
    const double recomposed = t.log_fa + t.log_fg + t.log_fl + t.log_fn;
    const double log_phi = std::log10(rec.agg_perf_mib);
    if (std::fabs(recomposed - log_phi) > 1e-6) {
      reject(util::Reason::kTruthMismatch,
             "truth does not match measured throughput");
      return v;
    }
  }
  return v;
}

}  // namespace

IngestResult build_dataset_ingest(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth, IngestMode mode) {
  const bool with_lmt = lmt != nullptr;
  IngestResult out;
  data::Dataset& ds = out.dataset;
  ds.system_name = system_name;
  ds.features = data::Table(dataset_feature_names(with_lmt));
  ds.features.reserve_rows(records.size());
  ds.meta.reserve(records.size());
  ds.target.reserve(records.size());
  out.kept_records.reserve(records.size());

  std::unordered_set<std::uint64_t> seen_jobs;
  seen_jobs.reserve(records.size());

  std::vector<double> row;
  row.reserve(ds.features.n_cols());
  std::size_t repaired = 0;
  for (std::size_t idx = 0; idx < records.size(); ++idx) {
    // Records are checked (and possibly repaired) on a copy; the caller's
    // archive stays exactly as parsed.
    telemetry::JobLogRecord rec = records[idx];
    const auto verdict =
        check_record(rec, mode, seen_jobs, truth, out.quarantine);
    if (verdict.quarantined) {
      if (mode == IngestMode::kStrict) {
        throw IngestError(verdict.reason,
                          "build_dataset: " + verdict.detail + " [" +
                              util::reason_name(verdict.reason) +
                              ", record " + std::to_string(idx) + "]");
      }
      out.quarantine.add({verdict.reason, rec.job_id, idx, 0, verdict.detail});
      continue;
    }
    repaired += verdict.repairs;

    row.clear();
    row.insert(row.end(), rec.posix.begin(), rec.posix.end());
    row.insert(row.end(), rec.mpiio.begin(), rec.mpiio.end());
    telemetry::CobaltRecord cob;
    cob.job_id = rec.job_id;
    cob.nodes = rec.nodes;
    cob.cores = rec.n_procs;  // Darshan nprocs as the core-count proxy
    cob.start_time = rec.start_time;
    cob.end_time = rec.end_time;
    cob.placement_spread = rec.placement_spread;
    const auto cob_f = telemetry::cobalt_features(cob);
    row.insert(row.end(), cob_f.begin(), cob_f.end());
    if (with_lmt) {
      const auto lmt_f = lmt->aggregate(rec.start_time, rec.end_time);
      row.insert(row.end(), lmt_f.begin(), lmt_f.end());
    }
    ds.features.add_row(row);

    data::JobMeta m;
    m.job_id = rec.job_id;
    m.app_id = rec.app_id;
    m.config_id = rec.config_id;
    m.start_time = rec.start_time;
    m.end_time = rec.end_time;
    m.nodes = rec.nodes;
    const double log_phi = std::log10(rec.agg_perf_mib);
    if (truth != nullptr) {
      const auto& t = truth->at(rec.job_id);
      m.log_fa = t.log_fa;
      m.log_fg = t.log_fg;
      m.log_fl = t.log_fl;
      m.log_fn = t.log_fn;
      m.novel_app = t.novel_app;
      // Absorb the residual from the text round-trip of agg_perf_mib so
      // Dataset::validate()'s exact check holds.
      m.log_fn += log_phi - m.log_throughput();
    } else {
      m.log_fa = log_phi;
    }
    ds.meta.push_back(m);
    ds.target.push_back(log_phi);
    out.kept_records.push_back(idx);
  }
  IOTAX_OBS_COUNT("ingest.records", records.size());
  IOTAX_OBS_COUNT("ingest.quarantined", out.quarantine.total());
  IOTAX_OBS_COUNT("ingest.repaired", repaired);
  return out;
}

data::Dataset build_dataset(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth) {
  return build_dataset_ingest(records, lmt, system_name, truth,
                              IngestMode::kStrict)
      .dataset;
}

}  // namespace iotax::sim
