#include "src/sim/lmt_gen.hpp"

#include <algorithm>
#include <cmath>

namespace iotax::sim {

telemetry::LmtTimeline generate_lmt_timeline(const LoadTimeline& load,
                                             const GlobalWeather& weather,
                                             const PlatformConfig& platform,
                                             double horizon, util::Rng& rng) {
  telemetry::LmtTimeline tl;
  tl.set_ost_count(static_cast<double>(platform.n_ost));
  for (double t = 0.0; t <= horizon; t += platform.lmt_period_s) {
    const double demand = load.load_at(t);            // fraction of peak
    const double weather_off = weather.log_offset(t); // log10, <= ~0.05
    const double health = std::pow(10.0, std::min(0.0, weather_off));

    telemetry::LmtSample s;
    s.time = t;
    // Server CPU: baseline + load + degradation overhead (rebuilds etc.).
    s.oss_cpu = std::clamp(0.12 + 0.55 * std::min(demand, 1.5) / 1.5 +
                               2.2 * std::max(0.0, -weather_off) +
                               rng.normal(0.0, 0.02),
                           0.0, 1.0);
    s.oss_mem = std::clamp(0.35 + 0.3 * std::min(demand, 1.0) +
                               rng.normal(0.0, 0.03),
                           0.0, 1.0);
    // Transfer rates: demanded bandwidth, capped by degraded capability.
    const double served =
        std::min(demand, 1.0) * platform.peak_bandwidth_mib * health;
    const double read_share = 0.5 + 0.2 * std::sin(2.0 * M_PI * t / 86400.0);
    s.ost_read_rate = std::max(0.0, served * read_share *
                                        rng.lognormal(0.0, 0.05));
    s.ost_write_rate = std::max(0.0, served * (1.0 - read_share) *
                                         rng.lognormal(0.0, 0.05));
    // Fullness creeps up over the system's life, with purge sawtooth.
    const double life = t / std::max(horizon, 1.0);
    const double sawtooth =
        0.06 * (std::fmod(t, 86400.0 * 30.0) / (86400.0 * 30.0));
    s.ost_fullness = std::clamp(0.35 + 0.35 * life + sawtooth +
                                    rng.normal(0.0, 0.01),
                                0.0, 0.99);
    // Metadata servers: load-correlated plus degradation storms.
    s.mds_cpu = std::clamp(0.08 + 0.4 * std::min(demand, 1.0) +
                               1.8 * std::max(0.0, -weather_off) +
                               rng.normal(0.0, 0.02),
                           0.0, 1.0);
    const double meta_rate = 2000.0 + 30000.0 * std::min(demand, 1.0);
    s.mds_ops_rate = std::max(0.0, meta_rate * rng.lognormal(0.0, 0.1));
    s.mds_open_rate = 0.35 * s.mds_ops_rate;
    s.mds_close_rate = 0.34 * s.mds_ops_rate;
    tl.add_sample(s);
  }
  return tl;
}

}  // namespace iotax::sim
