#include "src/sim/app_model.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::sim {

using telemetry::IoSignature;
using telemetry::kSizeBuckets;

double ideal_log_throughput(const IoSignature& sig,
                            const PlatformConfig& platform) {
  sig.validate();
  platform.validate();
  const double total = sig.total_bytes();
  const double read_w = total > 0.0 ? sig.bytes_read / total : 0.5;
  const double write_w = 1.0 - read_w;

  // Access-size efficiency: tiny accesses waste most of the pipeline.
  static constexpr double kBucketEff[kSizeBuckets] = {
      0.02, 0.05, 0.12, 0.25, 0.45, 0.70, 0.85, 0.95, 1.0, 1.0};
  double size_eff = 0.0;
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    size_eff += (read_w * sig.read_size_frac[b] +
                 write_w * sig.write_size_frac[b]) *
                kBucketEff[b];
  }
  // Collective MPI-IO aggregation rescues small accesses (two-phase I/O).
  double small_frac = 0.0;
  for (std::size_t b = 0; b < 4; ++b) {
    small_frac += read_w * sig.read_size_frac[b] +
                  write_w * sig.write_size_frac[b];
  }
  if (sig.uses_mpiio && small_frac > 0.0) {
    size_eff += small_frac * 0.45 * sig.coll_frac;
  }
  size_eff = std::clamp(size_eff, 0.01, 1.0);

  // Sequentiality: prefetch and write-behind reward ordered access.
  const double seq = read_w * sig.seq_read_frac + write_w * sig.seq_write_frac;
  const double consec =
      read_w * sig.consec_read_frac + write_w * sig.consec_write_frac;
  const double pattern_eff = 0.55 + 0.25 * seq + 0.20 * consec;

  // Alignment and read/write interleaving penalties.
  const double align_eff = (1.0 - 0.30 * sig.file_unaligned_frac) *
                           (1.0 - 0.10 * sig.mem_unaligned_frac);
  const double switch_eff = 1.0 - 0.40 * sig.rw_switch_frac;

  // Shared-file lock contention grows with process count.
  const double proc_scale =
      std::log10(1.0 + static_cast<double>(sig.n_procs)) / 3.0;
  const double shared_eff =
      1.0 - 0.55 * sig.files_shared_frac * std::min(1.0, proc_scale);

  // Metadata pressure: many opens/stats per byte moved stall the MDS.
  const double opens =
      sig.files_total * sig.opens_per_file * (1.0 + sig.stats_per_open);
  const double meta_per_gib = opens / std::max(total / 1.074e9, 1e-3);
  const double meta_eff =
      1.0 / (1.0 + 0.004 * meta_per_gib + 0.06 * sig.meta_intensity);

  // Parallel scaling: per-process ceiling, saturating at a fraction of the
  // filesystem peak (one job cannot monopolise the whole machine).
  const double parallel_bw = std::min(
      static_cast<double>(sig.n_procs) * platform.per_proc_bandwidth_mib,
      0.5 * platform.peak_bandwidth_mib);

  const double throughput = parallel_bw * size_eff * pattern_eff * align_eff *
                            switch_eff * shared_eff * meta_eff;
  return std::log10(std::max(throughput, 1.0));
}

namespace {

enum class Archetype : int {
  kCheckpointWriter = 0,  // write-heavy, large sequential
  kAnalysisReader,        // read-heavy, medium accesses
  kSmallIo,               // tiny accesses, many files
  kSharedCollective,      // shared files, MPI-IO collectives
  kMetadataHeavy,         // open/stat storms
  kCount
};

void normalize(std::array<double, kSizeBuckets>& frac) {
  double sum = 0.0;
  for (double f : frac) sum += f;
  if (sum <= 0.0) {
    frac[5] = 1.0;
    return;
  }
  for (double& f : frac) f /= sum;
}

// Concentrate bucket mass around `center` with some spread.
std::array<double, kSizeBuckets> bucket_mix(util::Rng& rng, double center,
                                            double spread) {
  std::array<double, kSizeBuckets> frac{};
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    const double d = (static_cast<double>(b) - center) / spread;
    frac[b] = std::exp(-0.5 * d * d) * rng.uniform(0.6, 1.4);
  }
  normalize(frac);
  return frac;
}

IoSignature random_signature(util::Rng& rng, Archetype arch, double shift,
                             const PlatformConfig& platform) {
  IoSignature sig;
  // Process count: powers of two up to a fraction of the machine.
  const double max_procs_log2 = std::log2(
      static_cast<double>(platform.n_nodes) * platform.cores_per_node / 4.0);
  const auto procs_log2 =
      static_cast<int>(rng.uniform(2.0, std::min(14.0, max_procs_log2)));
  sig.n_procs = static_cast<std::uint32_t>(1u << procs_log2);

  // Volume: 1 GiB .. ~100 TiB, log-uniform, archetype-flavoured.
  const double volume = std::pow(10.0, rng.uniform(9.05, 13.0 + 0.4 * shift));
  double read_share = 0.5;
  double size_center = 5.0;
  double size_spread = 1.5;
  sig.files_total = std::max(1.0, std::round(rng.lognormal(2.0, 1.0)));
  sig.meta_intensity = rng.uniform(0.0, 0.5);
  switch (arch) {
    case Archetype::kCheckpointWriter:
      read_share = rng.uniform(0.0, 0.2);
      size_center = 7.0 + shift * rng.uniform(-1.0, 0.5);
      size_spread = 1.0;
      sig.seq_write_frac = rng.uniform(0.85, 1.0);
      sig.consec_write_frac = sig.seq_write_frac * rng.uniform(0.6, 1.0);
      sig.seq_read_frac = rng.uniform(0.3, 0.9);
      sig.files_writeonly_frac = rng.uniform(0.7, 1.0);
      break;
    case Archetype::kAnalysisReader:
      read_share = rng.uniform(0.8, 1.0);
      size_center = 5.5 + shift * rng.uniform(-1.5, 0.5);
      sig.seq_read_frac = rng.uniform(0.5, 0.95);
      sig.consec_read_frac = sig.seq_read_frac * rng.uniform(0.4, 0.9);
      sig.seq_write_frac = rng.uniform(0.5, 1.0);
      sig.files_readonly_frac = rng.uniform(0.6, 1.0);
      break;
    case Archetype::kSmallIo:
      read_share = rng.uniform(0.3, 0.7);
      size_center = 1.5 + shift * rng.uniform(0.0, 1.0);
      size_spread = 1.0;
      sig.seq_read_frac = rng.uniform(0.1, 0.6);
      sig.consec_read_frac = sig.seq_read_frac * rng.uniform(0.2, 0.7);
      sig.seq_write_frac = rng.uniform(0.1, 0.6);
      sig.consec_write_frac = sig.seq_write_frac * rng.uniform(0.2, 0.7);
      sig.files_total = std::max(4.0, std::round(rng.lognormal(4.0, 1.0)));
      sig.rw_switch_frac = rng.uniform(0.1, 0.5);
      break;
    case Archetype::kSharedCollective:
      read_share = rng.uniform(0.2, 0.8);
      size_center = 4.0 + shift * rng.uniform(-1.0, 1.0);
      sig.files_shared_frac = rng.uniform(0.6, 1.0);
      sig.files_total = std::max(1.0, std::round(rng.lognormal(0.7, 0.6)));
      sig.uses_mpiio = true;
      sig.coll_frac = rng.uniform(0.5, 1.0);
      sig.nonblocking_frac = rng.uniform(0.0, 0.3);
      sig.seq_read_frac = rng.uniform(0.5, 1.0);
      sig.seq_write_frac = rng.uniform(0.5, 1.0);
      break;
    case Archetype::kMetadataHeavy:
      read_share = rng.uniform(0.2, 0.8);
      size_center = 3.0 + shift * rng.uniform(-0.5, 0.5);
      sig.files_total = std::max(16.0, std::round(rng.lognormal(5.5, 1.0)));
      sig.opens_per_file = rng.uniform(2.0, 8.0);
      sig.stats_per_open = rng.uniform(1.0, 6.0);
      sig.meta_intensity = rng.uniform(1.0, 4.0);
      sig.seq_read_frac = rng.uniform(0.2, 0.8);
      sig.seq_write_frac = rng.uniform(0.2, 0.8);
      break;
    default:
      throw std::logic_error("random_signature: bad archetype");
  }
  sig.bytes_read = volume * read_share;
  sig.bytes_written = volume * (1.0 - read_share);
  sig.read_size_frac = bucket_mix(rng, size_center, size_spread);
  sig.write_size_frac =
      bucket_mix(rng, size_center + rng.uniform(-0.5, 0.5), size_spread);
  sig.mem_unaligned_frac = rng.uniform(0.0, 0.6);
  sig.file_unaligned_frac = rng.uniform(0.0, 0.7);
  sig.seeks_per_op = rng.uniform(0.0, 0.4);
  sig.fsyncs = std::floor(rng.uniform(0.0, 16.0));
  if (shift > 0.0) {
    // Novel applications occupy feature regions the training population
    // never visits: metadata storms, extreme file counts, oversubscribed
    // process counts. These are the regions where a trained model must
    // extrapolate and fail (§VIII, Fig. 1c).
    sig.meta_intensity += shift * rng.uniform(0.5, 3.0);
    sig.files_total = std::min(
        1e6, sig.files_total * std::exp(shift * rng.uniform(0.5, 2.0)));
    sig.opens_per_file += shift * rng.uniform(0.0, 4.0);
    sig.stats_per_open += shift * rng.uniform(0.0, 4.0);
    sig.seeks_per_op = std::min(1.0, sig.seeks_per_op + shift * 0.3);
  }
  if (!sig.uses_mpiio && rng.bernoulli(0.35)) {
    sig.uses_mpiio = true;
    sig.coll_frac = rng.uniform(0.0, 0.8);
    sig.nonblocking_frac = rng.uniform(0.0, 0.2);
  }
  // Keep file-role fractions consistent.
  if (sig.files_readonly_frac + sig.files_writeonly_frac > 1.0) {
    const double scale =
        1.0 / (sig.files_readonly_frac + sig.files_writeonly_frac);
    sig.files_readonly_frac *= scale;
    sig.files_writeonly_frac *= scale;
  }
  sig.validate();
  return sig;
}

AppConfig derive_config(util::Rng& rng, const IoSignature& base,
                        std::uint64_t config_id,
                        const PlatformConfig& platform) {
  AppConfig cfg;
  cfg.config_id = config_id;
  cfg.signature = base;
  // Configurations of one app vary volume and concurrency, not pattern.
  const double volume_scale = std::pow(2.0, rng.uniform_int(-2, 3));
  cfg.signature.bytes_read *= volume_scale;
  cfg.signature.bytes_written *= volume_scale;
  const int proc_shift = static_cast<int>(rng.uniform_int(-1, 2));
  double procs = static_cast<double>(base.n_procs) * std::pow(2.0, proc_shift);
  procs = std::clamp(procs, 1.0,
                     static_cast<double>(platform.n_nodes) *
                         platform.cores_per_node / 4.0);
  cfg.signature.n_procs = static_cast<std::uint32_t>(procs);
  cfg.nodes = static_cast<std::uint32_t>(std::max(
      1.0, std::ceil(procs / static_cast<double>(platform.cores_per_node))));
  cfg.compute_time_s = rng.lognormal(std::log(1200.0), 0.8);
  cfg.signature.validate();
  return cfg;
}

}  // namespace

std::vector<Application> generate_catalog(const CatalogParams& params,
                                          const PlatformConfig& platform,
                                          util::Rng& rng) {
  if (params.n_apps < 2) {
    throw std::invalid_argument("generate_catalog: need at least 2 apps");
  }
  if (params.novel_app_frac < 0.0 || params.novel_app_frac >= 1.0) {
    throw std::invalid_argument("generate_catalog: bad novel_app_frac");
  }
  std::vector<Application> apps;
  apps.reserve(params.n_apps);

  // App 0: the periodic filesystem benchmark ("iobench", an IOR stand-in).
  {
    Application bench;
    bench.app_id = 0;
    bench.name = "iobench";
    util::Rng arng = rng.fork(1000);
    IoSignature sig = random_signature(arng, Archetype::kSharedCollective,
                                       0.0, platform);
    sig.n_procs = 512;
    AppConfig cfg;
    cfg.config_id = 0;
    cfg.signature = sig;
    cfg.nodes = static_cast<std::uint32_t>(
        std::ceil(512.0 / platform.cores_per_node));
    cfg.compute_time_s = 120.0;
    bench.configs.push_back(cfg);
    bench.popularity = 0.0;  // scheduled explicitly, not sampled
    bench.contention_sensitivity = arng.uniform(0.8, 1.2);
    bench.noise_sensitivity = arng.uniform(0.8, 1.2);
    bench.introduced_at = 0.0;
    apps.push_back(std::move(bench));
  }

  const auto n_novel = static_cast<std::size_t>(
      static_cast<double>(params.n_apps) * params.novel_app_frac);
  for (std::size_t i = 1; i < params.n_apps; ++i) {
    Application app;
    app.app_id = i;
    app.name = "app" + std::to_string(i);
    util::Rng arng = rng.fork(2000 + i);
    const bool novel = i >= params.n_apps - n_novel;
    const double shift = novel ? params.novel_shift : 0.0;
    const auto arch = static_cast<Archetype>(
        arng.uniform_int(0, static_cast<int>(Archetype::kCount) - 1));
    const IoSignature base = random_signature(arng, arch, shift, platform);
    const auto n_configs = static_cast<std::size_t>(arng.uniform_int(
        static_cast<std::int64_t>(params.min_configs_per_app),
        static_cast<std::int64_t>(params.max_configs_per_app)));
    for (std::size_t c = 0; c < n_configs; ++c) {
      app.configs.push_back(derive_config(arng, base, c, platform));
    }
    // Zipf-like popularity by rank. Novel applications draw an effective
    // rank near the head of the distribution: a newly adopted code is run
    // heavily once it appears, which is what makes post-deployment error
    // spikes visible (Fig. 1c).
    const double rank =
        novel ? arng.uniform(3.0, static_cast<double>(params.n_apps) / 3.0)
              : static_cast<double>(i);
    app.popularity = 1.0 / std::pow(rank, params.popularity_zipf_s);
    app.contention_sensitivity = arng.lognormal(0.0, 0.45);
    app.noise_sensitivity = arng.lognormal(0.0, 0.35);
    app.introduced_at =
        novel ? arng.uniform(params.novel_after, params.horizon) : 0.0;
    apps.push_back(std::move(app));
  }
  return apps;
}

}  // namespace iotax::sim
