#include "src/sim/simulator.hpp"

#include <cmath>
#include <stdexcept>
#include <unordered_map>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/sim/lmt_gen.hpp"
#include "src/telemetry/counters.hpp"

namespace iotax::sim {

void SimConfig::validate() const {
  platform.validate();
  if (train_cutoff_frac <= 0.0 || train_cutoff_frac >= 1.0) {
    throw std::invalid_argument("SimConfig: train_cutoff_frac not in (0,1)");
  }
  if (workload.horizon != weather.horizon ||
      workload.horizon != catalog.horizon) {
    throw std::invalid_argument(
        "SimConfig: workload/weather/catalog horizons must agree");
  }
  if (catalog_seed != 0) catalog_platform.validate();
}

SimulationResult simulate(const SimConfig& config) {
  config.validate();
  IOTAX_TRACE_SPAN("sim.simulate");
  const std::int64_t sim_t0 = obs::now_ns_if_enabled();
  SimulationResult out;
  out.config = config;
  out.train_cutoff_time = config.workload.horizon * config.train_cutoff_frac;

  util::Rng root(config.seed);
  util::Rng catalog_rng =
      config.catalog_seed != 0 ? util::Rng(config.catalog_seed) : root.fork(1);
  util::Rng workload_rng = root.fork(2);
  util::Rng weather_rng = root.fork(3);
  util::Rng lmt_rng = root.fork(4);

  // 1. Application population (novel apps appear after the cutoff).
  CatalogParams cat = config.catalog;
  cat.novel_after = out.train_cutoff_time;
  {
    IOTAX_TRACE_SPAN("sim.catalog");
    const PlatformConfig& cat_platform =
        config.catalog_seed != 0 ? config.catalog_platform : config.platform;
    out.catalog = generate_catalog(cat, cat_platform, catalog_rng);
  }
  IOTAX_OBS_COUNT("sim.apps", out.catalog.size());

  // 2. Schedule.
  const auto jobs = [&] {
    IOTAX_TRACE_SPAN("sim.schedule");
    auto scheduled = generate_workload(config.workload, out.catalog,
                                       config.platform, workload_rng);
    obs::span_arg("jobs", static_cast<double>(scheduled.size()));
    return scheduled;
  }();

  // 3. Global weather and aggregate load.
  obs::SpanGuard weather_span("sim.weather_load");
  out.weather = std::make_shared<GlobalWeather>(config.weather, weather_rng);

  // Global (fleet-average) load drives the LMT telemetry; the per-OST
  // view drives contention, because a job only feels the neighbours that
  // share its stripe targets.
  LoadTimeline load(config.workload.horizon, 900.0);
  OstLoadTimeline ost_load(config.platform.n_ost, config.workload.horizon,
                           3600.0,
                           config.platform.peak_bandwidth_mib /
                               static_cast<double>(config.platform.n_ost));
  for (const auto& j : jobs) {
    const double demand =
        j.config.signature.total_bytes() / 1048576.0 / j.duration;
    load.add_demand(j.start_time, j.duration, demand,
                    config.platform.peak_bandwidth_mib);
    ost_load.add_demand(j.stripes, j.start_time, j.duration, demand);
  }
  {
    // Background demand: a fleet-level OU walk with a diurnal cycle (see
    // SimConfig) plus an independent slow multiplier per OST — the file
    // layout of the thousands of small jobs below the dataset's 1 GiB
    // cut never spreads evenly over the targets.
    util::Rng bg_rng = root.fork(5);
    const auto& bg = config.background;
    const std::uint32_t n_ost = config.platform.n_ost;
    // Per-OST multipliers follow independent OU walks in log space.
    std::vector<double> ost_log_mult(n_ost, 0.0);
    for (auto& m : ost_log_mult) m = bg_rng.normal(0.0, bg.ost_spread_sigma);

    std::vector<double> frac(load.bins());
    std::vector<double> ost_frac(n_ost);
    double x = bg.mean_frac;
    double next_step = 0.0;
    std::size_t ost_bin = 0;
    double next_ost_fill = 0.0;
    for (std::size_t b = 0; b < frac.size(); ++b) {
      const double t = static_cast<double>(b) * load.bin_seconds();
      if (t >= next_step) {
        x += bg.reversion * (bg.mean_frac - x) +
             bg_rng.normal(0.0, bg.walk_sigma);
        x = std::max(x, bg.min_frac);
        for (auto& m : ost_log_mult) {
          m += 0.2 * (0.0 - m) + bg_rng.normal(0.0, bg.ost_spread_sigma / 3.0);
        }
        next_step += bg.step_seconds;
      }
      const double diurnal =
          1.0 + bg.diurnal_amplitude * std::sin(2.0 * M_PI * t / 86400.0);
      frac[b] = std::max(0.0, x * diurnal);
      // Fill the coarser per-OST bins as their windows begin.
      while (next_ost_fill <= t && ost_bin < ost_load.bins()) {
        double mean_mult = 0.0;
        for (const double m : ost_log_mult) mean_mult += std::exp(m);
        mean_mult /= static_cast<double>(n_ost);
        for (std::uint32_t o = 0; o < n_ost; ++o) {
          // Normalise so the fleet-average background stays frac[b].
          ost_frac[o] = frac[b] * std::exp(ost_log_mult[o]) / mean_mult;
        }
        ost_load.add_background_bin(ost_bin, ost_frac);
        ++ost_bin;
        next_ost_fill += ost_load.bin_seconds();
      }
    }
    load.add_background(frac);
  }
  weather_span.end();

  // App lookup by id for sensitivities.
  std::unordered_map<std::uint64_t, const Application*> app_by_id;
  for (const auto& app : out.catalog) app_by_id[app.app_id] = &app;

  // 4. Per-job throughput decomposition and telemetry records.
  obs::SpanGuard records_span("sim.job_records");
  out.records.reserve(jobs.size());
  for (const auto& j : jobs) {
    const Application& app = *app_by_id.at(j.app_id);
    const double t_end = j.start_time + j.duration;

    const double log_fa =
        ideal_log_throughput(j.config.signature, config.platform);
    const double log_fg = out.weather->log_offset(0.5 * (j.start_time + t_end));

    // Contention is what this job's own stripe targets see from others:
    // per-stripe-OST fraction of the job's own demand is subtracted out.
    const double own_per_ost_frac =
        j.config.signature.total_bytes() / 1048576.0 / j.duration /
        static_cast<double>(j.stripes.count) /
        (config.platform.peak_bandwidth_mib /
         static_cast<double>(config.platform.n_ost));
    const double load_others = std::max(
        0.0, ost_load.mean_load(j.stripes, j.start_time, t_end) -
                 own_per_ost_frac);
    const double log_fl = contention_log_impact(
        load_others, app.contention_sensitivity, j.placement_spread,
        config.platform);
    // Per-job stream keyed by job id, so re-simulating is reproducible
    // and concurrent duplicates still draw independently.
    util::Rng noise_rng = root.fork(0x5eed0000ULL + j.job_id);
    const double log_fn = noise_rng.normal(
        0.0, config.platform.noise_sigma_log10 * app.noise_sensitivity);

    const double log_phi = log_fa + log_fg + log_fl + log_fn;

    telemetry::JobLogRecord rec;
    rec.job_id = j.job_id;
    rec.app_id = j.app_id;
    rec.config_id = j.config_uid;
    rec.n_procs = j.config.signature.n_procs;
    rec.nodes = j.config.nodes;
    rec.start_time = j.start_time;
    rec.end_time = t_end;
    rec.placement_spread = j.placement_spread;
    rec.agg_perf_mib = std::pow(10.0, log_phi);
    rec.posix = telemetry::compute_posix_counters(j.config.signature);
    rec.mpiio = telemetry::compute_mpiio_counters(j.config.signature);
    out.records.push_back(std::move(rec));

    JobTruth truth;
    truth.log_fa = log_fa;
    truth.log_fg = log_fg;
    truth.log_fl = log_fl;
    truth.log_fn = log_fn;
    truth.novel_app = app.introduced_at > out.train_cutoff_time;
    out.truth.emplace(j.job_id, truth);
  }
  records_span.end();
  IOTAX_OBS_COUNT("sim.jobs", out.records.size());

  // 5. Storage telemetry (only where the site collects it).
  if (config.platform.lmt_enabled) {
    IOTAX_TRACE_SPAN("sim.lmt");
    out.lmt = generate_lmt_timeline(load, *out.weather, config.platform,
                                    config.workload.horizon, lmt_rng);
  }

  // 6. Joined dataset with ground truth.
  {
    IOTAX_TRACE_SPAN("sim.dataset");
    out.dataset = build_dataset(
        out.records, config.platform.lmt_enabled ? &out.lmt : nullptr,
        config.name, &out.truth);
    out.dataset.validate();
  }
  if (sim_t0 != 0) {
    const double secs =
        static_cast<double>(obs::now_ns_if_enabled() - sim_t0) / 1e9;
    if (secs > 0.0) {
      IOTAX_OBS_GAUGE("sim.jobs_per_sec",
                      static_cast<double>(out.records.size()) / secs);
    }
  }
  return out;
}

}  // namespace iotax::sim
