// Static description of the simulated HPC platform (compute + Lustre-like
// storage). Values are loosely modelled on ALCF Theta and NERSC Cori but
// only the *structure* matters for the taxonomy experiments.
#pragma once

#include <cstdint>
#include <string>

namespace iotax::sim {

struct PlatformConfig {
  std::string name = "generic";
  std::uint32_t n_nodes = 4096;
  std::uint32_t cores_per_node = 64;
  std::uint32_t n_oss = 28;      // object storage servers
  std::uint32_t n_ost = 56;      // object storage targets
  std::uint32_t n_mds = 1;       // metadata servers

  /// Aggregate filesystem peak bandwidth (MiB/s).
  double peak_bandwidth_mib = 700000.0;
  /// Single-process achievable bandwidth ceiling (MiB/s).
  double per_proc_bandwidth_mib = 1200.0;

  /// Standard deviation of inherent multiplicative I/O noise, in log10
  /// units (log10(1.0571) ~= 0.024 reproduces Theta's +-5.71%).
  double noise_sigma_log10 = 0.024;
  /// How strongly concurrent load degrades a job's throughput.
  double contention_strength = 0.22;
  /// Whether the site runs LMT collection (Cori yes, Theta no).
  bool lmt_enabled = false;
  /// LMT sampling cadence in seconds (paper: 5 s; we default coarser so a
  /// multi-year timeline stays in memory; see DESIGN.md).
  double lmt_period_s = 300.0;

  void validate() const;
};

/// Platform presets. Numbers follow the public system specs roughly:
/// Theta: 4392 KNL nodes, Lustre ~200 GB/s, no LMT collection.
PlatformConfig theta_platform();
/// Cori: 9688 KNL + 2388 Haswell nodes, ~700 GB/s scratch, LMT enabled.
PlatformConfig cori_platform();
/// Burst-buffer-heavy system (DataWarp-style): a high-peak absorbing
/// tier in front of the filesystem — huge aggregate bandwidth, weak
/// contention coupling, but noisy per-job behaviour from buffer
/// allocation variance. One end of the cross-cluster transfer pair.
PlatformConfig bb_platform();
/// All-flash filesystem: modest node count, high per-process bandwidth,
/// very low noise and contention. The other transfer-pair extreme.
PlatformConfig flash_platform();

}  // namespace iotax::sim
