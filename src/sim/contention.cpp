#include "src/sim/contention.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::sim {

LoadTimeline::LoadTimeline(double horizon, double bin_seconds)
    : horizon_(horizon), bin_s_(bin_seconds) {
  if (horizon <= 0.0 || bin_seconds <= 0.0) {
    throw std::invalid_argument("LoadTimeline: non-positive horizon/bin");
  }
  bins_.assign(static_cast<std::size_t>(std::ceil(horizon / bin_seconds)) + 1,
               0.0);
}

std::size_t LoadTimeline::bin_index(double t) const {
  const double clamped = std::clamp(t, 0.0, horizon_);
  return std::min(static_cast<std::size_t>(clamped / bin_s_),
                  bins_.size() - 1);
}

void LoadTimeline::add_demand(double start, double duration, double demand_mib,
                              double peak_mib) {
  if (duration <= 0.0 || demand_mib <= 0.0) return;
  if (peak_mib <= 0.0) {
    throw std::invalid_argument("LoadTimeline: non-positive peak");
  }
  const double frac = demand_mib / peak_mib;
  const std::size_t b0 = bin_index(start);
  const std::size_t b1 = bin_index(start + duration);
  for (std::size_t b = b0; b <= b1; ++b) bins_[b] += frac;
}

void LoadTimeline::add_background(std::span<const double> per_bin_frac) {
  if (per_bin_frac.size() != bins_.size()) {
    throw std::invalid_argument("LoadTimeline: background bin count mismatch");
  }
  for (std::size_t b = 0; b < bins_.size(); ++b) {
    if (per_bin_frac[b] < 0.0) {
      throw std::invalid_argument("LoadTimeline: negative background demand");
    }
    bins_[b] += per_bin_frac[b];
  }
}

double LoadTimeline::load_at(double t) const { return bins_[bin_index(t)]; }

double LoadTimeline::mean_load(double start, double end) const {
  if (end < start) throw std::invalid_argument("LoadTimeline: end < start");
  const std::size_t b0 = bin_index(start);
  const std::size_t b1 = bin_index(end);
  double sum = 0.0;
  for (std::size_t b = b0; b <= b1; ++b) sum += bins_[b];
  return sum / static_cast<double>(b1 - b0 + 1);
}

double contention_log_impact(double load_others, double sensitivity,
                             double placement_spread,
                             const PlatformConfig& platform) {
  if (load_others < 0.0) load_others = 0.0;
  // Wider placements cross more network/IO paths: 0.7x..1.3x impact.
  const double placement_factor = 0.7 + 0.6 * placement_spread;
  return -platform.contention_strength * sensitivity * placement_factor *
         std::log10(1.0 + load_others);
}

}  // namespace iotax::sim
