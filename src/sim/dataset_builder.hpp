// Assemble the per-job model dataset from telemetry, exactly as a site
// would: parse the Darshan-style job records, join the LMT window
// aggregates by job time span, and attach scheduler features.
#pragma once

#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/telemetry/lmt.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::sim {

/// Ground-truth throughput decomposition for one job (simulator output);
/// absent for datasets built from logs alone.
struct JobTruth {
  double log_fa = 0.0;
  double log_fg = 0.0;
  double log_fl = 0.0;
  double log_fn = 0.0;
  bool novel_app = false;
};

using TruthMap = std::unordered_map<std::uint64_t, JobTruth>;

/// Build a Dataset from job log records. Feature columns: 48 POSIX +
/// 48 MPI-IO + 5 Cobalt, plus 37 LMT aggregates when `lmt` is non-null
/// (i.e. the site collects storage telemetry).
///
/// When `truth` is provided, each job's ground-truth decomposition is
/// stored in the metadata (enabling litmus-test validation); otherwise
/// the full measured log-throughput is attributed to log_fa so the
/// dataset still satisfies Dataset::validate().
data::Dataset build_dataset(const std::vector<telemetry::JobLogRecord>& records,
                            const telemetry::LmtTimeline* lmt,
                            const std::string& system_name,
                            const TruthMap* truth = nullptr);

/// How the ingest reacts to a defective record:
///   kStrict  — throw IngestError at the first violation (the legacy
///              build_dataset behaviour, now with reason codes).
///   kLenient — quarantine the record (drop it, count it with a reason
///              code) and keep going.
///   kRepair  — fix what is fixable in place (swap inverted timestamps,
///              zero non-finite counters, clamp negative counters) and
///              quarantine only what is not (bad throughput, duplicate
///              job ids, truth violations).
enum class IngestMode { kStrict, kLenient, kRepair };

/// Thrown by strict-mode ingest; carries the reason code of the first
/// violation so CLI error paths can print it.
class IngestError : public std::invalid_argument {
 public:
  IngestError(util::Reason reason, const std::string& what)
      : std::invalid_argument(what), reason_(reason) {}
  util::Reason reason() const { return reason_; }

 private:
  util::Reason reason_;
};

struct IngestResult {
  data::Dataset dataset;
  util::QuarantineReport quarantine;
  /// Input-record index of each dataset row (rows drop out of order only
  /// through quarantine, never silently).
  std::vector<std::size_t> kept_records;
};

/// Corruption-tolerant dataset assembly. Every accepted row satisfies
/// Dataset::validate(); everything else is quarantined with a reason
/// code, byte-exact against fault-injection ground truth. Publishes
/// `ingest.records`, `ingest.quarantined` and `ingest.repaired` obs
/// counters when observability is on.
IngestResult build_dataset_ingest(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name,
    const TruthMap* truth, IngestMode mode);

/// Names of the feature columns a built dataset contains, in order.
std::vector<std::string> dataset_feature_names(bool with_lmt);

/// One input archive of a sharded ingest (text or binary job-log format).
struct IngestShard {
  std::string path;
  bool binary = false;
};

/// Counts and global bookkeeping of a sharded ingest pass.
struct ShardedIngestSummary {
  util::QuarantineReport quarantine;
  /// Global parsed-record index (shard-order offsets applied) of every
  /// row that was emitted, in emit order.
  std::vector<std::size_t> kept_records;
  std::size_t total_records = 0;  // parsed records across all shards
  std::size_t repaired = 0;
};

/// Parallel sharded ingest: every archive is parsed and per-record
/// checked/repaired on the thread pool, then merged serially in shard
/// order — the duplicate-job-id check and the quarantine tallies run in
/// the merge, so counts are exact and identical to feeding the
/// concatenated record stream through build_dataset_ingest, at any
/// IOTAX_THREADS. `emit` receives one Dataset chunk per shard (its
/// surviving rows, in record order) and never sees more than a wave of
/// shards materialized at once, so a caller streaming into a StoreWriter
/// packs N archives with per-wave memory. Parse-level corruption is
/// folded into the same quarantine report (entry record indices stay
/// shard-local; counts are exact). Throws std::runtime_error on an
/// unreadable archive and IngestError in strict mode, exactly like the
/// sequential path.
ShardedIngestSummary ingest_shards(
    const std::vector<IngestShard>& shards, const telemetry::LmtTimeline* lmt,
    const std::string& system_name, const TruthMap* truth, IngestMode mode,
    const std::function<void(data::Dataset&&)>& emit);

/// Sharded ingest materializing one concatenated Dataset (convenience
/// wrapper over ingest_shards for callers that want the in-RAM result).
IngestResult build_dataset_ingest_sharded(const std::vector<IngestShard>& shards,
                                          const telemetry::LmtTimeline* lmt,
                                          const std::string& system_name,
                                          const TruthMap* truth,
                                          IngestMode mode);

}  // namespace iotax::sim
