// Assemble the per-job model dataset from telemetry, exactly as a site
// would: parse the Darshan-style job records, join the LMT window
// aggregates by job time span, and attach scheduler features.
#pragma once

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/telemetry/lmt.hpp"

namespace iotax::sim {

/// Ground-truth throughput decomposition for one job (simulator output);
/// absent for datasets built from logs alone.
struct JobTruth {
  double log_fa = 0.0;
  double log_fg = 0.0;
  double log_fl = 0.0;
  double log_fn = 0.0;
  bool novel_app = false;
};

using TruthMap = std::unordered_map<std::uint64_t, JobTruth>;

/// Build a Dataset from job log records. Feature columns: 48 POSIX +
/// 48 MPI-IO + 5 Cobalt, plus 37 LMT aggregates when `lmt` is non-null
/// (i.e. the site collects storage telemetry).
///
/// When `truth` is provided, each job's ground-truth decomposition is
/// stored in the metadata (enabling litmus-test validation); otherwise
/// the full measured log-throughput is attributed to log_fa so the
/// dataset still satisfies Dataset::validate().
data::Dataset build_dataset(const std::vector<telemetry::JobLogRecord>& records,
                            const telemetry::LmtTimeline* lmt,
                            const std::string& system_name,
                            const TruthMap* truth = nullptr);

/// Names of the feature columns a built dataset contains, in order.
std::vector<std::string> dataset_feature_names(bool with_lmt);

}  // namespace iotax::sim
