// The synthetic application population.
//
// Each application owns a family of run configurations; a configuration
// fixes the observable IoSignature (and therefore the Darshan counters),
// so repeated runs of one configuration form a "duplicate set" in the
// paper's sense (§VI.A). Applications also carry *unobservable* traits —
// contention sensitivity and noise sensitivity — which produce the
// per-application spread differences of Fig. 1(b).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/platform.hpp"
#include "src/telemetry/io_signature.hpp"
#include "src/util/rng.hpp"

namespace iotax::sim {

struct AppConfig {
  std::uint64_t config_id = 0;
  telemetry::IoSignature signature;
  std::uint32_t nodes = 1;
  /// Nominal wall time of the non-I/O portion of a run (seconds).
  double compute_time_s = 600.0;
};

struct Application {
  std::uint64_t app_id = 0;
  std::string name;
  std::vector<AppConfig> configs;
  /// Relative probability of being selected by the workload generator.
  double popularity = 1.0;
  /// Multiplier on the platform contention impact (Fig. 1b: some apps are
  /// far more sensitive to their neighbours than others). Unobservable.
  double contention_sensitivity = 1.0;
  /// Multiplier on the platform inherent-noise sigma. Unobservable.
  double noise_sensitivity = 1.0;
  /// Simulation time at which the application first exists; jobs of this
  /// app never start earlier. Apps introduced after the train cutoff are
  /// the ground-truth out-of-distribution population (§VIII).
  double introduced_at = 0.0;
};

/// Idealized application throughput f_a(j) in log10(MiB/s): the paper's
/// Eq. 3 first component — the job alone on a healthy, static system.
/// Deterministic in (signature, platform); smooth but nonlinear so that
/// models must genuinely learn I/O behaviour.
double ideal_log_throughput(const telemetry::IoSignature& sig,
                            const PlatformConfig& platform);

struct CatalogParams {
  std::size_t n_apps = 120;
  std::size_t min_configs_per_app = 1;
  std::size_t max_configs_per_app = 6;
  /// Zipf exponent of application popularity (heavy-tailed, like real
  /// workloads where a few apps dominate the job mix).
  double popularity_zipf_s = 1.4;
  /// Fraction of apps introduced after `novel_after` (the OoD population).
  double novel_app_frac = 0.08;
  /// Time after which novel apps may be introduced (seconds).
  double novel_after = 0.0;
  /// End of the simulated period (seconds).
  double horizon = 86400.0 * 365.0;
  /// Novel apps draw their signatures from a shifted distribution, making
  /// them genuinely out-of-distribution rather than merely unseen.
  double novel_shift = 1.0;
};

/// Generate a deterministic application catalog. The first application is
/// always the "iobench" system benchmark (an IOR stand-in) with a single
/// configuration and very high popularity, giving the dataset at least
/// one very large duplicate set, as on real systems (§VI.A).
std::vector<Application> generate_catalog(const CatalogParams& params,
                                          const PlatformConfig& platform,
                                          util::Rng& rng);

}  // namespace iotax::sim
