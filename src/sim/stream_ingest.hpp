// Streaming ingest: tail a growing darshan-style job-log archive and
// feed complete records through the corruption-tolerant quarantine
// pipeline, incrementally. This is the data plane of the online loop —
// `iotax monitor` polls a LogTailer against the live archive, scores
// the new jobs, and attributes windowed error to taxonomy classes.
//
// A poll never re-reads consumed bytes: the tailer remembers its byte
// offset into the file and only parses what was appended since. Because
// writers append whole records but the filesystem exposes partial
// writes, each poll splits the new bytes at the last complete record
// boundary ("# end_of_record\n"); the complete prefix is parsed
// leniently (per-record corruption is quarantined with reason codes,
// exactly like offline ingest) and the partial tail stays buffered for
// the next poll. Every record in the format begins with its own version
// line, so a chunk starting at a record boundary parses standalone.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/dataset_builder.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::sim {

class LogTailer {
 public:
  /// Tail `path`. The file may not exist yet; poll() treats a missing
  /// file as "nothing appended" so a monitor can start before its
  /// producer.
  explicit LogTailer(std::string path);

  /// Read bytes appended since the last poll and return the records
  /// completed by them (empty when nothing new). Corrupt records are
  /// dropped and counted in quarantine() with reason codes; bytes of an
  /// incomplete final record stay buffered until a later append
  /// finishes them.
  std::vector<telemetry::JobLogRecord> poll();

  /// Cumulative quarantine across all polls.
  const util::QuarantineReport& quarantine() const { return quarantine_; }

  /// Bytes consumed from the file so far (= the resume offset).
  std::uint64_t bytes_read() const { return offset_; }
  /// Bytes buffered awaiting a record boundary.
  std::size_t pending_bytes() const { return pending_.size(); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
  std::uint64_t offset_ = 0;
  std::string pending_;
  util::QuarantineReport quarantine_;
};

/// One incremental step of streaming dataset assembly: the rows built
/// from a poll's records plus the ingest-stage quarantine for them.
struct StreamIngestStep {
  data::Dataset dataset;                  // rows for this step only
  util::QuarantineReport quarantine;      // ingest-stage defects
  std::vector<std::size_t> kept_records;  // indices into this step's input
};

/// Run one batch of tailed records through build_dataset_ingest
/// (lenient mode — a live stream never throws), producing validated
/// rows and quarantine counts. `lmt` may be null, matching offline
/// ingest when the site collects no storage telemetry.
StreamIngestStep ingest_stream_records(
    const std::vector<telemetry::JobLogRecord>& records,
    const telemetry::LmtTimeline* lmt, const std::string& system_name);

}  // namespace iotax::sim
