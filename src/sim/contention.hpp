// Aggregate I/O load over time and the per-job contention impact ζ_l(t,j).
//
// Unlike the global weather, contention is job-specific: it depends on
// what else runs while the job runs, how the job was placed, and how
// sensitive its application is to neighbours (§IV "Contention errors").
#pragma once

#include <span>
#include <vector>

#include "src/sim/platform.hpp"
#include "src/sim/workload.hpp"

namespace iotax::sim {

/// Binned timeline of aggregate bandwidth demand as a fraction of the
/// filesystem peak. Demand can exceed 1.0 (overcommit).
class LoadTimeline {
 public:
  LoadTimeline(double horizon, double bin_seconds);

  /// Add a job's demand (MiB/s) over [start, start+duration).
  void add_demand(double start, double duration, double demand_mib,
                  double peak_mib);

  /// Add per-bin background demand fractions (size must equal bins()).
  /// Models the mass of small jobs that production systems run but that
  /// the >=1 GiB study datasets exclude (§V): they dominate the storage
  /// servers' aggregate rates and contention.
  void add_background(std::span<const double> per_bin_frac);

  /// Demand fraction at time t (clamped to the timeline).
  double load_at(double t) const;

  /// Mean demand fraction over [start, end].
  double mean_load(double start, double end) const;

  double bin_seconds() const { return bin_s_; }
  std::size_t bins() const { return bins_.size(); }

 private:
  double horizon_;
  double bin_s_;
  std::vector<double> bins_;

  std::size_t bin_index(double t) const;
};

/// ζ_l for one job, in log10 units (<= 0): the throughput impact of
/// sharing the system. `load_others` is the mean demand fraction seen by
/// this job's *own OST stripes* during its run (per-OST placement is
/// what makes ζ_l job-specific and practically unobservable — a model
/// never learns which neighbours shared its servers, §IX),
/// `sensitivity` the application's contention sensitivity, and
/// `placement_spread` the scheduler allocation spread from the Cobalt
/// record (wider allocations cross more switches).
double contention_log_impact(double load_others, double sensitivity,
                             double placement_spread,
                             const PlatformConfig& platform);

}  // namespace iotax::sim
