// Binary-classification metrics for the burst-prediction workload.
//
// The regression metrics in ml/metrics.hpp speak log10 ratios; burst
// prediction ("will the next telemetry window exceed the bandwidth
// threshold?") needs the classification vocabulary instead: confusion
// counts, accuracy/precision/recall/F1 at a decision threshold, and
// threshold-free ranking quality via ROC AUC. Labels are doubles so the
// metrics consume model output (Dataset targets, Regressor::predict)
// directly, but every label must be exactly 0.0 or 1.0.
#pragma once

#include <cstddef>
#include <span>

namespace iotax::stats {

/// 2x2 confusion counts for binary labels (positive class = 1).
struct ConfusionCounts {
  std::size_t tp = 0;
  std::size_t fp = 0;
  std::size_t tn = 0;
  std::size_t fn = 0;

  std::size_t total() const { return tp + fp + tn + fn; }
};

/// Count the confusion cells. Both spans must be the same nonzero size
/// and contain only exact 0.0 / 1.0 values; anything else throws
/// std::invalid_argument.
ConfusionCounts confusion_counts(std::span<const double> y_true,
                                 std::span<const double> y_pred);

/// (tp + tn) / total.
double accuracy(const ConfusionCounts& c);
/// tp / (tp + fp); defined as 0 when the model predicts no positives.
double precision(const ConfusionCounts& c);
/// tp / (tp + fn); defined as 0 when there are no true positives.
double recall(const ConfusionCounts& c);
/// Harmonic mean of precision and recall; 0 when both are 0.
double f1_score(const ConfusionCounts& c);

/// Span convenience overloads of the four ratio metrics.
double accuracy(std::span<const double> y_true, std::span<const double> y_pred);
double precision(std::span<const double> y_true,
                 std::span<const double> y_pred);
double recall(std::span<const double> y_true, std::span<const double> y_pred);
double f1_score(std::span<const double> y_true, std::span<const double> y_pred);

/// Area under the ROC curve from real-valued scores (higher score =
/// more positive), computed as the Mann-Whitney rank statistic with
/// average ranks for tied scores — deterministic regardless of input
/// order. Requires at least one positive and one negative label; throws
/// std::invalid_argument otherwise (AUC is undefined for one class).
double roc_auc(std::span<const double> y_true, std::span<const double> scores);

}  // namespace iotax::stats
