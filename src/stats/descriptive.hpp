// Descriptive statistics used throughout the litmus tests.
//
// The paper reports medians because the error distributions are heavy
// tailed (SC'22 §V), and applies Bessel's correction when estimating
// duplicate-set variance from small sets (§VI.A, §IX.A) — both live here.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iotax::stats {

double sum(std::span<const double> xs);
double mean(std::span<const double> xs);

/// Sample variance with Bessel's correction (divides by n-1).
/// Requires xs.size() >= 2.
double variance(std::span<const double> xs);

/// Population variance (divides by n). Requires xs.size() >= 1.
double variance_population(std::span<const double> xs);

double stddev(std::span<const double> xs);

double min(std::span<const double> xs);
double max(std::span<const double> xs);

/// Quantile with linear interpolation between order statistics
/// (type-7, the numpy default). q in [0, 1].
double quantile(std::span<const double> xs, double q);

double median(std::span<const double> xs);

/// Median absolute deviation (around the median), unscaled.
double mad(std::span<const double> xs);

/// Weighted mean; weights must be non-negative with positive sum.
double weighted_mean(std::span<const double> xs,
                     std::span<const double> weights);

/// Weighted quantile (q in [0,1]) over non-negative weights.
double weighted_quantile(std::span<const double> xs,
                         std::span<const double> weights, double q);

/// Excess kurtosis (Fisher), sample estimator. Requires n >= 4.
double excess_kurtosis(std::span<const double> xs);

/// Pearson correlation; requires equal sizes >= 2.
double correlation(std::span<const double> xs, std::span<const double> ys);

/// One-pass summary of a sample.
struct Summary {
  std::size_t n = 0;
  double mean = 0.0;
  double stddev = 0.0;  // Bessel-corrected; 0 if n < 2
  double min = 0.0;
  double max = 0.0;
  double median = 0.0;
  double p05 = 0.0;
  double p25 = 0.0;
  double p75 = 0.0;
  double p95 = 0.0;
};

Summary summarize(std::span<const double> xs);

}  // namespace iotax::stats
