#include "src/stats/fitting.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace iotax::stats {

NormalFit fit_normal(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("fit_normal: need n >= 2");
  NormalFit fit;
  fit.mean = mean(xs);
  fit.stddev = std::sqrt(std::max(variance_population(xs), 1e-300));
  fit.log_likelihood = log_likelihood(Normal(fit.mean, fit.stddev), xs);
  return fit;
}

namespace {

// Exact MLE of (loc, scale) for fixed df via the EM weights
// w_i = (df+1) / (df + z_i^2); converges for any start.
void fit_loc_scale_for_df(std::span<const double> xs, double df, double* loc,
                          double* scale) {
  double m = mean(xs);
  double s2 = std::max(variance_population(xs), 1e-12);
  for (int iter = 0; iter < 200; ++iter) {
    double wsum = 0.0;
    double wx = 0.0;
    for (double x : xs) {
      const double z2 = (x - m) * (x - m) / s2;
      const double w = (df + 1.0) / (df + z2);
      wsum += w;
      wx += w * x;
    }
    const double m_new = wx / wsum;
    double s2_new = 0.0;
    for (double x : xs) {
      const double z2 = (x - m_new) * (x - m_new) / s2;
      const double w = (df + 1.0) / (df + z2);
      s2_new += w * (x - m_new) * (x - m_new);
    }
    s2_new /= static_cast<double>(xs.size());
    s2_new = std::max(s2_new, 1e-300);
    const bool converged = std::fabs(m_new - m) < 1e-10 * (1.0 + std::fabs(m)) &&
                           std::fabs(s2_new - s2) < 1e-10 * (1.0 + s2);
    m = m_new;
    s2 = s2_new;
    if (converged) break;
  }
  *loc = m;
  *scale = std::sqrt(s2);
}

double profile_ll(std::span<const double> xs, double df) {
  double loc = 0.0;
  double scale = 1.0;
  fit_loc_scale_for_df(xs, df, &loc, &scale);
  return log_likelihood(StudentT(df, loc, scale), xs);
}

}  // namespace

StudentTFit fit_student_t(std::span<const double> xs, double df_min,
                          double df_max) {
  if (xs.size() < 3) throw std::invalid_argument("fit_student_t: need n >= 3");
  // Golden-section search on log(df): the profile likelihood is smooth and
  // unimodal in practice; searching log-space handles the wide df range.
  const double phi = (std::sqrt(5.0) - 1.0) / 2.0;
  double a = std::log(df_min);
  double b = std::log(df_max);
  double c = b - phi * (b - a);
  double d = a + phi * (b - a);
  double fc = profile_ll(xs, std::exp(c));
  double fd = profile_ll(xs, std::exp(d));
  for (int i = 0; i < 60; ++i) {
    if (fc > fd) {
      b = d;
      d = c;
      fd = fc;
      c = b - phi * (b - a);
      fc = profile_ll(xs, std::exp(c));
    } else {
      a = c;
      c = d;
      fc = fd;
      d = a + phi * (b - a);
      fd = profile_ll(xs, std::exp(d));
    }
    if (b - a < 1e-6) break;
  }
  StudentTFit fit;
  fit.df = std::exp(0.5 * (a + b));
  fit_loc_scale_for_df(xs, fit.df, &fit.loc, &fit.scale);
  fit.log_likelihood = log_likelihood(StudentT(fit.df, fit.loc, fit.scale), xs);
  return fit;
}

double log_likelihood(const Normal& d, std::span<const double> xs) {
  double ll = 0.0;
  for (double x : xs) ll += d.log_pdf(x);
  return ll;
}

double log_likelihood(const StudentT& d, std::span<const double> xs) {
  double ll = 0.0;
  for (double x : xs) ll += d.log_pdf(x);
  return ll;
}

template <typename Dist>
double ks_statistic(const Dist& d, std::span<const double> xs) {
  if (xs.empty()) throw std::invalid_argument("ks_statistic: empty input");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  double ks = 0.0;
  for (std::size_t i = 0; i < sorted.size(); ++i) {
    const double f = d.cdf(sorted[i]);
    const double lo = static_cast<double>(i) / n;
    const double hi = static_cast<double>(i + 1) / n;
    ks = std::max({ks, std::fabs(f - lo), std::fabs(f - hi)});
  }
  return ks;
}

template double ks_statistic<Normal>(const Normal&, std::span<const double>);
template double ks_statistic<StudentT>(const StudentT&,
                                       std::span<const double>);
template double ks_statistic<LogNormal>(const LogNormal&,
                                        std::span<const double>);

double two_sample_ks(std::span<const double> a, std::span<const double> b) {
  if (a.empty() || b.empty()) {
    throw std::invalid_argument("two_sample_ks: empty input");
  }
  std::vector<double> sa(a.begin(), a.end());
  std::vector<double> sb(b.begin(), b.end());
  std::sort(sa.begin(), sa.end());
  std::sort(sb.begin(), sb.end());
  std::size_t i = 0;
  std::size_t j = 0;
  double ks = 0.0;
  const auto na = static_cast<double>(sa.size());
  const auto nb = static_cast<double>(sb.size());
  while (i < sa.size() || j < sb.size()) {
    // Step both CDFs past the next value, handling ties jointly so the
    // distance is only evaluated between, not inside, jump points.
    double v = 0.0;
    if (j >= sb.size() || (i < sa.size() && sa[i] <= sb[j])) {
      v = sa[i];
    } else {
      v = sb[j];
    }
    while (i < sa.size() && sa[i] == v) ++i;
    while (j < sb.size() && sb[j] == v) ++j;
    ks = std::max(ks, std::fabs(static_cast<double>(i) / na -
                                static_cast<double>(j) / nb));
  }
  return ks;
}

double t_vs_normal_preference(std::span<const double> xs) {
  const auto nf = fit_normal(xs);
  const auto tf = fit_student_t(xs);
  return (tf.log_likelihood - nf.log_likelihood) /
         static_cast<double>(xs.size());
}

}  // namespace iotax::stats
