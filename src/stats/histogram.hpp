// Fixed-width and log-spaced histograms; used to print the paper's
// distribution figures (Figs. 3, 4, 6) as text series.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iotax::stats {

class Histogram {
 public:
  /// Linear bins over [lo, hi); values outside are clamped into the edge
  /// bins so no sample is silently dropped.
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x);
  void add_all(std::span<const double> xs);

  std::size_t bins() const { return counts_.size(); }
  std::size_t count(std::size_t bin) const { return counts_.at(bin); }
  std::size_t total() const { return total_; }
  double bin_lo(std::size_t bin) const;
  double bin_hi(std::size_t bin) const;
  double bin_center(std::size_t bin) const;
  /// Normalised density (integrates to ~1 over [lo, hi)).
  double density(std::size_t bin) const;

  /// Render as rows "center<TAB>count<TAB>bar" for terminal output.
  std::string to_string(std::size_t bar_width = 50) const;

 private:
  double lo_;
  double hi_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

/// Log10-spaced bin edges from lo to hi (lo, hi > 0), `bins` bins.
std::vector<double> log_bin_edges(double lo, double hi, std::size_t bins);

/// Count samples into arbitrary monotone edges; out-of-range samples are
/// clamped to the first/last bin. edges.size() >= 2.
std::vector<std::size_t> bin_counts(std::span<const double> xs,
                                    std::span<const double> edges);

}  // namespace iotax::stats
