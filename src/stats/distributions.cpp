#include "src/stats/distributions.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

namespace iotax::stats {

double log_gamma(double x) { return std::lgamma(x); }

namespace {

// Continued fraction for the incomplete beta function (Numerical Recipes
// style modified Lentz algorithm).
double beta_cf(double a, double b, double x) {
  constexpr int kMaxIter = 300;
  constexpr double kEps = 3.0e-14;
  constexpr double kFpMin = 1.0e-300;

  const double qab = a + b;
  const double qap = a + 1.0;
  const double qam = a - 1.0;
  double c = 1.0;
  double d = 1.0 - qab * x / qap;
  if (std::fabs(d) < kFpMin) d = kFpMin;
  d = 1.0 / d;
  double h = d;
  for (int m = 1; m <= kMaxIter; ++m) {
    const auto m2 = 2.0 * m;
    double aa = m * (b - m) * x / ((qam + m2) * (a + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    h *= d * c;
    aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
    d = 1.0 + aa * d;
    if (std::fabs(d) < kFpMin) d = kFpMin;
    c = 1.0 + aa / c;
    if (std::fabs(c) < kFpMin) c = kFpMin;
    d = 1.0 / d;
    const double del = d * c;
    h *= del;
    if (std::fabs(del - 1.0) < kEps) break;
  }
  return h;
}

}  // namespace

double incomplete_beta(double a, double b, double x) {
  if (a <= 0.0 || b <= 0.0) {
    throw std::invalid_argument("incomplete_beta: a, b must be > 0");
  }
  if (x < 0.0 || x > 1.0) {
    throw std::invalid_argument("incomplete_beta: x not in [0,1]");
  }
  if (x == 0.0) return 0.0;
  if (x == 1.0) return 1.0;
  const double ln_front = log_gamma(a + b) - log_gamma(a) - log_gamma(b) +
                          a * std::log(x) + b * std::log(1.0 - x);
  const double front = std::exp(ln_front);
  // Use the symmetry relation to keep the continued fraction convergent.
  if (x < (a + 1.0) / (a + b + 2.0)) {
    return front * beta_cf(a, b, x) / a;
  }
  return 1.0 - front * beta_cf(b, a, 1.0 - x) / b;
}

// ---------------------------------------------------------------- Normal

Normal::Normal(double mean, double stddev) : mean_(mean), stddev_(stddev) {
  if (stddev <= 0.0) throw std::invalid_argument("Normal: stddev must be > 0");
}

double Normal::pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return std::exp(-0.5 * z * z) / (stddev_ * std::sqrt(2.0 * M_PI));
}

double Normal::log_pdf(double x) const {
  const double z = (x - mean_) / stddev_;
  return -0.5 * z * z - std::log(stddev_) - 0.5 * std::log(2.0 * M_PI);
}

double Normal::cdf(double x) const {
  const double z = (x - mean_) / (stddev_ * std::sqrt(2.0));
  return 0.5 * std::erfc(-z);
}

double Normal::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::invalid_argument("Normal::quantile: p not in [0,1]");
  }
  // Acklam's algorithm for the standard normal inverse CDF.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  double z = 0.0;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    z = (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  } else if (p <= 1.0 - p_low) {
    const double q = p - 0.5;
    const double r = q * q;
    z = (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) *
        q /
        (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  } else {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    z = -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
        ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  return mean_ + stddev_ * z;
}

// ------------------------------------------------------------- LogNormal

LogNormal::LogNormal(double mu, double sigma) : mu_(mu), sigma_(sigma) {
  if (sigma <= 0.0) throw std::invalid_argument("LogNormal: sigma must be > 0");
}

double LogNormal::pdf(double x) const {
  if (x <= 0.0) return 0.0;
  const double z = (std::log(x) - mu_) / sigma_;
  return std::exp(-0.5 * z * z) / (x * sigma_ * std::sqrt(2.0 * M_PI));
}

double LogNormal::cdf(double x) const {
  if (x <= 0.0) return 0.0;
  return Normal(mu_, sigma_).cdf(std::log(x));
}

double LogNormal::quantile(double p) const {
  return std::exp(Normal(mu_, sigma_).quantile(p));
}

double LogNormal::mean() const { return std::exp(mu_ + 0.5 * sigma_ * sigma_); }

// -------------------------------------------------------------- StudentT

StudentT::StudentT(double df, double loc, double scale)
    : df_(df), loc_(loc), scale_(scale) {
  if (df <= 0.0) throw std::invalid_argument("StudentT: df must be > 0");
  if (scale <= 0.0) throw std::invalid_argument("StudentT: scale must be > 0");
}

double StudentT::log_pdf(double x) const {
  const double z = (x - loc_) / scale_;
  return log_gamma((df_ + 1.0) / 2.0) - log_gamma(df_ / 2.0) -
         0.5 * std::log(df_ * M_PI) - std::log(scale_) -
         ((df_ + 1.0) / 2.0) * std::log1p(z * z / df_);
}

double StudentT::pdf(double x) const { return std::exp(log_pdf(x)); }

double StudentT::cdf(double x) const {
  const double z = (x - loc_) / scale_;
  const double w = df_ / (df_ + z * z);
  const double ib = incomplete_beta(df_ / 2.0, 0.5, w);
  return z >= 0.0 ? 1.0 - 0.5 * ib : 0.5 * ib;
}

double StudentT::quantile(double p) const {
  if (p <= 0.0 || p >= 1.0) {
    if (p == 0.0) return -std::numeric_limits<double>::infinity();
    if (p == 1.0) return std::numeric_limits<double>::infinity();
    throw std::invalid_argument("StudentT::quantile: p not in [0,1]");
  }
  // Bracket then bisect; the normal quantile gives a good starting width.
  const double z0 = Normal(0.0, 1.0).quantile(p);
  double lo = loc_ + scale_ * (z0 - 1.0) * 10.0 - 10.0 * scale_;
  double hi = loc_ + scale_ * (z0 + 1.0) * 10.0 + 10.0 * scale_;
  while (cdf(lo) > p) lo -= 10.0 * scale_ * (1.0 + std::fabs(lo - loc_));
  while (cdf(hi) < p) hi += 10.0 * scale_ * (1.0 + std::fabs(hi - loc_));
  for (int i = 0; i < 200; ++i) {
    const double mid = 0.5 * (lo + hi);
    if (cdf(mid) < p) {
      lo = mid;
    } else {
      hi = mid;
    }
    if (hi - lo < 1e-12 * (1.0 + std::fabs(mid))) break;
  }
  return 0.5 * (lo + hi);
}

double StudentT::variance() const {
  if (df_ <= 2.0) {
    throw std::domain_error("StudentT::variance undefined for df <= 2");
  }
  return scale_ * scale_ * df_ / (df_ - 2.0);
}

}  // namespace iotax::stats
