// Distribution fitting for the Δt≈0 duplicate analysis (§IX.A): the paper
// shows concurrent-duplicate errors follow a Student-t rather than a
// Normal because small duplicate sets bias the set-mean estimate.
#pragma once

#include <span>

#include "src/stats/distributions.hpp"

namespace iotax::stats {

struct NormalFit {
  double mean = 0.0;
  double stddev = 1.0;
  double log_likelihood = 0.0;
};

struct StudentTFit {
  double df = 1.0;
  double loc = 0.0;
  double scale = 1.0;
  double log_likelihood = 0.0;
};

/// Maximum-likelihood Normal fit (population stddev, per MLE).
NormalFit fit_normal(std::span<const double> xs);

/// Student-t fit: for each candidate df, loc/scale are estimated with an
/// EM-style iteratively reweighted scheme (exact MLE for fixed df); df is
/// then chosen by golden-section search on the profile likelihood.
StudentTFit fit_student_t(std::span<const double> xs, double df_min = 1.0,
                          double df_max = 200.0);

/// Log-likelihood of data under each distribution.
double log_likelihood(const Normal& d, std::span<const double> xs);
double log_likelihood(const StudentT& d, std::span<const double> xs);

/// One-sample Kolmogorov-Smirnov statistic against a fitted CDF.
template <typename Dist>
double ks_statistic(const Dist& d, std::span<const double> xs);

/// Likelihood-ratio preference: positive when t fits better than normal
/// per-sample (mean log-likelihood difference).
double t_vs_normal_preference(std::span<const double> xs);

/// Two-sample Kolmogorov-Smirnov statistic: max distance between the
/// empirical CDFs of a and b. Used by the drift monitor to compare error
/// distributions across time windows.
double two_sample_ks(std::span<const double> a, std::span<const double> b);

}  // namespace iotax::stats
