// Continuous distributions with pdf/cdf/quantile, used by the noise model
// and by the Δt≈0 duplicate litmus test (Normal vs Student-t fits, §IX.A).
#pragma once

namespace iotax::stats {

/// Standard math special functions we need that are not in <cmath>.
/// Regularized incomplete beta function I_x(a, b), continued-fraction
/// evaluation (Lentz). Domain: a, b > 0, x in [0, 1].
double incomplete_beta(double a, double b, double x);

/// Natural log of the gamma function (delegates to std::lgamma).
double log_gamma(double x);

class Normal {
 public:
  Normal(double mean, double stddev);

  double pdf(double x) const;
  double cdf(double x) const;
  /// Inverse CDF (Acklam's rational approximation, |rel err| < 1.2e-9).
  double quantile(double p) const;
  double log_pdf(double x) const;

  double mean() const { return mean_; }
  double stddev() const { return stddev_; }
  double variance() const { return stddev_ * stddev_; }

 private:
  double mean_;
  double stddev_;
};

class LogNormal {
 public:
  /// Parameters are the mean/stddev of the underlying normal (log-space).
  LogNormal(double mu, double sigma);

  double pdf(double x) const;
  double cdf(double x) const;
  double quantile(double p) const;

  double mu() const { return mu_; }
  double sigma() const { return sigma_; }
  /// E[X] = exp(mu + sigma^2/2).
  double mean() const;

 private:
  double mu_;
  double sigma_;
};

/// Location-scale Student-t. Standard t has loc=0, scale=1.
class StudentT {
 public:
  StudentT(double df, double loc = 0.0, double scale = 1.0);

  double pdf(double x) const;
  double cdf(double x) const;
  /// Inverse CDF by monotone bisection + Newton polish on cdf.
  double quantile(double p) const;
  double log_pdf(double x) const;

  double df() const { return df_; }
  double loc() const { return loc_; }
  double scale() const { return scale_; }
  /// Variance = scale^2 * df/(df-2) for df > 2; throws otherwise.
  double variance() const;

 private:
  double df_;
  double loc_;
  double scale_;
};

}  // namespace iotax::stats
