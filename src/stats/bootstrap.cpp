#include "src/stats/bootstrap.hpp"

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/stats/descriptive.hpp"
#include "src/util/parallel.hpp"

namespace iotax::stats {

BootstrapResult bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double level, util::Rng& rng) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty input");
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("bootstrap_ci: level must be in (0,1)");
  }
  BootstrapResult result;
  result.level = level;
  result.point = statistic(xs);

  // One serial pass over the caller's RNG yields a seed per resample;
  // each resample then draws from its own stream, so resamples can run
  // concurrently yet stay bit-identical at any IOTAX_THREADS value.
  std::vector<std::uint64_t> seeds(resamples);
  for (auto& s : seeds) s = rng.next();
  std::vector<double> stats(resamples);
  const auto n = static_cast<std::int64_t>(xs.size());
  util::parallel_for_chunks(
      resamples,
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> resample(xs.size());
        for (std::size_t r = lo; r < hi; ++r) {
          util::Rng resample_rng(seeds[r]);
          for (auto& v : resample) {
            v = xs[static_cast<std::size_t>(resample_rng.uniform_int(0, n - 1))];
          }
          stats[r] = statistic(resample);
        }
      },
      8);
  const double alpha = (1.0 - level) / 2.0;
  result.lo = quantile(stats, alpha);
  result.hi = quantile(stats, 1.0 - alpha);
  return result;
}

}  // namespace iotax::stats
