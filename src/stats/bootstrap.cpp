#include "src/stats/bootstrap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "src/stats/descriptive.hpp"

namespace iotax::stats {

BootstrapResult bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double level, util::Rng& rng) {
  if (xs.empty()) throw std::invalid_argument("bootstrap_ci: empty input");
  if (level <= 0.0 || level >= 1.0) {
    throw std::invalid_argument("bootstrap_ci: level must be in (0,1)");
  }
  BootstrapResult result;
  result.level = level;
  result.point = statistic(xs);

  std::vector<double> resample(xs.size());
  std::vector<double> stats;
  stats.reserve(resamples);
  const auto n = static_cast<std::int64_t>(xs.size());
  for (std::size_t r = 0; r < resamples; ++r) {
    for (auto& v : resample) {
      v = xs[static_cast<std::size_t>(rng.uniform_int(0, n - 1))];
    }
    stats.push_back(statistic(resample));
  }
  const double alpha = (1.0 - level) / 2.0;
  result.lo = quantile(stats, alpha);
  result.hi = quantile(stats, 1.0 - alpha);
  return result;
}

}  // namespace iotax::stats
