// Bootstrap confidence intervals for litmus-test estimates. The paper's
// bounds are single numbers; we attach percentile-bootstrap CIs so that a
// user can tell whether "tuned model ≈ bound" is within sampling noise.
#pragma once

#include <functional>
#include <span>

#include "src/util/rng.hpp"

namespace iotax::stats {

struct BootstrapResult {
  double point = 0.0;
  double lo = 0.0;   // lower CI bound
  double hi = 0.0;   // upper CI bound
  double level = 0.95;
};

/// Percentile bootstrap of an arbitrary statistic.
BootstrapResult bootstrap_ci(
    std::span<const double> xs,
    const std::function<double(std::span<const double>)>& statistic,
    std::size_t resamples, double level, util::Rng& rng);

}  // namespace iotax::stats
