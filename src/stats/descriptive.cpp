#include "src/stats/descriptive.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>

namespace iotax::stats {

namespace {
void require_nonempty(std::span<const double> xs, const char* who) {
  if (xs.empty()) {
    throw std::invalid_argument(std::string(who) + ": empty input");
  }
}
}  // namespace

double sum(std::span<const double> xs) {
  // Kahan summation: datasets mix values spanning many orders of magnitude.
  double s = 0.0;
  double c = 0.0;
  for (double x : xs) {
    const double y = x - c;
    const double t = s + y;
    c = (t - s) - y;
    s = t;
  }
  return s;
}

double mean(std::span<const double> xs) {
  require_nonempty(xs, "mean");
  return sum(xs) / static_cast<double>(xs.size());
}

double variance(std::span<const double> xs) {
  if (xs.size() < 2) throw std::invalid_argument("variance: need n >= 2");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size() - 1);
}

double variance_population(std::span<const double> xs) {
  require_nonempty(xs, "variance_population");
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return acc / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) { return std::sqrt(variance(xs)); }

double min(std::span<const double> xs) {
  require_nonempty(xs, "min");
  return *std::min_element(xs.begin(), xs.end());
}

double max(std::span<const double> xs) {
  require_nonempty(xs, "max");
  return *std::max_element(xs.begin(), xs.end());
}

double quantile(std::span<const double> xs, double q) {
  require_nonempty(xs, "quantile");
  if (q < 0.0 || q > 1.0) throw std::invalid_argument("quantile: q not in [0,1]");
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(std::floor(pos));
  const auto hi = static_cast<std::size_t>(std::ceil(pos));
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double median(std::span<const double> xs) { return quantile(xs, 0.5); }

double mad(std::span<const double> xs) {
  require_nonempty(xs, "mad");
  const double med = median(xs);
  std::vector<double> dev(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) dev[i] = std::fabs(xs[i] - med);
  return median(dev);
}

double weighted_mean(std::span<const double> xs,
                     std::span<const double> weights) {
  if (xs.size() != weights.size()) {
    throw std::invalid_argument("weighted_mean: size mismatch");
  }
  require_nonempty(xs, "weighted_mean");
  double num = 0.0;
  double den = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    if (weights[i] < 0.0) {
      throw std::invalid_argument("weighted_mean: negative weight");
    }
    num += xs[i] * weights[i];
    den += weights[i];
  }
  if (den <= 0.0) throw std::invalid_argument("weighted_mean: zero weight sum");
  return num / den;
}

double weighted_quantile(std::span<const double> xs,
                         std::span<const double> weights, double q) {
  if (xs.size() != weights.size()) {
    throw std::invalid_argument("weighted_quantile: size mismatch");
  }
  require_nonempty(xs, "weighted_quantile");
  if (q < 0.0 || q > 1.0) {
    throw std::invalid_argument("weighted_quantile: q not in [0,1]");
  }
  std::vector<std::size_t> order(xs.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&xs](std::size_t a, std::size_t b) { return xs[a] < xs[b]; });
  double total = 0.0;
  for (double w : weights) {
    if (w < 0.0) throw std::invalid_argument("weighted_quantile: negative weight");
    total += w;
  }
  if (total <= 0.0) {
    throw std::invalid_argument("weighted_quantile: zero weight sum");
  }
  double acc = 0.0;
  double last_positive = xs[order.back()];
  for (std::size_t i : order) {
    acc += weights[i];
    // Zero-weight samples carry no probability mass and are never the
    // quantile (matters at q == 0).
    if (weights[i] > 0.0) {
      last_positive = xs[i];
      if (acc >= q * total) return xs[i];
    }
  }
  return last_positive;
}

double excess_kurtosis(std::span<const double> xs) {
  const auto n = static_cast<double>(xs.size());
  if (xs.size() < 4) throw std::invalid_argument("excess_kurtosis: need n >= 4");
  const double m = mean(xs);
  double m2 = 0.0;
  double m4 = 0.0;
  for (double x : xs) {
    const double d = x - m;
    m2 += d * d;
    m4 += d * d * d * d;
  }
  m2 /= n;
  m4 /= n;
  if (m2 <= 0.0) return 0.0;
  // Sample excess kurtosis with bias correction (G2).
  const double g2 = m4 / (m2 * m2) - 3.0;
  return ((n - 1.0) / ((n - 2.0) * (n - 3.0))) * ((n + 1.0) * g2 + 6.0);
}

double correlation(std::span<const double> xs, std::span<const double> ys) {
  if (xs.size() != ys.size()) {
    throw std::invalid_argument("correlation: size mismatch");
  }
  if (xs.size() < 2) throw std::invalid_argument("correlation: need n >= 2");
  const double mx = mean(xs);
  const double my = mean(ys);
  double sxy = 0.0;
  double sxx = 0.0;
  double syy = 0.0;
  for (std::size_t i = 0; i < xs.size(); ++i) {
    const double dx = xs[i] - mx;
    const double dy = ys[i] - my;
    sxy += dx * dy;
    sxx += dx * dx;
    syy += dy * dy;
  }
  if (sxx <= 0.0 || syy <= 0.0) return 0.0;
  return sxy / std::sqrt(sxx * syy);
}

Summary summarize(std::span<const double> xs) {
  Summary s;
  if (xs.empty()) return s;
  s.n = xs.size();
  s.mean = mean(xs);
  s.stddev = xs.size() >= 2 ? stddev(xs) : 0.0;
  s.min = min(xs);
  s.max = max(xs);
  s.median = median(xs);
  s.p05 = quantile(xs, 0.05);
  s.p25 = quantile(xs, 0.25);
  s.p75 = quantile(xs, 0.75);
  s.p95 = quantile(xs, 0.95);
  return s;
}

}  // namespace iotax::stats
