#include "src/stats/classification.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

namespace iotax::stats {

namespace {

bool is_binary(double v) { return v == 0.0 || v == 1.0; }

}  // namespace

ConfusionCounts confusion_counts(std::span<const double> y_true,
                                 std::span<const double> y_pred) {
  if (y_true.empty() || y_true.size() != y_pred.size()) {
    throw std::invalid_argument("confusion_counts: size mismatch or empty");
  }
  ConfusionCounts c;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (!is_binary(y_true[i]) || !is_binary(y_pred[i])) {
      throw std::invalid_argument(
          "confusion_counts: labels must be exactly 0 or 1");
    }
    if (y_true[i] == 1.0) {
      y_pred[i] == 1.0 ? ++c.tp : ++c.fn;
    } else {
      y_pred[i] == 1.0 ? ++c.fp : ++c.tn;
    }
  }
  return c;
}

double accuracy(const ConfusionCounts& c) {
  return static_cast<double>(c.tp + c.tn) / static_cast<double>(c.total());
}

double precision(const ConfusionCounts& c) {
  const std::size_t denom = c.tp + c.fp;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.tp) / static_cast<double>(denom);
}

double recall(const ConfusionCounts& c) {
  const std::size_t denom = c.tp + c.fn;
  return denom == 0 ? 0.0
                    : static_cast<double>(c.tp) / static_cast<double>(denom);
}

double f1_score(const ConfusionCounts& c) {
  const double p = precision(c);
  const double r = recall(c);
  return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
}

double accuracy(std::span<const double> y_true,
                std::span<const double> y_pred) {
  return accuracy(confusion_counts(y_true, y_pred));
}

double precision(std::span<const double> y_true,
                 std::span<const double> y_pred) {
  return precision(confusion_counts(y_true, y_pred));
}

double recall(std::span<const double> y_true, std::span<const double> y_pred) {
  return recall(confusion_counts(y_true, y_pred));
}

double f1_score(std::span<const double> y_true,
                std::span<const double> y_pred) {
  return f1_score(confusion_counts(y_true, y_pred));
}

double roc_auc(std::span<const double> y_true, std::span<const double> scores) {
  if (y_true.empty() || y_true.size() != scores.size()) {
    throw std::invalid_argument("roc_auc: size mismatch or empty");
  }
  std::size_t n_pos = 0;
  for (std::size_t i = 0; i < y_true.size(); ++i) {
    if (!is_binary(y_true[i])) {
      throw std::invalid_argument("roc_auc: labels must be exactly 0 or 1");
    }
    if (!std::isfinite(scores[i])) {
      throw std::invalid_argument("roc_auc: non-finite score");
    }
    if (y_true[i] == 1.0) ++n_pos;
  }
  const std::size_t n = y_true.size();
  const std::size_t n_neg = n - n_pos;
  if (n_pos == 0 || n_neg == 0) {
    throw std::invalid_argument(
        "roc_auc: needs at least one positive and one negative label");
  }

  // Average-rank Mann-Whitney: sort by score, give every member of a tie
  // group the group's mean rank, and sum the positive ranks.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return scores[a] < scores[b];
  });
  double rank_sum_pos = 0.0;
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i;
    while (j < n && scores[order[j]] == scores[order[i]]) ++j;
    // 1-based ranks i+1 .. j averaged over the tie group.
    const double avg_rank = 0.5 * static_cast<double>(i + 1 + j);
    for (std::size_t k = i; k < j; ++k) {
      if (y_true[order[k]] == 1.0) rank_sum_pos += avg_rank;
    }
    i = j;
  }
  const double u = rank_sum_pos - 0.5 * static_cast<double>(n_pos) *
                                      static_cast<double>(n_pos + 1);
  return u / (static_cast<double>(n_pos) * static_cast<double>(n_neg));
}

}  // namespace iotax::stats
