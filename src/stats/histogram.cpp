#include "src/stats/histogram.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/util/str.hpp"

namespace iotax::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), counts_(bins, 0) {
  if (!(lo < hi)) throw std::invalid_argument("Histogram: lo must be < hi");
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
}

void Histogram::add(double x) {
  const double t = (x - lo_) / (hi_ - lo_);
  auto bin = static_cast<long long>(
      std::floor(t * static_cast<double>(counts_.size())));
  bin = std::clamp(bin, 0LL, static_cast<long long>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(bin)];
  ++total_;
}

void Histogram::add_all(std::span<const double> xs) {
  for (double x : xs) add(x);
}

double Histogram::bin_lo(std::size_t bin) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(bin) /
                   static_cast<double>(counts_.size());
}

double Histogram::bin_hi(std::size_t bin) const { return bin_lo(bin + 1); }

double Histogram::bin_center(std::size_t bin) const {
  return 0.5 * (bin_lo(bin) + bin_hi(bin));
}

double Histogram::density(std::size_t bin) const {
  if (total_ == 0) return 0.0;
  const double width = (hi_ - lo_) / static_cast<double>(counts_.size());
  return static_cast<double>(counts_.at(bin)) /
         (static_cast<double>(total_) * width);
}

std::string Histogram::to_string(std::size_t bar_width) const {
  std::size_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  std::string out;
  for (std::size_t b = 0; b < counts_.size(); ++b) {
    const auto len = counts_[b] * bar_width / peak;
    out += util::format_double(bin_center(b), 4);
    out += '\t';
    out += std::to_string(counts_[b]);
    out += '\t';
    out.append(len, '#');
    out += '\n';
  }
  return out;
}

std::vector<double> log_bin_edges(double lo, double hi, std::size_t bins) {
  if (lo <= 0.0 || hi <= lo) {
    throw std::invalid_argument("log_bin_edges: need 0 < lo < hi");
  }
  if (bins == 0) throw std::invalid_argument("log_bin_edges: bins must be > 0");
  std::vector<double> edges(bins + 1);
  const double llo = std::log10(lo);
  const double lhi = std::log10(hi);
  for (std::size_t i = 0; i <= bins; ++i) {
    edges[i] = std::pow(
        10.0, llo + (lhi - llo) * static_cast<double>(i) /
                        static_cast<double>(bins));
  }
  return edges;
}

std::vector<std::size_t> bin_counts(std::span<const double> xs,
                                    std::span<const double> edges) {
  if (edges.size() < 2) throw std::invalid_argument("bin_counts: need >= 2 edges");
  std::vector<std::size_t> counts(edges.size() - 1, 0);
  for (double x : xs) {
    // upper_bound gives the first edge greater than x.
    auto it = std::upper_bound(edges.begin(), edges.end(), x);
    long long bin = std::distance(edges.begin(), it) - 1;
    bin = std::clamp(bin, 0LL, static_cast<long long>(counts.size()) - 1);
    ++counts[static_cast<std::size_t>(bin)];
  }
  return counts;
}

}  // namespace iotax::stats
