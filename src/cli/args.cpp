#include "src/cli/args.hpp"

#include <stdexcept>

#include "src/util/str.hpp"

namespace iotax::cli {

Args::Args(int argc, const char* const* argv) {
  for (int i = 0; i < argc; ++i) {
    const std::string token = argv[i];
    if (token.rfind("--", 0) != 0) {
      positional_.push_back(token);
      continue;
    }
    const std::string name = token.substr(2);
    if (name.empty()) {
      throw std::invalid_argument("Args: bare '--' is not supported");
    }
    const bool has_value =
        i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0;
    if (has_value) {
      options_[name] = argv[++i];
    } else {
      options_[name] = "";
      flags_.insert(name);
    }
  }
}

bool Args::has(const std::string& name) const {
  return options_.count(name) > 0;
}

std::string Args::get(const std::string& name) const {
  const auto it = options_.find(name);
  if (it == options_.end() || flags_.count(name) > 0) {
    throw std::invalid_argument("missing value for --" + name);
  }
  return it->second;
}

std::string Args::get_or(const std::string& name,
                         const std::string& fallback) const {
  return has(name) && flags_.count(name) == 0 ? options_.at(name) : fallback;
}

double Args::get_double_or(const std::string& name, double fallback) const {
  return has(name) ? util::parse_double(get(name)) : fallback;
}

long long Args::get_int_or(const std::string& name, long long fallback) const {
  return has(name) ? util::parse_int(get(name)) : fallback;
}

void Args::check_allowed(const std::set<std::string>& allowed) const {
  for (const auto& [name, value] : options_) {
    if (allowed.count(name) == 0) {
      throw std::invalid_argument("unknown option --" + name);
    }
  }
}

}  // namespace iotax::cli
