// Minimal command-line parsing for the iotax tool: positional subcommand
// plus --flag / --key value options, with typed accessors and unknown-
// option detection.
#pragma once

#include <map>
#include <set>
#include <string>
#include <vector>

namespace iotax::cli {

class Args {
 public:
  /// Parse argv after the program name. Tokens starting with "--" become
  /// options; an option is a boolean flag unless it is followed by a
  /// non-option token, which becomes its value. Everything else is a
  /// positional argument.
  Args(int argc, const char* const* argv);

  const std::vector<std::string>& positional() const { return positional_; }
  bool has(const std::string& name) const;

  /// Value of --name; throws std::invalid_argument if absent or a flag.
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name,
                     const std::string& fallback) const;
  double get_double_or(const std::string& name, double fallback) const;
  long long get_int_or(const std::string& name, long long fallback) const;

  /// Throws std::invalid_argument when an option outside `allowed` was
  /// passed — catches typos like --sedd.
  void check_allowed(const std::set<std::string>& allowed) const;

 private:
  std::vector<std::string> positional_;
  std::map<std::string, std::string> options_;  // flag -> "" for booleans
  std::set<std::string> flags_;                 // options with no value
};

}  // namespace iotax::cli
