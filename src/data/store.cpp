#include "src/data/store.hpp"

#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "src/data/ooc.hpp"
#include "src/data/table_io.hpp"
#include "src/util/json.hpp"
#include "src/util/str.hpp"

namespace iotax::data {

namespace {

constexpr const char* kFormatName = "iotax-store";
constexpr const char* kManifestName = "manifest.json";

// FNV-1a-64, same constants as the model-registry params hash; streamed
// over column bytes as they are written.
constexpr std::uint64_t kFnvOffset = 14695981039346656037ull;
constexpr std::uint64_t kFnvPrime = 1099511628211ull;

std::uint64_t fnv1a_update(std::uint64_t h, const void* data, std::size_t n) {
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

std::string fnv1a_hex(std::uint64_t h) {
  char buf[19];
  std::snprintf(buf, sizeof(buf), "0x%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------
// StoreWriter

struct StoreWriter::ColumnFile {
  std::string name;       // column name in the manifest
  std::string file;       // file name relative to the store dir
  std::FILE* fp = nullptr;
  std::uint64_t fnv = kFnvOffset;
};

StoreWriter::StoreWriter(const std::string& dir,
                         std::vector<std::string> feature_names,
                         std::string system_name)
    : dir_(dir),
      feature_names_(std::move(feature_names)),
      system_name_(std::move(system_name)) {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    throw std::runtime_error("StoreWriter: cannot create '" + dir_ +
                             "': " + ec.message());
  }
  const auto meta_names = dataset_meta_columns();
  meta_scratch_.resize(meta_names.size());
  std::vector<std::string> all(feature_names_);
  for (const char* m : meta_names) all.emplace_back(m);
  cols_.reserve(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    ColumnFile cf;
    cf.name = all[i];
    cf.file = "c" + std::to_string(i) + ".f64";
    const std::string path = dir_ + "/" + cf.file;
    cf.fp = std::fopen(path.c_str(), "wb");
    if (cf.fp == nullptr) {
      throw std::runtime_error("StoreWriter: cannot open '" + path +
                               "' for writing");
    }
    cols_.push_back(std::move(cf));
  }
}

StoreWriter::~StoreWriter() {
  for (auto& cf : cols_) {
    if (cf.fp != nullptr) std::fclose(cf.fp);
  }
}

void StoreWriter::write_column(std::size_t index, const double* values,
                               std::size_t n) {
  ColumnFile& cf = cols_[index];
  const std::size_t bytes = n * sizeof(double);
  if (std::fwrite(values, 1, bytes, cf.fp) != bytes) {
    throw std::runtime_error("StoreWriter: short write to '" + dir_ + "/" +
                             cf.file + "'");
  }
  cf.fnv = fnv1a_update(cf.fnv, values, bytes);
}

void StoreWriter::append_rows(const Dataset& chunk, std::size_t row0,
                              std::size_t n) {
  if (finished_) throw std::logic_error("StoreWriter: append after finish");
  if (n == 0) return;
  if (row0 + n > chunk.size()) {
    throw std::out_of_range("StoreWriter::append_rows: row range");
  }
  if (chunk.features.names() != feature_names_) {
    throw std::invalid_argument(
        "StoreWriter: chunk feature columns do not match the declared "
        "store columns");
  }
  for (std::size_t c = 0; c < feature_names_.size(); ++c) {
    const auto col = chunk.features.col(c);
    write_column(c, col.data() + row0, n);
  }
  encode_dataset_meta(chunk, row0, n, meta_scratch_);
  for (std::size_t m = 0; m < meta_scratch_.size(); ++m) {
    write_column(feature_names_.size() + m, meta_scratch_[m].data(), n);
  }
  rows_ += n;
}

void StoreWriter::finish() {
  if (finished_) return;
  if (rows_ == 0) {
    throw std::runtime_error("StoreWriter: refusing to write an empty store");
  }
  util::Json columns = util::Json::array();
  for (auto& cf : cols_) {
    if (std::fclose(cf.fp) != 0) {
      cf.fp = nullptr;
      throw std::runtime_error("StoreWriter: cannot close '" + dir_ + "/" +
                               cf.file + "'");
    }
    cf.fp = nullptr;
    util::Json col = util::Json::object();
    col.set("name", cf.name);
    col.set("file", cf.file);
    col.set("dtype", "f64");
    col.set("rows", rows_);
    col.set("checksum", fnv1a_hex(cf.fnv));
    columns.push_back(std::move(col));
  }
  util::Json manifest = util::Json::object();
  manifest.set("format", kFormatName);
  manifest.set("version", kStoreFormatVersion);
  manifest.set("system", system_name_);
  manifest.set("rows", rows_);
  manifest.set("columns", std::move(columns));
  const std::string path = dir_ + "/" + kManifestName;
  std::ofstream out(path, std::ios::binary);
  out << manifest.dump(2) << "\n";
  out.close();
  if (!out) {
    throw std::runtime_error("StoreWriter: cannot write '" + path + "'");
  }
  finished_ = true;
}

void pack_dataset(const std::string& dir, const Dataset& ds) {
  StoreWriter writer(dir, ds.features.names(), ds.system_name);
  const std::size_t chunk = ooc::settings().chunk_rows;
  for (std::size_t row0 = 0; row0 < ds.size(); row0 += chunk) {
    writer.append_rows(ds, row0, std::min(chunk, ds.size() - row0));
  }
  writer.finish();
}

// ---------------------------------------------------------------------
// ColumnStore

std::string ColumnStore::OpenOutcome::first_error() const {
  if (store != nullptr || quarantine.entries().empty()) return "";
  const auto& e = quarantine.entries().front();
  return std::string(util::reason_name(e.reason)) + ": " + e.detail;
}

namespace {

/// One structural defect fails the open; `field` names the manifest
/// field (or file) at fault, ModelRegistry-diagnostic style.
ColumnStore::OpenOutcome fail(util::Reason reason, const std::string& detail) {
  ColumnStore::OpenOutcome out;
  out.quarantine.add({reason, 0, static_cast<std::size_t>(-1), 0, detail});
  return out;
}

}  // namespace

ColumnStore::OpenOutcome ColumnStore::open(const std::string& dir,
                                           bool verify_checksums) {
  using util::Reason;
  const std::string manifest_path = dir + "/" + kManifestName;

  std::ifstream in(manifest_path, std::ios::binary);
  if (!in) {
    return fail(Reason::kBadMagic,
                manifest_path + ": missing manifest (not an iotax store)");
  }
  std::stringstream buf;
  buf << in.rdbuf();
  if (in.bad()) {
    return fail(Reason::kTruncated, manifest_path + ": read error");
  }

  util::Json manifest;
  try {
    manifest = util::Json::parse(buf.str());
  } catch (const std::exception& e) {
    return fail(Reason::kMalformedHeader,
                manifest_path + ": " + e.what());
  }
  if (!manifest.is_object()) {
    return fail(Reason::kMalformedHeader,
                manifest_path + ": manifest root is not an object");
  }

  const auto* format = manifest.find("format");
  if (format == nullptr) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": missing field 'format'");
  }
  if (!format->is_string() || format->as_string() != kFormatName) {
    return fail(Reason::kBadMagic, manifest_path + ": field 'format' is not '" +
                                       std::string(kFormatName) + "'");
  }
  const auto* version = manifest.find("version");
  if (version == nullptr) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": missing field 'version'");
  }
  long long version_value = 0;
  try {
    version_value = version->as_int();
  } catch (const std::exception&) {
    return fail(Reason::kBadNumber,
                manifest_path + ": field 'version' is not an integer");
  }
  if (version_value != kStoreFormatVersion) {
    return fail(Reason::kBadVersion,
                manifest_path + ": unsupported store version " +
                    std::to_string(version_value) + " (this build reads v" +
                    std::to_string(kStoreFormatVersion) + ")");
  }
  const auto* system = manifest.find("system");
  if (system == nullptr) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": missing field 'system'");
  }
  if (!system->is_string()) {
    return fail(Reason::kMalformedHeader,
                manifest_path + ": field 'system' is not a string");
  }
  const auto* rows_field = manifest.find("rows");
  if (rows_field == nullptr) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": missing field 'rows'");
  }
  long long rows_value = 0;
  try {
    rows_value = rows_field->as_int();
  } catch (const std::exception&) {
    return fail(Reason::kBadNumber,
                manifest_path + ": field 'rows' is not an integer");
  }
  if (rows_value <= 0 || rows_value > (1ll << 40)) {
    return fail(Reason::kImplausibleSize,
                manifest_path + ": field 'rows' (" +
                    std::to_string(rows_value) + ") is not a plausible count");
  }
  const auto rows = static_cast<std::size_t>(rows_value);

  const auto* columns = manifest.find("columns");
  if (columns == nullptr) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": missing field 'columns'");
  }
  if (!columns->is_array() || columns->size() == 0) {
    return fail(Reason::kMalformedHeader,
                manifest_path + ": field 'columns' is not a non-empty array");
  }

  auto store = std::unique_ptr<ColumnStore>(new ColumnStore());
  store->dir_ = dir;
  store->rows_ = rows;
  store->dataset_.system_name = system->as_string();

  std::unordered_map<std::string, std::span<const double>> by_name;
  std::vector<std::pair<std::string, std::span<const double>>> ordered;
  for (std::size_t i = 0; i < columns->size(); ++i) {
    const util::Json& col = (*columns)[i];
    const std::string where =
        manifest_path + ": columns[" + std::to_string(i) + "]";
    if (!col.is_object()) {
      return fail(Reason::kMalformedHeader, where + " is not an object");
    }
    for (const char* key : {"name", "file", "dtype", "rows", "checksum"}) {
      if (col.find(key) == nullptr) {
        return fail(Reason::kIncompleteHeader,
                    where + ": missing field '" + key + "'");
      }
    }
    if (!col.at("name").is_string() || !col.at("file").is_string() ||
        !col.at("dtype").is_string() || !col.at("checksum").is_string()) {
      return fail(Reason::kMalformedHeader,
                  where + ": name/file/dtype/checksum must be strings");
    }
    const std::string& name = col.at("name").as_string();
    const std::string& file = col.at("file").as_string();
    if (col.at("dtype").as_string() != "f64") {
      return fail(Reason::kMalformedHeader,
                  where + ": field 'dtype' is '" +
                      col.at("dtype").as_string() + "', expected 'f64'");
    }
    if (file.empty() || file.find('/') != std::string::npos ||
        file.find("..") != std::string::npos) {
      return fail(Reason::kMalformedHeader,
                  where + ": field 'file' ('" + file +
                      "') must be a plain file name inside the store");
    }
    long long col_rows = 0;
    try {
      col_rows = col.at("rows").as_int();
    } catch (const std::exception&) {
      return fail(Reason::kBadNumber,
                  where + ": field 'rows' is not an integer");
    }
    if (col_rows != rows_value) {
      return fail(Reason::kSizeMismatch,
                  where + ": column '" + name + "' has " +
                      std::to_string(col_rows) + " rows, manifest says " +
                      std::to_string(rows_value));
    }
    if (by_name.count(name) != 0) {
      return fail(Reason::kMalformedHeader,
                  where + ": duplicate column name '" + name + "'");
    }

    const std::string path = dir + "/" + file;
    std::string map_error;
    auto map = MappedFile::map_readonly(path, &map_error);
    if (map == nullptr) {
      return fail(Reason::kTruncated,
                  path + ": column '" + name + "': " + map_error);
    }
    const std::size_t expect_bytes = rows * sizeof(double);
    if (map->size() < expect_bytes) {
      return fail(Reason::kTruncated,
                  path + ": column '" + name + "' is " +
                      std::to_string(map->size()) + " bytes, expected " +
                      std::to_string(expect_bytes));
    }
    if (map->size() > expect_bytes) {
      return fail(Reason::kTrailingBytes,
                  path + ": column '" + name + "' is " +
                      std::to_string(map->size()) + " bytes, expected " +
                      std::to_string(expect_bytes));
    }
    if (verify_checksums) {
      const std::uint64_t fnv =
          fnv1a_update(kFnvOffset, map->data(), map->size());
      const std::string& expect = col.at("checksum").as_string();
      const std::string got = fnv1a_hex(fnv);
      if (got != expect) {
        return fail(Reason::kBadChecksum,
                    path + ": column '" + name + "' checksum " + got +
                        " does not match manifest " + expect);
      }
    }
    const std::span<const double> values(
        reinterpret_cast<const double*>(map->data()), rows);
    by_name.emplace(name, values);
    ordered.emplace_back(name, values);
    store->maps_.push_back(std::move(map));
  }

  // Reserved meta columns must all be present; everything else is a
  // feature column, exposed in manifest order.
  std::vector<std::span<const double>> meta_spans;
  for (const char* meta_name : dataset_meta_columns()) {
    const auto it = by_name.find(meta_name);
    if (it == by_name.end()) {
      return fail(Reason::kIncompleteHeader,
                  manifest_path + ": missing reserved column '" +
                      std::string(meta_name) + "'");
    }
    meta_spans.push_back(it->second);
  }
  for (const auto& [name, values] : ordered) {
    if (!util::starts_with(name, "__meta_")) {
      store->dataset_.features.add_column_ref(name, values);
    }
  }
  if (store->dataset_.features.n_cols() == 0) {
    return fail(Reason::kIncompleteHeader,
                manifest_path + ": store has no feature columns");
  }
  decode_dataset_meta(meta_spans, rows, &store->dataset_.meta,
                      &store->dataset_.target);

  OpenOutcome out;
  out.store = std::move(store);
  return out;
}

std::size_t ColumnStore::mapped_bytes() const {
  std::size_t total = 0;
  for (const auto& m : maps_) total += m->size();
  return total;
}

}  // namespace iotax::data
