#include "src/data/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace iotax::data {

double signed_log1p_value(double v) {
  return std::copysign(std::log10(1.0 + std::fabs(v)), v);
}

// The fused *_log1p variants apply signed_log1p_value exactly where the
// copy path would have read the already-mapped matrix, so both paths see
// the same values in the same order — bit-identical results.

void StandardScaler::fit(const MatrixView& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty input");
  means_.assign(x.cols(), 0.0);
  stddevs_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) m += x(r, c);
    m /= static_cast<double>(x.rows());
    double v = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const double d = x(r, c) - m;
      v += d * d;
    }
    v /= static_cast<double>(x.rows());
    means_[c] = m;
    stddevs_[c] = v > 1e-24 ? std::sqrt(v) : 1.0;
  }
}

void StandardScaler::fit_log1p(const MatrixView& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty input");
  means_.assign(x.cols(), 0.0);
  stddevs_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) m += signed_log1p_value(x(r, c));
    m /= static_cast<double>(x.rows());
    double v = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const double d = signed_log1p_value(x(r, c)) - m;
      v += d * d;
    }
    v /= static_cast<double>(x.rows());
    means_[c] = m;
    stddevs_[c] = v > 1e-24 ? std::sqrt(v) : 1.0;
  }
}

Matrix StandardScaler::transform(const MatrixView& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / stddevs_[c];
    }
  }
  return out;
}

Matrix StandardScaler::transform_log1p(const MatrixView& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (signed_log1p_value(x(r, c)) - means_[c]) / stddevs_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const MatrixView& x) {
  fit(x);
  return transform(x);
}

Matrix StandardScaler::fit_transform_log1p(const MatrixView& x) {
  fit_log1p(x);
  return transform_log1p(x);
}

StandardScaler StandardScaler::from_params(std::vector<double> means,
                                           std::vector<double> stddevs) {
  if (means.size() != stddevs.size() || means.empty()) {
    throw std::invalid_argument("StandardScaler::from_params: bad sizes");
  }
  for (const double s : stddevs) {
    if (s <= 0.0) {
      throw std::invalid_argument(
          "StandardScaler::from_params: non-positive stddev");
    }
  }
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  return scaler;
}

Matrix signed_log1p(const MatrixView& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = signed_log1p_value(x(r, c));
    }
  }
  return out;
}

}  // namespace iotax::data
