#include "src/data/scaler.hpp"

#include <cmath>
#include <stdexcept>

namespace iotax::data {

void StandardScaler::fit(const Matrix& x) {
  if (x.rows() == 0) throw std::invalid_argument("StandardScaler: empty input");
  means_.assign(x.cols(), 0.0);
  stddevs_.assign(x.cols(), 1.0);
  for (std::size_t c = 0; c < x.cols(); ++c) {
    double m = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) m += x(r, c);
    m /= static_cast<double>(x.rows());
    double v = 0.0;
    for (std::size_t r = 0; r < x.rows(); ++r) {
      const double d = x(r, c) - m;
      v += d * d;
    }
    v /= static_cast<double>(x.rows());
    means_[c] = m;
    stddevs_[c] = v > 1e-24 ? std::sqrt(v) : 1.0;
  }
}

Matrix StandardScaler::transform(const Matrix& x) const {
  if (!fitted()) throw std::logic_error("StandardScaler: not fitted");
  if (x.cols() != means_.size()) {
    throw std::invalid_argument("StandardScaler: column count mismatch");
  }
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      out(r, c) = (x(r, c) - means_[c]) / stddevs_[c];
    }
  }
  return out;
}

Matrix StandardScaler::fit_transform(const Matrix& x) {
  fit(x);
  return transform(x);
}

StandardScaler StandardScaler::from_params(std::vector<double> means,
                                           std::vector<double> stddevs) {
  if (means.size() != stddevs.size() || means.empty()) {
    throw std::invalid_argument("StandardScaler::from_params: bad sizes");
  }
  for (const double s : stddevs) {
    if (s <= 0.0) {
      throw std::invalid_argument(
          "StandardScaler::from_params: non-positive stddev");
    }
  }
  StandardScaler scaler;
  scaler.means_ = std::move(means);
  scaler.stddevs_ = std::move(stddevs);
  return scaler;
}

Matrix signed_log1p(const Matrix& x) {
  Matrix out(x.rows(), x.cols());
  for (std::size_t r = 0; r < x.rows(); ++r) {
    for (std::size_t c = 0; c < x.cols(); ++c) {
      const double v = x(r, c);
      out(r, c) = std::copysign(std::log10(1.0 + std::fabs(v)), v);
    }
  }
  return out;
}

}  // namespace iotax::data
