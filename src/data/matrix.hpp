// Dense row-major matrix used as model input. Row-major because model
// inference walks samples row-wise; training code that needs column scans
// (tree split search) builds its own sorted index once.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace iotax::data {

class Table;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> mutable_row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> mutable_flat() { return data_; }

  /// Extract one column as a vector (copy).
  std::vector<double> col(std::size_t c) const;

  /// New matrix with the given rows, in order.
  Matrix take_rows(std::span<const std::size_t> rows) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Convert a Table to a Matrix (all columns, table order).
Matrix to_matrix(const Table& table);

}  // namespace iotax::data
