// Dense row-major matrix used as model input. Row-major because model
// inference walks samples row-wise; training code that needs column scans
// (tree split search) builds its own sorted index once.
//
// Every Matrix payload is reported to data::footprint, so the obs gauge
// `data.peak_materialized_bytes` reflects the real high-water mark of
// materialized sample storage.
#pragma once

#include <cstddef>
#include <iterator>
#include <span>
#include <vector>

namespace iotax::data {

class Table;

/// Non-owning strided view of one matrix column. Iterable and indexable
/// without copying the column out of row-major storage; keep the source
/// Matrix alive while the view is in use.
class MatrixColumn {
 public:
  MatrixColumn(const double* first, std::size_t size, std::size_t stride)
      : first_(first), size_(size), stride_(stride) {}

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  double operator[](std::size_t i) const { return first_[i * stride_]; }

  class iterator {
   public:
    using iterator_category = std::forward_iterator_tag;
    using value_type = double;
    using difference_type = std::ptrdiff_t;
    using pointer = const double*;
    using reference = double;

    iterator(const double* p, std::size_t stride) : p_(p), stride_(stride) {}
    double operator*() const { return *p_; }
    iterator& operator++() {
      p_ += stride_;
      return *this;
    }
    iterator operator++(int) {
      iterator tmp = *this;
      ++(*this);
      return tmp;
    }
    bool operator==(const iterator& other) const { return p_ == other.p_; }
    bool operator!=(const iterator& other) const { return p_ != other.p_; }

   private:
    const double* p_;
    std::size_t stride_;
  };

  iterator begin() const { return {first_, stride_}; }
  iterator end() const { return {first_ + size_ * stride_, stride_}; }

  /// Copy out as a contiguous vector (for callers that need to sort or
  /// hand the column to span-based APIs).
  std::vector<double> to_vector() const;

 private:
  const double* first_;
  std::size_t size_;
  std::size_t stride_;
};

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0);
  Matrix(const Matrix& other);
  Matrix(Matrix&& other) noexcept;
  Matrix& operator=(const Matrix& other);
  Matrix& operator=(Matrix&& other) noexcept;
  ~Matrix();

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::span<const double> row(std::size_t r) const {
    return {data_.data() + r * cols_, cols_};
  }
  std::span<double> mutable_row(std::size_t r) {
    return {data_.data() + r * cols_, cols_};
  }

  std::span<const double> flat() const { return data_; }
  std::span<double> mutable_flat() { return data_; }

  /// Strided view of one column — no copy; see MatrixColumn.
  MatrixColumn col(std::size_t c) const;

  /// New matrix with the given rows, in order.
  Matrix take_rows(std::span<const std::size_t> rows) const;

 private:
  void track();
  void untrack();

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Convert a Table to a Matrix (all columns, table order).
Matrix to_matrix(const Table& table);

}  // namespace iotax::data
