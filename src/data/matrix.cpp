#include "src/data/matrix.hpp"

#include <stdexcept>
#include <utility>

#include "src/data/footprint.hpp"
#include "src/data/table.hpp"

namespace iotax::data {

std::vector<double> MatrixColumn::to_vector() const {
  std::vector<double> out(size_);
  for (std::size_t i = 0; i < size_; ++i) out[i] = (*this)[i];
  return out;
}

void Matrix::track() { footprint::add(data_.size() * sizeof(double)); }
void Matrix::untrack() { footprint::sub(data_.size() * sizeof(double)); }

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {
  track();
}

Matrix::Matrix(const Matrix& other)
    : rows_(other.rows_), cols_(other.cols_), data_(other.data_) {
  track();
}

Matrix::Matrix(Matrix&& other) noexcept
    : rows_(std::exchange(other.rows_, 0)),
      cols_(std::exchange(other.cols_, 0)),
      data_(std::move(other.data_)) {
  other.data_.clear();  // moved-from vector no longer holds the payload
}

Matrix& Matrix::operator=(const Matrix& other) {
  if (this == &other) return *this;
  untrack();
  rows_ = other.rows_;
  cols_ = other.cols_;
  data_ = other.data_;
  track();
  return *this;
}

Matrix& Matrix::operator=(Matrix&& other) noexcept {
  if (this == &other) return *this;
  untrack();
  rows_ = std::exchange(other.rows_, 0);
  cols_ = std::exchange(other.cols_, 0);
  data_ = std::move(other.data_);
  other.data_.clear();
  return *this;
}

Matrix::~Matrix() { untrack(); }

MatrixColumn Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col: index out of range");
  return {data_.data() + c, rows_, cols_};
}

Matrix Matrix::take_rows(std::span<const std::size_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = row(rows[i]);
    auto dst = out.mutable_row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix to_matrix(const Table& table) {
  Matrix m(table.n_rows(), table.n_cols());
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto col = table.col(c);
    for (std::size_t r = 0; r < col.size(); ++r) m(r, c) = col[r];
  }
  return m;
}

}  // namespace iotax::data
