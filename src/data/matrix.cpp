#include "src/data/matrix.hpp"

#include <stdexcept>

#include "src/data/table.hpp"

namespace iotax::data {

Matrix::Matrix(std::size_t rows, std::size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

std::vector<double> Matrix::col(std::size_t c) const {
  if (c >= cols_) throw std::out_of_range("Matrix::col: index out of range");
  std::vector<double> out(rows_);
  for (std::size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

Matrix Matrix::take_rows(std::span<const std::size_t> rows) const {
  Matrix out(rows.size(), cols_);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const auto src = row(rows[i]);
    auto dst = out.mutable_row(i);
    for (std::size_t c = 0; c < cols_; ++c) dst[c] = src[c];
  }
  return out;
}

Matrix to_matrix(const Table& table) {
  Matrix m(table.n_rows(), table.n_cols());
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto col = table.col(c);
    for (std::size_t r = 0; r < col.size(); ++r) m(r, c) = col[r];
  }
  return m;
}

}  // namespace iotax::data
