// Process-wide accounting of bytes held by the data path, split into two
// pools that answer different capacity questions:
//
//  * Materialized bytes — heap allocations owned by data structures:
//    every live Matrix payload and every in-RAM BinnedMatrix code
//    buffer. This is resident memory the process must fit in RAM, the
//    number the zero-copy view refactor and the out-of-core store are
//    meant to drive down. Reported via add()/sub().
//
//  * Mapped bytes — file-backed mmap regions (ColumnStore columns,
//    BinnedMatrix code spills). These cost address space and page cache,
//    not committed heap: the kernel pages them in on demand and evicts
//    them under memory pressure, so a 1M-row store can be "open" on a
//    small machine. Reported via add_mapped()/sub_mapped().
//
// The out-of-core acceptance contract is stated in these terms: peak
// *materialized* bytes stay bounded by the chunk budget while *mapped*
// bytes scale with the dataset. `peak_bytes()` / `peak_mapped_bytes()`
// are high-water marks, published as the obs gauges
// `data.live_materialized_bytes` / `data.peak_materialized_bytes` /
// `data.mapped_bytes` / `data.peak_mapped_bytes` by publish().
//
// Counters are relaxed atomics: the tally tolerates momentary
// interleaving skew between threads, which can only under-report the
// peak by the size of one in-flight allocation.
#pragma once

#include <cstddef>

namespace iotax::data::footprint {

void add(std::size_t bytes);
void sub(std::size_t bytes);

void add_mapped(std::size_t bytes);
void sub_mapped(std::size_t bytes);

std::size_t live_bytes();
std::size_t peak_bytes();
std::size_t mapped_bytes();
std::size_t peak_mapped_bytes();

/// Reset both high-water marks to the current live totals (benchmarks
/// call this between phases to attribute the peaks to one phase).
void reset_peak();

/// Copy live/peak for both pools into the obs metrics registry as
/// gauges. Cheap; safe to call whether or not IOTAX_OBS is on.
void publish();

}  // namespace iotax::data::footprint
