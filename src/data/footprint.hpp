// Process-wide accounting of bytes materialized by the data path:
// every live Matrix payload and every BinnedMatrix code buffer reports
// its allocation here. `peak_bytes()` is the high-water mark — the
// number the zero-copy view refactor is meant to drive down — and is
// published as the obs gauges `data.live_materialized_bytes` /
// `data.peak_materialized_bytes` by publish_footprint().
//
// Counters are relaxed atomics: the tally tolerates momentary
// interleaving skew between threads, which can only under-report the
// peak by the size of one in-flight allocation.
#pragma once

#include <cstddef>

namespace iotax::data::footprint {

void add(std::size_t bytes);
void sub(std::size_t bytes);

std::size_t live_bytes();
std::size_t peak_bytes();

/// Reset the high-water mark to the current live total (benchmarks call
/// this between phases to attribute the peak to one phase).
void reset_peak();

/// Copy live/peak into the obs metrics registry as gauges. Cheap; safe
/// to call whether or not IOTAX_OBS is on.
void publish();

}  // namespace iotax::data::footprint
