#include "src/data/footprint.hpp"

#include <atomic>

#include "src/obs/metrics.hpp"

namespace iotax::data::footprint {

namespace {

std::atomic<std::size_t> g_live{0};
std::atomic<std::size_t> g_peak{0};
std::atomic<std::size_t> g_mapped{0};
std::atomic<std::size_t> g_mapped_peak{0};

void raise_peak(std::atomic<std::size_t>& peak, std::size_t candidate) {
  std::size_t seen = peak.load(std::memory_order_relaxed);
  while (candidate > seen &&
         !peak.compare_exchange_weak(seen, candidate,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace

void add(std::size_t bytes) {
  if (bytes == 0) return;
  const auto live =
      g_live.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(g_peak, live);
}

void sub(std::size_t bytes) {
  if (bytes == 0) return;
  g_live.fetch_sub(bytes, std::memory_order_relaxed);
}

void add_mapped(std::size_t bytes) {
  if (bytes == 0) return;
  const auto live =
      g_mapped.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  raise_peak(g_mapped_peak, live);
}

void sub_mapped(std::size_t bytes) {
  if (bytes == 0) return;
  g_mapped.fetch_sub(bytes, std::memory_order_relaxed);
}

std::size_t live_bytes() { return g_live.load(std::memory_order_relaxed); }
std::size_t peak_bytes() { return g_peak.load(std::memory_order_relaxed); }
std::size_t mapped_bytes() { return g_mapped.load(std::memory_order_relaxed); }
std::size_t peak_mapped_bytes() {
  return g_mapped_peak.load(std::memory_order_relaxed);
}

void reset_peak() {
  g_peak.store(g_live.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
  g_mapped_peak.store(g_mapped.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
}

void publish() {
  auto& reg = obs::MetricsRegistry::global();
  reg.gauge("data.live_materialized_bytes")
      .set(static_cast<double>(live_bytes()));
  reg.gauge("data.peak_materialized_bytes")
      .set(static_cast<double>(peak_bytes()));
  reg.gauge("data.mapped_bytes").set(static_cast<double>(mapped_bytes()));
  reg.gauge("data.peak_mapped_bytes")
      .set(static_cast<double>(peak_mapped_bytes()));
}

}  // namespace iotax::data::footprint
