#include "src/data/split.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <unordered_map>

namespace iotax::data {

Split random_split(std::size_t n, double train_frac, double val_frac,
                   util::Rng& rng) {
  if (train_frac < 0.0 || val_frac < 0.0 || train_frac + val_frac > 1.0) {
    throw std::invalid_argument("random_split: bad fractions");
  }
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  rng.shuffle(idx);
  const auto n_train = static_cast<std::size_t>(
      static_cast<double>(n) * train_frac);
  const auto n_val =
      static_cast<std::size_t>(static_cast<double>(n) * val_frac);
  Split s;
  s.train.assign(idx.begin(), idx.begin() + static_cast<long>(n_train));
  s.val.assign(idx.begin() + static_cast<long>(n_train),
               idx.begin() + static_cast<long>(n_train + n_val));
  s.test.assign(idx.begin() + static_cast<long>(n_train + n_val), idx.end());
  return s;
}

Split time_split(const Dataset& ds, double train_end, double val_end) {
  if (val_end < train_end) {
    throw std::invalid_argument("time_split: val_end before train_end");
  }
  Split s;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const double t = ds.meta[i].start_time;
    if (t < train_end) {
      s.train.push_back(i);
    } else if (t < val_end) {
      s.val.push_back(i);
    } else {
      s.test.push_back(i);
    }
  }
  return s;
}

Split time_split_fractions(const Dataset& ds, double train_frac,
                           double val_frac) {
  if (ds.size() == 0) return {};
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const auto& m : ds.meta) {
    t_min = std::min(t_min, m.start_time);
    t_max = std::max(t_max, m.start_time);
  }
  const double extent = t_max - t_min;
  return time_split(ds, t_min + extent * train_frac,
                    t_min + extent * (train_frac + val_frac));
}

Split grouped_random_split(const Dataset& ds, double train_frac,
                           double val_frac, util::Rng& rng) {
  if (train_frac < 0.0 || val_frac < 0.0 || train_frac + val_frac > 1.0) {
    throw std::invalid_argument("grouped_random_split: bad fractions");
  }
  // Group rows by duplicate-set key.
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < ds.size(); ++i) {
    const auto key = ds.meta[i].app_id * 0x9e3779b97f4a7c15ULL ^
                     ds.meta[i].config_id;
    groups[key].push_back(i);
  }
  std::vector<std::vector<std::size_t>> group_list;
  group_list.reserve(groups.size());
  for (auto& [key, rows] : groups) group_list.push_back(std::move(rows));
  // Deterministic order before shuffling (unordered_map order is not).
  std::sort(group_list.begin(), group_list.end(),
            [](const auto& a, const auto& b) { return a.front() < b.front(); });
  rng.shuffle(group_list);

  const auto n = ds.size();
  const auto train_target =
      static_cast<std::size_t>(static_cast<double>(n) * train_frac);
  const auto val_target =
      static_cast<std::size_t>(static_cast<double>(n) * val_frac);
  Split s;
  for (const auto& rows : group_list) {
    auto* dst = &s.test;
    if (s.train.size() < train_target) {
      dst = &s.train;
    } else if (s.val.size() < val_target) {
      dst = &s.val;
    }
    dst->insert(dst->end(), rows.begin(), rows.end());
  }
  return s;
}

}  // namespace iotax::data
