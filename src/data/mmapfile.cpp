#include "src/data/mmapfile.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "src/data/footprint.hpp"

namespace iotax::data {

namespace {

std::string errno_text(const std::string& what, const std::string& path) {
  return what + " '" + path + "': " + std::strerror(errno);
}

}  // namespace

MappedFile::MappedFile(void* addr, std::size_t size, bool writable)
    : addr_(addr), size_(size), writable_(writable) {
  footprint::add_mapped(size_);
}

MappedFile::~MappedFile() {
  if (addr_ != nullptr) ::munmap(addr_, size_);
  footprint::sub_mapped(size_);
}

std::byte* MappedFile::mutable_data() {
  if (!writable_) {
    throw std::logic_error("MappedFile: mutable_data on a read-only mapping");
  }
  return static_cast<std::byte*>(addr_);
}

std::unique_ptr<MappedFile> MappedFile::map_readonly(const std::string& path,
                                                     std::string* error) {
  const int fd = ::open(path.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("cannot open", path);
    return nullptr;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    if (error != nullptr) *error = errno_text("cannot stat", path);
    ::close(fd);
    return nullptr;
  }
  const auto size = static_cast<std::size_t>(st.st_size);
  void* addr = nullptr;
  if (size > 0) {
    addr = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (addr == MAP_FAILED) {
      if (error != nullptr) *error = errno_text("cannot mmap", path);
      ::close(fd);
      return nullptr;
    }
  }
  ::close(fd);  // the mapping keeps its own reference
  return std::unique_ptr<MappedFile>(new MappedFile(addr, size, false));
}

std::unique_ptr<MappedFile> MappedFile::create_spill(const std::string& dir,
                                                     std::size_t bytes,
                                                     std::string* error) {
  std::string tmpl = dir + "/iotax-spill-XXXXXX";
  const int fd = ::mkstemp(tmpl.data());
  if (fd < 0) {
    if (error != nullptr) *error = errno_text("cannot create spill in", dir);
    return nullptr;
  }
  // Unlink immediately: the bytes live only as long as the mapping.
  ::unlink(tmpl.c_str());
  if (bytes > 0 && ::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (error != nullptr) *error = errno_text("cannot size spill file", tmpl);
    ::close(fd);
    return nullptr;
  }
  void* addr = nullptr;
  if (bytes > 0) {
    addr = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
    if (addr == MAP_FAILED) {
      if (error != nullptr) *error = errno_text("cannot mmap spill file", tmpl);
      ::close(fd);
      return nullptr;
    }
  }
  ::close(fd);
  return std::unique_ptr<MappedFile>(new MappedFile(addr, bytes, true));
}

}  // namespace iotax::data
