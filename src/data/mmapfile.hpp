// RAII mmap wrapper for the out-of-core data path. Two flavours:
//
//  * map_readonly — map an existing file (a ColumnStore column) read-only.
//    The kernel pages data in on demand and evicts it under pressure, so
//    a mapped column costs address space, not resident heap.
//  * create_spill — create an anonymous-by-unlink scratch file of a fixed
//    size in a spill directory, mapped read-write. The file is unlinked
//    immediately after creation, so the bytes disappear when the last map
//    (or the process) goes away — no cleanup path can leak it.
//
// Every mapping registers its size with data::footprint as *mapped*
// bytes, a separate gauge from the materialized (heap) tally; see
// src/data/footprint.hpp for the distinction.
#pragma once

#include <cstddef>
#include <memory>
#include <string>

namespace iotax::data {

class MappedFile {
 public:
  /// Map `path` read-only. Returns nullptr and sets *error (errno text
  /// plus the path) on failure; an empty file maps to size()==0 with a
  /// null data pointer, which is valid.
  static std::unique_ptr<MappedFile> map_readonly(const std::string& path,
                                                  std::string* error);

  /// Create an unlinked scratch file of `bytes` under `dir` (the OOC
  /// spill directory) and map it read-write. Returns nullptr and sets
  /// *error on failure.
  static std::unique_ptr<MappedFile> create_spill(const std::string& dir,
                                                  std::size_t bytes,
                                                  std::string* error);

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;
  ~MappedFile();

  const std::byte* data() const { return static_cast<const std::byte*>(addr_); }
  /// Writable base address; only valid for create_spill mappings.
  std::byte* mutable_data();
  std::size_t size() const { return size_; }
  bool writable() const { return writable_; }

 private:
  MappedFile(void* addr, std::size_t size, bool writable);

  void* addr_ = nullptr;
  std::size_t size_ = 0;
  bool writable_ = false;
};

}  // namespace iotax::data
