// Table and Dataset persistence as CSV, so experiments can be inspected
// with standard tools and re-loaded without re-running the simulator.
#pragma once

#include <string>

#include "src/data/dataset.hpp"
#include "src/data/table.hpp"

namespace iotax::data {

void write_table_csv(const std::string& path, const Table& table);
Table read_table_csv(const std::string& path);

/// Dataset round-trip: writes features plus reserved `__meta_*` columns
/// (job/app/config ids, times, ground-truth components).
void write_dataset_csv(const std::string& path, const Dataset& ds);
Dataset read_dataset_csv(const std::string& path,
                         const std::string& system_name);

}  // namespace iotax::data
