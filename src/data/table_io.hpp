// Table and Dataset persistence as CSV, so experiments can be inspected
// with standard tools and re-loaded without re-running the simulator.
// The reserved `__meta_*` column encoding defined here is shared with
// the on-disk ColumnStore (src/data/store.hpp) so both formats carry
// metadata identically.
#pragma once

#include <span>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/table.hpp"

namespace iotax::data {

void write_table_csv(const std::string& path, const Table& table);
Table read_table_csv(const std::string& path);

/// The reserved meta/target column names, in serialization order:
/// `__meta_job_id` ... `__meta_log_fn`, `__meta_target`.
std::span<const char* const> dataset_meta_columns();

/// Encode meta + target for rows [row0, row0+n) into `out` — one vector
/// per dataset_meta_columns() entry, each resized to n. Chunk-friendly:
/// streaming writers (StoreWriter) call it per chunk.
void encode_dataset_meta(const Dataset& ds, std::size_t row0, std::size_t n,
                         std::span<std::vector<double>> out);

/// Decode meta + target from column spans ordered as
/// dataset_meta_columns(); appends n entries to *meta / *target.
void decode_dataset_meta(std::span<const std::span<const double>> cols,
                         std::size_t n, std::vector<JobMeta>* meta,
                         std::vector<double>* target);

/// Dataset round-trip: writes features plus reserved `__meta_*` columns
/// (job/app/config ids, times, ground-truth components).
void write_dataset_csv(const std::string& path, const Dataset& ds);
Dataset read_dataset_csv(const std::string& path,
                         const std::string& system_name);

}  // namespace iotax::data
