#include "src/data/dataset.hpp"

#include <cmath>
#include <stdexcept>

namespace iotax::data {

Dataset Dataset::take(std::span<const std::size_t> rows) const {
  Dataset out;
  out.system_name = system_name;
  out.features = features.take(rows);
  out.meta.reserve(rows.size());
  out.target.reserve(rows.size());
  for (std::size_t r : rows) {
    out.meta.push_back(meta.at(r));
    out.target.push_back(target.at(r));
  }
  return out;
}

std::vector<std::size_t> Dataset::rows_in_window(double t0, double t1) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (meta[i].start_time >= t0 && meta[i].start_time < t1) {
      rows.push_back(i);
    }
  }
  return rows;
}

void Dataset::validate() const {
  if (features.n_rows() != meta.size() || meta.size() != target.size()) {
    throw std::logic_error("Dataset: features/meta/target size mismatch");
  }
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (meta[i].end_time < meta[i].start_time) {
      throw std::logic_error("Dataset: job ends before it starts");
    }
    const double recomposed = meta[i].log_throughput();
    if (std::fabs(recomposed - target[i]) > 1e-9) {
      throw std::logic_error(
          "Dataset: target does not match ground-truth decomposition");
    }
  }
}

}  // namespace iotax::data
