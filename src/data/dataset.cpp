#include "src/data/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::data {

Dataset Dataset::take(std::span<const std::size_t> rows) const {
  Dataset out;
  out.system_name = system_name;
  out.features = features.take(rows);
  out.meta.reserve(rows.size());
  out.target.reserve(rows.size());
  for (std::size_t r : rows) {
    out.meta.push_back(meta.at(r));
    out.target.push_back(target.at(r));
  }
  return out;
}

std::vector<std::size_t> Dataset::rows_in_window(double t0, double t1) const {
  std::vector<std::size_t> rows;
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (meta[i].start_time >= t0 && meta[i].start_time < t1) {
      rows.push_back(i);
    }
  }
  return rows;
}

util::QuarantineReport Dataset::validate_all() const {
  util::QuarantineReport report;
  constexpr auto npos = static_cast<std::size_t>(-1);
  if (features.n_rows() != meta.size() || meta.size() != target.size()) {
    report.add({util::Reason::kSizeMismatch, 0, npos, 0,
                "features/meta/target size mismatch"});
  }
  const std::size_t n =
      std::min({features.n_rows(), meta.size(), target.size()});
  for (std::size_t c = 0; c < features.n_cols(); ++c) {
    const auto col = features.col(c);
    for (std::size_t i = 0; i < n; ++i) {
      if (!std::isfinite(col[i])) {
        report.add({util::Reason::kNonFiniteValue, meta[i].job_id, i, c,
                    "non-finite value in feature '" + features.names()[c] +
                        "'"});
      }
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = meta[i];
    if (!std::isfinite(m.start_time) || !std::isfinite(m.end_time)) {
      report.add({util::Reason::kNonFiniteValue, m.job_id, i, 0,
                  "non-finite job timestamps"});
    } else if (m.end_time < m.start_time) {
      report.add({util::Reason::kTimeInverted, m.job_id, i, 0,
                  "job ends before it starts"});
    }
    if (!std::isfinite(target[i])) {
      report.add({util::Reason::kNonFiniteValue, m.job_id, i, 0,
                  "non-finite target"});
    } else if (!(std::fabs(m.log_throughput() - target[i]) <= 1e-9)) {
      // The negated form catches a NaN decomposition too.
      report.add({util::Reason::kTruthMismatch, m.job_id, i, 0,
                  "target does not match ground-truth decomposition"});
    }
  }
  return report;
}

void Dataset::validate() const {
  if (features.n_rows() != meta.size() || meta.size() != target.size()) {
    throw std::logic_error("Dataset: features/meta/target size mismatch");
  }
  for (std::size_t i = 0; i < meta.size(); ++i) {
    if (meta[i].end_time < meta[i].start_time) {
      throw std::logic_error("Dataset: job ends before it starts");
    }
    const double recomposed = meta[i].log_throughput();
    if (std::fabs(recomposed - target[i]) > 1e-9) {
      throw std::logic_error(
          "Dataset: target does not match ground-truth decomposition");
    }
  }
}

}  // namespace iotax::data
