// Column-major numeric table with named columns: the in-memory dataset
// format every model and litmus test consumes. Column-major because ML
// training touches features column-wise (tree split scans, scaling).
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iotax::data {

class Table {
 public:
  Table() = default;

  /// Construct with named empty columns.
  explicit Table(std::vector<std::string> names);

  std::size_t n_rows() const { return cols_.empty() ? 0 : cols_[0].size(); }
  std::size_t n_cols() const { return cols_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  bool has_column(const std::string& name) const;
  /// Column index by name; throws std::out_of_range if absent.
  std::size_t index_of(const std::string& name) const;

  std::span<const double> col(std::size_t i) const;
  std::span<const double> col(const std::string& name) const;
  std::vector<double>& mutable_col(std::size_t i);
  std::vector<double>& mutable_col(const std::string& name);

  double at(std::size_t row, std::size_t col) const;

  /// Append a column; values.size() must equal n_rows() (or the table must
  /// be empty). Duplicate names are rejected.
  void add_column(std::string name, std::vector<double> values);

  /// Append one row; values.size() must equal n_cols().
  void add_row(std::span<const double> values);

  /// Reserve capacity for n total rows in every column, so bulk
  /// row-at-a-time builders (sim::build_dataset) grow each column's
  /// storage once instead of reallocating along the way.
  void reserve_rows(std::size_t n);

  /// New table with only the named columns, in the given order.
  Table select(std::span<const std::string> names) const;

  /// New table with only the given rows, in the given order.
  Table take(std::span<const std::size_t> rows) const;

  /// Horizontally concatenate; other must have the same row count and no
  /// overlapping column names.
  Table hcat(const Table& other) const;

  /// Vertically concatenate; other must have identical column names.
  Table vcat(const Table& other) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::vector<double>> cols_;
};

}  // namespace iotax::data
