// Column-major numeric table with named columns: the in-memory dataset
// format every model and litmus test consumes. Column-major because ML
// training touches features column-wise (tree split scans, scaling).
//
// A column either owns its storage (a vector, the default) or references
// external read-only memory via add_column_ref — the mmap-backed
// ColumnStore uses the latter to expose on-disk columns without copying.
// External columns follow the view lifetime rule: the referenced memory
// must outlive the table *and every copy of it* (copies keep referencing
// the same bytes). Mutating entry points (mutable_col, add_row) reject
// tables with external columns; select/take/hcat/vcat materialize owned
// output as before.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace iotax::data {

class Table {
 public:
  Table() = default;

  /// Construct with named empty columns.
  explicit Table(std::vector<std::string> names);

  std::size_t n_rows() const { return cols_.empty() ? 0 : col(0).size(); }
  std::size_t n_cols() const { return cols_.size(); }
  const std::vector<std::string>& names() const { return names_; }

  bool has_column(const std::string& name) const;
  /// Column index by name; throws std::out_of_range if absent.
  std::size_t index_of(const std::string& name) const;

  std::span<const double> col(std::size_t i) const;
  std::span<const double> col(const std::string& name) const;
  std::vector<double>& mutable_col(std::size_t i);
  std::vector<double>& mutable_col(const std::string& name);

  double at(std::size_t row, std::size_t col) const;

  /// Append a column; values.size() must equal n_rows() (or the table must
  /// be empty). Duplicate names are rejected.
  void add_column(std::string name, std::vector<double> values);

  /// Append a non-owning column over external read-only storage (e.g. an
  /// mmap-backed store column). Same size rules as add_column. The
  /// referenced memory must outlive this table and all copies of it.
  void add_column_ref(std::string name, std::span<const double> values);

  /// True when any column references external storage (the table is then
  /// read-only: mutable_col and add_row throw).
  bool has_external_columns() const;

  /// Append one row; values.size() must equal n_cols().
  void add_row(std::span<const double> values);

  /// Reserve capacity for n total rows in every owned column, so bulk
  /// row-at-a-time builders (sim::build_dataset) grow each column's
  /// storage once instead of reallocating along the way.
  void reserve_rows(std::size_t n);

  /// New table with only the named columns, in the given order.
  Table select(std::span<const std::string> names) const;

  /// New table with only the given rows, in the given order.
  Table take(std::span<const std::size_t> rows) const;

  /// Horizontally concatenate; other must have the same row count and no
  /// overlapping column names.
  Table hcat(const Table& other) const;

  /// Vertically concatenate; other must have identical column names.
  Table vcat(const Table& other) const;

 private:
  /// One column: owned vector storage, or a span into external memory
  /// (external == true, `owned` empty).
  struct Column {
    std::vector<double> owned;
    std::span<const double> ref;
    bool external = false;

    std::span<const double> values() const {
      return external ? ref : std::span<const double>(owned);
    }
  };

  std::vector<std::string> names_;
  std::vector<Column> cols_;
};

}  // namespace iotax::data
