// The joined per-job dataset the models train on: one feature Table plus
// per-job metadata. The metadata carries the simulator's ground-truth
// decomposition (log f_a/f_g/f_l/f_n) so litmus-test estimates can be
// validated against the true generating process — something the paper's
// authors could not do with production logs.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/data/table.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::data {

struct JobMeta {
  std::uint64_t job_id = 0;
  std::uint64_t app_id = 0;
  /// Identifies a duplicate set: jobs with equal (app_id, config_id) have
  /// identical observable application features.
  std::uint64_t config_id = 0;
  double start_time = 0.0;  // seconds since dataset epoch
  double end_time = 0.0;
  std::uint32_t nodes = 0;
  /// App first appeared after the train cutoff (ground-truth OoD marker).
  bool novel_app = false;

  // Ground-truth log10 decomposition of throughput (Eq. 3 of the paper).
  double log_fa = 0.0;  // idealized application throughput
  double log_fg = 0.0;  // global system (weather) impact
  double log_fl = 0.0;  // contention impact
  double log_fn = 0.0;  // inherent noise

  /// Measured log10 I/O throughput (MiB/s) = log_fa+log_fg+log_fl+log_fn.
  double log_throughput() const {
    return log_fa + log_fg + log_fl + log_fn;
  }
};

struct Dataset {
  Table features;                // one row per job (superset of feature sets)
  std::vector<JobMeta> meta;     // parallel to feature rows
  std::vector<double> target;    // log10 throughput, parallel to rows
  std::string system_name;       // e.g. "theta-like"

  std::size_t size() const { return meta.size(); }

  /// Subset by row indices (features, meta and target together).
  Dataset take(std::span<const std::size_t> rows) const;

  /// Row indices whose start_time is in [t0, t1).
  std::vector<std::size_t> rows_in_window(double t0, double t1) const;

  /// Internal consistency checks; throws std::logic_error on violation.
  void validate() const;

  /// Collect EVERY internal-consistency violation into a structured
  /// report instead of failing at the first, using the same reason
  /// codes the ingest quarantine speaks: size-mismatch, time-inverted,
  /// non-finite-value (features, target, or timestamps), truth-mismatch.
  /// NaN-aware where validate()'s comparisons are not (a NaN target
  /// passes `fabs(x) > eps` but is reported here). An empty report
  /// means validate() would also have passed, NaNs aside.
  util::QuarantineReport validate_all() const;
};

/// Three-way split indices. Time-ordered splits model deployment: the
/// validation and test sets come after the training period.
struct Split {
  std::vector<std::size_t> train;
  std::vector<std::size_t> val;
  std::vector<std::size_t> test;
};

}  // namespace iotax::data
