// Train/val/test splitting. The paper's deployment experiments (§VIII,
// Fig. 1c) split by time: train on the first part of the system's life,
// deploy on the rest. Random splits are used for in-distribution tests.
#pragma once

#include "src/data/dataset.hpp"
#include "src/util/rng.hpp"

namespace iotax::data {

/// Random split with the given fractions (must sum to <= 1; any remainder
/// goes to test).
Split random_split(std::size_t n, double train_frac, double val_frac,
                   util::Rng& rng);

/// Time-ordered split: jobs starting before `train_end` go to train,
/// between `train_end` and `val_end` to val, the rest to test.
Split time_split(const Dataset& ds, double train_end, double val_end);

/// Time split by fractions of the dataset's time extent, e.g. (0.6, 0.2)
/// trains on the first 60% of wall time and validates on the next 20%.
Split time_split_fractions(const Dataset& ds, double train_frac,
                           double val_frac);

/// Duplicate-set-aware random split: whole duplicate sets are assigned to
/// one side so that identical jobs never straddle the train/test boundary
/// (prevents the memorisation leak discussed in §VI.C).
Split grouped_random_split(const Dataset& ds, double train_frac,
                           double val_frac, util::Rng& rng);

}  // namespace iotax::data
