#include "src/data/view.hpp"

#include <stdexcept>

namespace iotax::data {

namespace {

void check_rows(std::span<const std::size_t> rows, std::size_t limit) {
  for (const auto r : rows) {
    if (r >= limit) {
      throw std::out_of_range("MatrixView: row index " + std::to_string(r) +
                              " out of range for base with " +
                              std::to_string(limit) + " rows");
    }
  }
}

void check_cols(std::span<const std::size_t> cols, std::size_t limit) {
  for (const auto c : cols) {
    if (c >= limit) {
      throw std::out_of_range("MatrixView: column index " + std::to_string(c) +
                              " out of range for base with " +
                              std::to_string(limit) + " columns");
    }
  }
}

bool contiguous_ascending(std::span<const std::size_t> idx) {
  for (std::size_t i = 1; i < idx.size(); ++i) {
    if (idx[i] != idx[i - 1] + 1) return false;
  }
  return !idx.empty();
}

}  // namespace

MatrixView::MatrixView(const Matrix& base)
    : base_(&base), base_rows_(base.rows()), base_cols_(base.cols()) {}

MatrixView::MatrixView(const Matrix& base, std::span<const std::size_t> rows)
    : base_(&base),
      base_rows_(base.rows()),
      base_cols_(base.cols()),
      rows_(rows),
      all_rows_(false) {
  check_rows(rows, base.rows());
}

MatrixView::MatrixView(const Matrix& base, std::span<const std::size_t> rows,
                       std::span<const std::size_t> cols)
    : base_(&base),
      base_rows_(base.rows()),
      base_cols_(base.cols()),
      rows_(rows),
      cols_(cols),
      all_rows_(false),
      all_cols_(false) {
  check_rows(rows, base.rows());
  check_cols(cols, base.cols());
  if (contiguous_ascending(cols)) {
    col_contiguous_ = true;
    col_offset_ = cols.front();
  }
}

MatrixView::MatrixView(const Table& base, std::span<const std::size_t> rows,
                       std::span<const std::size_t> cols)
    : table_(&base),
      base_rows_(base.n_rows()),
      base_cols_(base.n_cols()),
      rows_(rows),
      cols_(cols),
      all_rows_(rows.empty()),
      all_cols_(cols.empty()) {
  check_rows(rows, base.n_rows());
  check_cols(cols, base.n_cols());
  if (!cols.empty() && contiguous_ascending(cols)) {
    col_contiguous_ = true;
    col_offset_ = cols.front();
  }
}

MatrixView MatrixView::with_cols(const Matrix& base,
                                 std::span<const std::size_t> cols) {
  MatrixView v(base);
  check_cols(cols, base.cols());
  v.cols_ = cols;
  v.all_cols_ = false;
  if (contiguous_ascending(cols)) {
    v.col_contiguous_ = true;
    v.col_offset_ = cols.front();
  }
  return v;
}

MatrixView MatrixView::take_rows(std::span<const std::size_t> rows,
                                 std::vector<std::size_t>* storage) const {
  storage->resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    if (rows[i] >= this->rows()) {
      throw std::out_of_range("MatrixView::take_rows: index out of range");
    }
    (*storage)[i] = base_row(rows[i]);
  }
  MatrixView v = *this;
  v.rows_ = *storage;
  v.all_rows_ = false;
  return v;
}

Matrix MatrixView::materialize() const {
  Matrix out(rows(), cols());
  std::vector<double> scratch;
  for (std::size_t r = 0; r < rows(); ++r) {
    const auto src = row(r, scratch);
    auto dst = out.mutable_row(r);
    for (std::size_t c = 0; c < src.size(); ++c) dst[c] = src[c];
  }
  return out;
}

DatasetView::DatasetView(const Dataset& base) : base_(&base) {}

DatasetView::DatasetView(const Dataset& base, std::span<const std::size_t> rows)
    : base_(&base), rows_(rows), all_rows_(false) {
  for (const auto r : rows) {
    if (r >= base.size()) {
      throw std::out_of_range("DatasetView: row index " + std::to_string(r) +
                              " out of range for dataset with " +
                              std::to_string(base.size()) + " rows");
    }
  }
}

std::vector<std::size_t> DatasetView::rows_in_window(double t0,
                                                     double t1) const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < size(); ++i) {
    const double t = meta(i).start_time;
    if (t >= t0 && t < t1) out.push_back(i);
  }
  return out;
}

Dataset DatasetView::materialize() const {
  if (all_rows_) return *base_;
  std::vector<std::size_t> rows(rows_.begin(), rows_.end());
  return base_->take(rows);
}

void gather(std::span<const double> src, std::span<const std::size_t> rows,
            std::vector<double>* out) {
  out->resize(rows.size());
  for (std::size_t i = 0; i < rows.size(); ++i) (*out)[i] = src[rows[i]];
}

}  // namespace iotax::data
