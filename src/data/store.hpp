// On-disk columnar dataset store: one little-endian f64 file per column
// plus a strict-JSON manifest, opened via mmap so a million-job dataset
// costs mapped address space instead of resident heap.
//
// Layout of a store directory:
//   <dir>/manifest.json   strict JSON, insertion-ordered keys:
//     { "format": "iotax-store", "version": 1, "system": "...",
//       "rows": N, "columns": [ { "name": "...", "file": "c0.f64",
//       "dtype": "f64", "rows": N, "checksum": "0x..." }, ... ] }
//   <dir>/c<i>.f64        raw doubles, host (little-endian) byte order,
//                         rows*8 bytes, FNV-1a-64 checksum in manifest.
//
// Columns are the dataset feature columns in order, followed by the
// reserved `__meta_*` columns of table_io (same encoding as the CSV
// round-trip, so pack(csv) → open is value-exact).
//
// Lifetime rule (extends the view rules of src/data/view.hpp): the
// Dataset returned by ColumnStore::dataset() holds Table columns that
// reference the store's mappings. The ColumnStore must outlive that
// Dataset, every copy of its feature Table, and every view built over
// them. Meta and target are decoded into small owned vectors on open
// (8–96 bytes/row), so only the O(rows × cols) feature payload stays
// file-backed.
//
// Corruption tolerance: open never crashes on a damaged store. Every
// defect — truncated or missing column file, bit-flipped checksum,
// malformed or incomplete manifest — maps onto the shared quarantine
// Reason vocabulary with the file path and offending field named in the
// diagnostic, mirroring the ModelRegistry checkpoint diagnostics.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/mmapfile.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::data {

/// Version stamped into manifests this build writes (printed by
/// `iotax --version` as `store=v<N>`).
inline constexpr int kStoreFormatVersion = 1;

/// Streaming store writer: declare the feature columns once, append row
/// chunks (each a small Dataset), finish() writes the manifest. Columns
/// are written append-only with running FNV-1a-64 checksums, so packing
/// never holds more than one chunk in RAM.
class StoreWriter {
 public:
  /// Creates `dir` (and parents) and opens one column file per feature
  /// plus the reserved meta columns. Throws std::runtime_error on I/O
  /// errors.
  StoreWriter(const std::string& dir, std::vector<std::string> feature_names,
              std::string system_name);
  ~StoreWriter();
  StoreWriter(const StoreWriter&) = delete;
  StoreWriter& operator=(const StoreWriter&) = delete;

  /// Append rows [row0, row0+n) of `chunk`. The chunk's feature columns
  /// must match the declared names exactly.
  void append_rows(const Dataset& chunk, std::size_t row0, std::size_t n);
  /// Append a whole chunk.
  void append(const Dataset& chunk) { append_rows(chunk, 0, chunk.size()); }

  /// Flush, write manifest.json, close all column files. Idempotent.
  /// Throws on I/O errors and on an empty (zero-row) store.
  void finish();

  std::size_t rows_written() const { return rows_; }
  const std::string& dir() const { return dir_; }

 private:
  struct ColumnFile;

  void write_column(std::size_t index, const double* values, std::size_t n);

  std::string dir_;
  std::vector<std::string> feature_names_;
  std::string system_name_;
  std::vector<ColumnFile> cols_;
  std::vector<std::vector<double>> meta_scratch_;
  std::size_t rows_ = 0;
  bool finished_ = false;
};

/// Pack an in-RAM dataset into a store directory in one call (chunked
/// internally; see StoreWriter for the streaming interface).
void pack_dataset(const std::string& dir, const Dataset& ds);

/// A read-only mmap view of a store directory, exposed as a Dataset
/// whose feature Table references the mapped column files directly.
class ColumnStore {
 public:
  struct OpenOutcome {
    std::unique_ptr<ColumnStore> store;  // null on failure
    util::QuarantineReport quarantine;   // defects found while opening
    bool ok() const { return store != nullptr; }
    /// First diagnostic, for one-line CLI errors ("" when ok).
    std::string first_error() const;
  };

  /// Open a store. Structural integrity (manifest fields, file presence
  /// and byte sizes) is always checked; `verify_checksums` additionally
  /// reads every column through its FNV-1a-64 checksum (`iotax pack
  /// --check`). Never throws on corrupt input.
  static OpenOutcome open(const std::string& dir,
                          bool verify_checksums = false);

  /// The mapped dataset. Valid only while this ColumnStore is alive.
  const Dataset& dataset() const { return dataset_; }
  std::size_t rows() const { return rows_; }
  std::size_t n_columns() const { return maps_.size(); }
  std::size_t mapped_bytes() const;
  const std::string& dir() const { return dir_; }
  const std::string& system_name() const { return dataset_.system_name; }

 private:
  ColumnStore() = default;

  std::string dir_;
  std::size_t rows_ = 0;
  std::vector<std::unique_ptr<MappedFile>> maps_;
  Dataset dataset_;
};

}  // namespace iotax::data
