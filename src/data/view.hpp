// Zero-copy views over the two sample containers.
//
// A MatrixView is (base container, optional row-index map, optional
// column-index map); a DatasetView is (base Dataset, optional row-index
// map). The base is either a row-major Matrix or a column-major Table —
// the taxonomy pipeline views feature columns of the dataset's Table
// directly, so model input needs no materialization at all. Every
// subset a pipeline step needs — a train/val/test side, a time window,
// a search rung, a feature set — is O(indices) instead of the
// O(rows x cols) copy that Matrix::take_rows / Dataset::take pay.
// Views read element-for-element the same values in the same order as
// the materialized copy would, so any deterministic consumer produces
// bit-identical output through either path (the determinism suite
// asserts this).
//
// Aliasing & lifetime rules (see DESIGN.md "Data path"):
//  - Views are non-owning. The base container AND the index storage
//    passed to the constructor must outlive the view. Index spans are
//    not copied.
//  - Views are read-only; the base must not be resized or reassigned
//    while views of it are live (element writes through mutable_row are
//    visible to views, which is occasionally useful but never done by
//    library code).
//  - A Matrix (or Dataset) converts implicitly to its identity view, so
//    view-taking APIs accept plain containers. Passing a temporary is
//    safe only for the duration of the call expression.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "src/data/dataset.hpp"
#include "src/data/matrix.hpp"
#include "src/data/table.hpp"

namespace iotax::data {

class MatrixView {
 public:
  /// Empty view (no base): rows() == cols() == 0.
  MatrixView() = default;

  /// Identity view of a whole matrix (implicit on purpose: every
  /// view-taking API accepts a plain Matrix).
  MatrixView(const Matrix& base);  // NOLINT(google-explicit-constructor)

  /// Row-subset view; `rows` are base row indices, kept by reference.
  MatrixView(const Matrix& base, std::span<const std::size_t> rows);

  /// Row+column-subset view; both index spans are kept by reference.
  MatrixView(const Matrix& base, std::span<const std::size_t> rows,
             std::span<const std::size_t> cols);

  /// Column-subset view over all rows.
  static MatrixView with_cols(const Matrix& base,
                              std::span<const std::size_t> cols);

  /// View over a column-major Table (row and column indices are Table
  /// rows/columns; either span may be empty for "all"). Rows are never
  /// spans for this base — hot loops gather through the scratch buffer.
  MatrixView(const Table& base, std::span<const std::size_t> rows,
             std::span<const std::size_t> cols);

  std::size_t rows() const { return all_rows_ ? base_rows_ : rows_.size(); }
  std::size_t cols() const { return all_cols_ ? base_cols_ : cols_.size(); }

  bool empty() const { return base_ == nullptr || rows() == 0 || cols() == 0; }

  /// Base-row index backing view row r.
  std::size_t base_row(std::size_t r) const { return all_rows_ ? r : rows_[r]; }
  /// Base-column index backing view column c.
  std::size_t base_col(std::size_t c) const {
    if (all_cols_) return c;
    return col_contiguous_ ? col_offset_ + c : cols_[c];
  }

  double operator()(std::size_t r, std::size_t c) const {
    if (table_ != nullptr) return table_->col(base_col(c))[base_row(r)];
    return (*base_)(base_row(r), base_col(c));
  }

  /// True when view rows are contiguous slices of base rows (a row-major
  /// base with all columns or a contiguous column range): row() never
  /// touches the scratch buffer and costs nothing. Column-major bases
  /// always gather.
  bool rows_are_spans() const {
    return table_ == nullptr && (all_cols_ || col_contiguous_);
  }

  /// View row r as a span. Returns a slice of the base row when
  /// rows_are_spans(); otherwise gathers the mapped columns into
  /// `scratch` and returns a span over it. Hot loops keep one scratch
  /// buffer per worker.
  std::span<const double> row(std::size_t r, std::vector<double>& scratch) const {
    const auto base_r = base_row(r);
    if (table_ != nullptr) {
      scratch.resize(cols());
      for (std::size_t c = 0; c < cols(); ++c) {
        scratch[c] = table_->col(base_col(c))[base_r];
      }
      return scratch;
    }
    if (all_cols_) return base_->row(base_r);
    if (col_contiguous_) {
      return base_->row(base_r).subspan(col_offset_, cols_.size());
    }
    scratch.resize(cols_.size());
    const auto src = base_->row(base_r);
    for (std::size_t c = 0; c < cols_.size(); ++c) scratch[c] = src[cols_[c]];
    return scratch;
  }

  /// Row-subset of this view (indices are view-local). The composed
  /// base-row indices are written into *storage, which must outlive the
  /// returned view; the column mapping is shared with this view.
  MatrixView take_rows(std::span<const std::size_t> rows,
                       std::vector<std::size_t>* storage) const;

  /// Copy out the viewed block as a dense Matrix (the escape hatch for
  /// consumers that genuinely need contiguous storage).
  Matrix materialize() const;

  const Matrix& base() const { return *base_; }

 private:
  const Matrix* base_ = nullptr;   // row-major base, or
  const Table* table_ = nullptr;   // column-major base (exactly one set)
  std::size_t base_rows_ = 0;
  std::size_t base_cols_ = 0;
  std::span<const std::size_t> rows_;
  std::span<const std::size_t> cols_;
  bool all_rows_ = true;
  bool all_cols_ = true;
  // Column maps that are a contiguous ascending range [offset, offset+n)
  // keep the row()-as-span fast path.
  bool col_contiguous_ = false;
  std::size_t col_offset_ = 0;
};

class DatasetView {
 public:
  DatasetView() = default;

  /// Identity view (implicit: taxonomy APIs accept a plain Dataset).
  DatasetView(const Dataset& base);  // NOLINT(google-explicit-constructor)

  /// Row-subset view; `rows` are base row indices, kept by reference.
  DatasetView(const Dataset& base, std::span<const std::size_t> rows);

  std::size_t size() const { return all_rows_ ? base_->size() : rows_.size(); }
  std::size_t base_row(std::size_t i) const { return all_rows_ ? i : rows_[i]; }

  const JobMeta& meta(std::size_t i) const { return base_->meta[base_row(i)]; }
  double target(std::size_t i) const { return base_->target[base_row(i)]; }

  const std::string& system_name() const { return base_->system_name; }
  /// The base feature table. Its rows are BASE rows; map view indices
  /// through base_row() before indexing a column span.
  const Table& features() const { return base_->features; }
  bool has_feature(const std::string& name) const {
    return base_->features.has_column(name);
  }

  /// View-local indices of jobs with start_time in [t0, t1).
  std::vector<std::size_t> rows_in_window(double t0, double t1) const;

  /// Copy out the viewed rows as a standalone Dataset (== base.take()).
  Dataset materialize() const;

  const Dataset& base() const { return *base_; }

 private:
  const Dataset* base_ = nullptr;
  std::span<const std::size_t> rows_;
  bool all_rows_ = true;
};

/// Gather `src[rows[i]]` into *out (resized to rows.size()). The shared
/// row-gather of feature_sets / drift / target extraction.
void gather(std::span<const double> src, std::span<const std::size_t> rows,
            std::vector<double>* out);

}  // namespace iotax::data
