#include "src/data/ooc.hpp"

#include <algorithm>
#include <cstdlib>

#include "src/util/env.hpp"

namespace iotax::data::ooc {

namespace {

std::size_t env_size_or(const char* name, std::size_t fallback) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(raw, &end, 10);
  if (end == raw) return fallback;
  return static_cast<std::size_t>(v);
}

Settings make_settings() {
  Settings s;
  const char* ooc = std::getenv("IOTAX_OOC");
  if (ooc != nullptr && *ooc != '\0') {
    s.env_forced = true;
    s.enabled = !(ooc[0] == '0' && ooc[1] == '\0');
  }
  // Keep chunks sane: below 256 rows the per-chunk overhead dominates
  // and the bit-identity guarantee still holds, so only tests go there.
  s.chunk_rows = std::max<std::size_t>(env_size_or("IOTAX_OOC_CHUNK_ROWS",
                                                   s.chunk_rows),
                                       16);
  s.spill_threshold_bytes =
      env_size_or("IOTAX_OOC_SPILL_BYTES", s.spill_threshold_bytes);
  s.spill_dir = util::env_or("IOTAX_OOC_DIR", util::env_or("TMPDIR", "/tmp"));
  return s;
}

}  // namespace

Settings& settings() {
  static Settings s = make_settings();
  return s;
}

void enable_for_store() {
  Settings& s = settings();
  if (!s.env_forced) s.enabled = true;
}

std::size_t chunk_budget_bytes() {
  const Settings& s = settings();
  return s.chunk_rows * sizeof(double) + s.spill_threshold_bytes;
}

}  // namespace iotax::data::ooc
