// Feature preprocessing: log1p compression of heavy-tailed I/O counters
// followed by per-column standardisation. Trees don't need it; the MLPs
// and the deep ensemble do.
//
// All entry points take MatrixView (a Matrix converts implicitly), so
// preprocessing runs straight off a row/column subset without an
// intermediate copy. The *_log1p variants fuse signed_log1p with the
// scaler so `scaler.fit_transform(signed_log1p(x))` — two full
// materializations — collapses into one output matrix with bit-identical
// values (same per-element arithmetic, same iteration order).
#pragma once

#include <vector>

#include "src/data/view.hpp"

namespace iotax::data {

class StandardScaler {
 public:
  /// Learn per-column mean/stddev from the training matrix. Constant
  /// columns get stddev 1 so they map to zero rather than NaN.
  void fit(const MatrixView& x);

  /// (x - mean) / stddev, column-wise. Must be fit first.
  Matrix transform(const MatrixView& x) const;

  Matrix fit_transform(const MatrixView& x);

  /// fit() on signed_log1p(x) without materializing the log matrix.
  void fit_log1p(const MatrixView& x);

  /// transform() of signed_log1p(x) without the intermediate matrix;
  /// bit-identical to transform(signed_log1p(x)).
  Matrix transform_log1p(const MatrixView& x) const;

  Matrix fit_transform_log1p(const MatrixView& x);

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

  /// Rebuild a fitted scaler from stored parameters (model loading).
  static StandardScaler from_params(std::vector<double> means,
                                    std::vector<double> stddevs);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// Signed log1p of one value: sign(x) * log10(1 + |x|). Compresses byte
/// counts spanning 10 orders of magnitude while keeping zero at zero.
double signed_log1p_value(double v);

/// Element-wise signed log1p (materializes; prefer the scaler's fused
/// *_log1p methods on hot paths).
Matrix signed_log1p(const MatrixView& x);

}  // namespace iotax::data
