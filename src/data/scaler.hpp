// Feature preprocessing: log1p compression of heavy-tailed I/O counters
// followed by per-column standardisation. Trees don't need it; the MLPs
// and the deep ensemble do.
#pragma once

#include <vector>

#include "src/data/matrix.hpp"

namespace iotax::data {

class StandardScaler {
 public:
  /// Learn per-column mean/stddev from the training matrix. Constant
  /// columns get stddev 1 so they map to zero rather than NaN.
  void fit(const Matrix& x);

  /// (x - mean) / stddev, column-wise. Must be fit first.
  Matrix transform(const Matrix& x) const;

  Matrix fit_transform(const Matrix& x);

  bool fitted() const { return !means_.empty(); }
  const std::vector<double>& means() const { return means_; }
  const std::vector<double>& stddevs() const { return stddevs_; }

  /// Rebuild a fitted scaler from stored parameters (model loading).
  static StandardScaler from_params(std::vector<double> means,
                                    std::vector<double> stddevs);

 private:
  std::vector<double> means_;
  std::vector<double> stddevs_;
};

/// Signed log1p: sign(x) * log10(1 + |x|). Compresses byte counts spanning
/// 10 orders of magnitude while keeping zero at zero.
Matrix signed_log1p(const Matrix& x);

}  // namespace iotax::data
