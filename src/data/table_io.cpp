#include "src/data/table_io.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/csv.hpp"
#include "src/util/str.hpp"

namespace iotax::data {

namespace {

constexpr const char* kMetaCols[] = {
    "__meta_job_id", "__meta_app_id",    "__meta_config_id",
    "__meta_start",  "__meta_end",       "__meta_nodes",
    "__meta_novel",  "__meta_log_fa",    "__meta_log_fg",
    "__meta_log_fl", "__meta_log_fn",    "__meta_target"};

util::Csv table_to_csv(const Table& table) {
  util::Csv csv;
  csv.header = table.names();
  csv.rows.resize(table.n_rows());
  for (auto& row : csv.rows) row.reserve(table.n_cols());
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto col = table.col(c);
    for (std::size_t r = 0; r < col.size(); ++r) {
      // %.17g keeps doubles round-trippable.
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", col[r]);
      csv.rows[r].emplace_back(buf);
    }
  }
  return csv;
}

Table csv_to_table(const util::Csv& csv) {
  Table table(csv.header);
  std::vector<double> row(csv.header.size());
  for (const auto& fields : csv.rows) {
    if (fields.size() != csv.header.size()) {
      throw std::runtime_error("csv_to_table: ragged row");
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      row[i] = util::parse_double(fields[i]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace

void write_table_csv(const std::string& path, const Table& table) {
  util::write_csv_file(path, table_to_csv(table));
}

Table read_table_csv(const std::string& path) {
  return csv_to_table(util::read_csv_file(path));
}

std::span<const char* const> dataset_meta_columns() { return kMetaCols; }

void encode_dataset_meta(const Dataset& ds, std::size_t row0, std::size_t n,
                         std::span<std::vector<double>> out) {
  if (out.size() != std::size(kMetaCols)) {
    throw std::invalid_argument("encode_dataset_meta: column count");
  }
  if (row0 + n > ds.size()) {
    throw std::out_of_range("encode_dataset_meta: row range");
  }
  for (auto& col : out) col.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = ds.meta[row0 + i];
    out[0][i] = static_cast<double>(m.job_id);
    out[1][i] = static_cast<double>(m.app_id);
    out[2][i] = static_cast<double>(m.config_id);
    out[3][i] = m.start_time;
    out[4][i] = m.end_time;
    out[5][i] = static_cast<double>(m.nodes);
    out[6][i] = m.novel_app ? 1.0 : 0.0;
    out[7][i] = m.log_fa;
    out[8][i] = m.log_fg;
    out[9][i] = m.log_fl;
    out[10][i] = m.log_fn;
    out[11][i] = ds.target[row0 + i];
  }
}

void decode_dataset_meta(std::span<const std::span<const double>> cols,
                         std::size_t n, std::vector<JobMeta>* meta,
                         std::vector<double>* target) {
  if (cols.size() != std::size(kMetaCols)) {
    throw std::invalid_argument("decode_dataset_meta: column count");
  }
  for (const auto& c : cols) {
    if (c.size() < n) throw std::out_of_range("decode_dataset_meta: rows");
  }
  meta->reserve(meta->size() + n);
  target->reserve(target->size() + n);
  for (std::size_t i = 0; i < n; ++i) {
    JobMeta m;
    m.job_id = static_cast<std::uint64_t>(std::llround(cols[0][i]));
    m.app_id = static_cast<std::uint64_t>(std::llround(cols[1][i]));
    m.config_id = static_cast<std::uint64_t>(std::llround(cols[2][i]));
    m.start_time = cols[3][i];
    m.end_time = cols[4][i];
    m.nodes = static_cast<std::uint32_t>(std::llround(cols[5][i]));
    m.novel_app = cols[6][i] != 0.0;
    m.log_fa = cols[7][i];
    m.log_fg = cols[8][i];
    m.log_fl = cols[9][i];
    m.log_fn = cols[10][i];
    meta->push_back(m);
    target->push_back(cols[11][i]);
  }
}

void write_dataset_csv(const std::string& path, const Dataset& ds) {
  Table combined = ds.features;
  std::vector<std::vector<double>> meta_cols(std::size(kMetaCols));
  encode_dataset_meta(ds, 0, ds.size(), meta_cols);
  for (std::size_t c = 0; c < std::size(kMetaCols); ++c) {
    combined.add_column(kMetaCols[c], std::move(meta_cols[c]));
  }
  write_table_csv(path, combined);
}

Dataset read_dataset_csv(const std::string& path,
                         const std::string& system_name) {
  const Table combined = read_table_csv(path);
  Dataset ds;
  ds.system_name = system_name;
  std::vector<std::string> feature_names;
  for (const auto& name : combined.names()) {
    if (!util::starts_with(name, "__meta_")) feature_names.push_back(name);
  }
  ds.features = combined.select(feature_names);
  const std::size_t n = combined.n_rows();
  std::vector<std::span<const double>> meta_spans;
  meta_spans.reserve(std::size(kMetaCols));
  for (const char* name : kMetaCols) meta_spans.push_back(combined.col(name));
  decode_dataset_meta(meta_spans, n, &ds.meta, &ds.target);
  return ds;
}

}  // namespace iotax::data
