#include "src/data/table_io.hpp"

#include <cmath>
#include <stdexcept>

#include "src/util/csv.hpp"
#include "src/util/str.hpp"

namespace iotax::data {

namespace {

constexpr const char* kMetaCols[] = {
    "__meta_job_id", "__meta_app_id",    "__meta_config_id",
    "__meta_start",  "__meta_end",       "__meta_nodes",
    "__meta_novel",  "__meta_log_fa",    "__meta_log_fg",
    "__meta_log_fl", "__meta_log_fn",    "__meta_target"};

util::Csv table_to_csv(const Table& table) {
  util::Csv csv;
  csv.header = table.names();
  csv.rows.resize(table.n_rows());
  for (auto& row : csv.rows) row.reserve(table.n_cols());
  for (std::size_t c = 0; c < table.n_cols(); ++c) {
    const auto col = table.col(c);
    for (std::size_t r = 0; r < col.size(); ++r) {
      // %.17g keeps doubles round-trippable.
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", col[r]);
      csv.rows[r].emplace_back(buf);
    }
  }
  return csv;
}

Table csv_to_table(const util::Csv& csv) {
  Table table(csv.header);
  std::vector<double> row(csv.header.size());
  for (const auto& fields : csv.rows) {
    if (fields.size() != csv.header.size()) {
      throw std::runtime_error("csv_to_table: ragged row");
    }
    for (std::size_t i = 0; i < fields.size(); ++i) {
      row[i] = util::parse_double(fields[i]);
    }
    table.add_row(row);
  }
  return table;
}

}  // namespace

void write_table_csv(const std::string& path, const Table& table) {
  util::write_csv_file(path, table_to_csv(table));
}

Table read_table_csv(const std::string& path) {
  return csv_to_table(util::read_csv_file(path));
}

void write_dataset_csv(const std::string& path, const Dataset& ds) {
  Table combined = ds.features;
  const std::size_t n = ds.size();
  std::vector<std::vector<double>> meta_cols(std::size(kMetaCols),
                                             std::vector<double>(n));
  for (std::size_t i = 0; i < n; ++i) {
    const auto& m = ds.meta[i];
    meta_cols[0][i] = static_cast<double>(m.job_id);
    meta_cols[1][i] = static_cast<double>(m.app_id);
    meta_cols[2][i] = static_cast<double>(m.config_id);
    meta_cols[3][i] = m.start_time;
    meta_cols[4][i] = m.end_time;
    meta_cols[5][i] = static_cast<double>(m.nodes);
    meta_cols[6][i] = m.novel_app ? 1.0 : 0.0;
    meta_cols[7][i] = m.log_fa;
    meta_cols[8][i] = m.log_fg;
    meta_cols[9][i] = m.log_fl;
    meta_cols[10][i] = m.log_fn;
    meta_cols[11][i] = ds.target[i];
  }
  for (std::size_t c = 0; c < std::size(kMetaCols); ++c) {
    combined.add_column(kMetaCols[c], std::move(meta_cols[c]));
  }
  write_table_csv(path, combined);
}

Dataset read_dataset_csv(const std::string& path,
                         const std::string& system_name) {
  const Table combined = read_table_csv(path);
  Dataset ds;
  ds.system_name = system_name;
  std::vector<std::string> feature_names;
  for (const auto& name : combined.names()) {
    if (!util::starts_with(name, "__meta_")) feature_names.push_back(name);
  }
  ds.features = combined.select(feature_names);
  const std::size_t n = combined.n_rows();
  ds.meta.resize(n);
  ds.target.resize(n);
  const auto col = [&combined](const char* name) {
    return combined.col(name);
  };
  const auto job = col("__meta_job_id");
  const auto app = col("__meta_app_id");
  const auto cfg = col("__meta_config_id");
  const auto start = col("__meta_start");
  const auto end = col("__meta_end");
  const auto nodes = col("__meta_nodes");
  const auto novel = col("__meta_novel");
  const auto fa = col("__meta_log_fa");
  const auto fg = col("__meta_log_fg");
  const auto fl = col("__meta_log_fl");
  const auto fn = col("__meta_log_fn");
  const auto target = col("__meta_target");
  for (std::size_t i = 0; i < n; ++i) {
    auto& m = ds.meta[i];
    m.job_id = static_cast<std::uint64_t>(std::llround(job[i]));
    m.app_id = static_cast<std::uint64_t>(std::llround(app[i]));
    m.config_id = static_cast<std::uint64_t>(std::llround(cfg[i]));
    m.start_time = start[i];
    m.end_time = end[i];
    m.nodes = static_cast<std::uint32_t>(std::llround(nodes[i]));
    m.novel_app = novel[i] != 0.0;
    m.log_fa = fa[i];
    m.log_fg = fg[i];
    m.log_fl = fl[i];
    m.log_fn = fn[i];
    ds.target[i] = target[i];
  }
  return ds;
}

}  // namespace iotax::data
