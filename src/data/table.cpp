#include "src/data/table.hpp"

#include <stdexcept>
#include <unordered_set>

namespace iotax::data {

Table::Table(std::vector<std::string> names) : names_(std::move(names)) {
  cols_.resize(names_.size());
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    if (!seen.insert(n).second) {
      throw std::invalid_argument("Table: duplicate column name '" + n + "'");
    }
  }
}

bool Table::has_column(const std::string& name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::size_t Table::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("Table: no column named '" + name + "'");
}

std::span<const double> Table::col(std::size_t i) const {
  return cols_.at(i).values();
}

std::span<const double> Table::col(const std::string& name) const {
  return cols_[index_of(name)].values();
}

std::vector<double>& Table::mutable_col(std::size_t i) {
  Column& c = cols_.at(i);
  if (c.external) {
    throw std::logic_error("Table::mutable_col: column '" + names_[i] +
                           "' references read-only external storage");
  }
  return c.owned;
}

std::vector<double>& Table::mutable_col(const std::string& name) {
  return mutable_col(index_of(name));
}

double Table::at(std::size_t row, std::size_t col) const {
  const auto values = cols_.at(col).values();
  if (row >= values.size()) throw std::out_of_range("Table::at: row");
  return values[row];
}

void Table::add_column(std::string name, std::vector<double> values) {
  if (has_column(name)) {
    throw std::invalid_argument("Table::add_column: duplicate name '" + name +
                                "'");
  }
  if (!cols_.empty() && values.size() != n_rows()) {
    throw std::invalid_argument("Table::add_column: row count mismatch");
  }
  names_.push_back(std::move(name));
  Column c;
  c.owned = std::move(values);
  cols_.push_back(std::move(c));
}

void Table::add_column_ref(std::string name, std::span<const double> values) {
  if (has_column(name)) {
    throw std::invalid_argument("Table::add_column_ref: duplicate name '" +
                                name + "'");
  }
  if (!cols_.empty() && values.size() != n_rows()) {
    throw std::invalid_argument("Table::add_column_ref: row count mismatch");
  }
  names_.push_back(std::move(name));
  Column c;
  c.ref = values;
  c.external = true;
  cols_.push_back(std::move(c));
}

bool Table::has_external_columns() const {
  for (const auto& c : cols_) {
    if (c.external) return true;
  }
  return false;
}

void Table::reserve_rows(std::size_t n) {
  for (auto& col : cols_) {
    if (!col.external) col.owned.reserve(n);
  }
}

void Table::add_row(std::span<const double> values) {
  if (values.size() != n_cols()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  if (has_external_columns()) {
    throw std::logic_error(
        "Table::add_row: table has read-only external columns");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    cols_[i].owned.push_back(values[i]);
  }
}

Table Table::select(std::span<const std::string> names) const {
  Table out;
  for (const auto& name : names) {
    const auto src = cols_[index_of(name)].values();
    out.add_column(name, std::vector<double>(src.begin(), src.end()));
  }
  return out;
}

Table Table::take(std::span<const std::size_t> rows) const {
  Table out(names_);
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    const auto src = cols_[c].values();
    auto& dst = out.cols_[c].owned;
    dst.reserve(rows.size());
    for (std::size_t r : rows) {
      if (r >= src.size()) throw std::out_of_range("Table::take: row");
      dst.push_back(src[r]);
    }
  }
  return out;
}

Table Table::hcat(const Table& other) const {
  if (n_rows() != other.n_rows() && n_cols() != 0 && other.n_cols() != 0) {
    throw std::invalid_argument("Table::hcat: row count mismatch");
  }
  Table out = *this;
  for (std::size_t c = 0; c < other.n_cols(); ++c) {
    const auto src = other.cols_[c].values();
    out.add_column(other.names_[c],
                   std::vector<double>(src.begin(), src.end()));
  }
  return out;
}

Table Table::vcat(const Table& other) const {
  if (names_ != other.names_) {
    throw std::invalid_argument("Table::vcat: column name mismatch");
  }
  if (has_external_columns()) {
    throw std::logic_error(
        "Table::vcat: table has read-only external columns");
  }
  Table out = *this;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    const auto src = other.cols_[c].values();
    out.cols_[c].owned.insert(out.cols_[c].owned.end(), src.begin(),
                              src.end());
  }
  return out;
}

}  // namespace iotax::data
