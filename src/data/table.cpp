#include "src/data/table.hpp"

#include <stdexcept>
#include <unordered_set>

namespace iotax::data {

Table::Table(std::vector<std::string> names) : names_(std::move(names)) {
  cols_.resize(names_.size());
  std::unordered_set<std::string> seen;
  for (const auto& n : names_) {
    if (!seen.insert(n).second) {
      throw std::invalid_argument("Table: duplicate column name '" + n + "'");
    }
  }
}

bool Table::has_column(const std::string& name) const {
  for (const auto& n : names_) {
    if (n == name) return true;
  }
  return false;
}

std::size_t Table::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < names_.size(); ++i) {
    if (names_[i] == name) return i;
  }
  throw std::out_of_range("Table: no column named '" + name + "'");
}

std::span<const double> Table::col(std::size_t i) const { return cols_.at(i); }

std::span<const double> Table::col(const std::string& name) const {
  return cols_[index_of(name)];
}

std::vector<double>& Table::mutable_col(std::size_t i) { return cols_.at(i); }

std::vector<double>& Table::mutable_col(const std::string& name) {
  return cols_[index_of(name)];
}

double Table::at(std::size_t row, std::size_t col) const {
  return cols_.at(col).at(row);
}

void Table::add_column(std::string name, std::vector<double> values) {
  if (has_column(name)) {
    throw std::invalid_argument("Table::add_column: duplicate name '" + name +
                                "'");
  }
  if (!cols_.empty() && values.size() != n_rows()) {
    throw std::invalid_argument("Table::add_column: row count mismatch");
  }
  names_.push_back(std::move(name));
  cols_.push_back(std::move(values));
}

void Table::reserve_rows(std::size_t n) {
  for (auto& col : cols_) col.reserve(n);
}

void Table::add_row(std::span<const double> values) {
  if (values.size() != n_cols()) {
    throw std::invalid_argument("Table::add_row: column count mismatch");
  }
  for (std::size_t i = 0; i < values.size(); ++i) {
    cols_[i].push_back(values[i]);
  }
}

Table Table::select(std::span<const std::string> names) const {
  Table out;
  for (const auto& name : names) {
    const auto& src = cols_[index_of(name)];
    out.add_column(name, src);
  }
  return out;
}

Table Table::take(std::span<const std::size_t> rows) const {
  Table out(names_);
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    auto& dst = out.cols_[c];
    dst.reserve(rows.size());
    for (std::size_t r : rows) dst.push_back(cols_[c].at(r));
  }
  return out;
}

Table Table::hcat(const Table& other) const {
  if (n_rows() != other.n_rows() && n_cols() != 0 && other.n_cols() != 0) {
    throw std::invalid_argument("Table::hcat: row count mismatch");
  }
  Table out = *this;
  for (std::size_t c = 0; c < other.n_cols(); ++c) {
    out.add_column(other.names_[c], other.cols_[c]);
  }
  return out;
}

Table Table::vcat(const Table& other) const {
  if (names_ != other.names_) {
    throw std::invalid_argument("Table::vcat: column name mismatch");
  }
  Table out = *this;
  for (std::size_t c = 0; c < cols_.size(); ++c) {
    out.cols_[c].insert(out.cols_[c].end(), other.cols_[c].begin(),
                        other.cols_[c].end());
  }
  return out;
}

}  // namespace iotax::data
