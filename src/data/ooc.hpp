// Process-wide out-of-core policy for the data path. One settings block
// decides whether large intermediates (BinnedMatrix code planes, the
// binning quantile scratch) live on the heap or in unlinked mmap spill
// files, and how many rows a streaming pass touches at a time.
//
// Settings are seeded once from the environment on first use:
//   IOTAX_OOC=0|1            force out-of-core off/on (default: off; the
//                            CLI turns it on whenever --store is used)
//   IOTAX_OOC_CHUNK_ROWS     rows per streaming chunk (default 65536)
//   IOTAX_OOC_SPILL_BYTES    spill a code buffer to mmap once it exceeds
//                            this many bytes (default 32 MiB; 0 spills
//                            everything, handy in tests)
//   IOTAX_OOC_DIR            spill directory (default: TMPDIR or /tmp)
//
// Chunking never changes results: the out-of-core binning path is
// bit-identical to the in-RAM path by construction (see binning.cpp).
// Mutate settings() only outside parallel regions — the block is plain
// data read concurrently by worker threads.
#pragma once

#include <cstddef>
#include <string>

namespace iotax::data::ooc {

struct Settings {
  bool enabled = false;
  /// Whether IOTAX_OOC was set explicitly (the CLI's --store default
  /// does not override an explicit env choice).
  bool env_forced = false;
  std::size_t chunk_rows = 65536;
  std::size_t spill_threshold_bytes = 32u << 20;
  std::string spill_dir;
};

/// The live settings block (env-seeded on first call).
Settings& settings();

/// Enable out-of-core mode unless IOTAX_OOC explicitly disabled it.
/// Called by the CLI when a --store dataset source is selected.
void enable_for_store();

/// The per-pass materialized budget implied by the current settings:
/// chunk_rows doubles plus the spill threshold. Reported in bench JSON
/// so the peak-bytes gate has a denominator.
std::size_t chunk_budget_bytes();

}  // namespace iotax::data::ooc
