// A fault plan: per-class corruption rates for one deterministic
// injection pass over a telemetry archive. Plans are plain JSON so an
// experiment can version them next to its presets:
//
//   {"seed": 7, "mangle": 0.05, "truncate": 0.1, "bad_throughput": 0.02}
//
// Unknown keys are rejected (a typo like "mange" must not silently run
// a zero-fault plan), and every rate is validated to [0, 1).
#pragma once

#include <cstdint>
#include <string>

#include "src/util/json.hpp"

namespace iotax::faults {

struct FaultPlan {
  // Byte-level faults, applied to the serialized archive.
  double truncate = 0.0;  // fraction of the archive's tail bytes cut off
  double mangle = 0.0;    // P(record's bytes corrupted in place)

  // Record-level faults, applied before serialization.
  double drop = 0.0;            // P(record silently removed)
  double duplicate = 0.0;       // P(record emitted a second time)
  double zero_counters = 0.0;   // P(POSIX/MPI-IO counters zeroed out)
  double bad_throughput = 0.0;  // P(agg_perf_mib replaced by NaN or -1)
  double clock_skew = 0.0;      // P(record's clock shifted by skew_seconds)
  double reorder = 0.0;         // P(adjacent records swapped)

  /// Clock offset applied by the clock_skew fault (LMT vs. Cobalt style
  /// skew: the job moves, the storage timeline does not).
  double skew_seconds = 300.0;

  /// Seed for the injector's root RNG; every fault class forks its own
  /// stream from it, so changing one rate never perturbs another
  /// class's sampling.
  std::uint64_t seed = 0xfa0175ULL;

  /// Throws std::invalid_argument if any rate is outside [0, 1) or
  /// skew_seconds is not finite.
  void validate() const;

  /// True when every rate is exactly zero: injection is guaranteed to be
  /// a byte-identical passthrough.
  bool all_zero() const;

  util::Json to_json() const;

  /// Parse a plan object. Missing keys keep their defaults; unknown keys
  /// throw std::invalid_argument. The result is validate()d.
  static FaultPlan from_json(const util::Json& doc);

  /// Load from a JSON file; throws std::runtime_error if unreadable.
  static FaultPlan from_file(const std::string& path);
};

}  // namespace iotax::faults
