// A chaos plan: process- and connection-level faults for the serving
// fleet, the network-layer sibling of FaultPlan's byte-level faults.
// Where FaultPlan corrupts records probabilistically, a ChaosPlan is a
// *script*: each event names the exact router-ingress request count at
// which it fires and the exact shard it targets, so a test can state
// its expected supervisor counters (restarts, kills) as ground truth
// instead of sleeping and hoping.
//
//   {"seed": 7, "accept_delay_ms": 0, "events": [
//     {"at_request": 100, "action": "kill",  "group": 0, "replica": 1},
//     {"at_request": 400, "action": "hang",  "group": 1, "replica": 0},
//     {"at_request": 700, "action": "drop",  "group": 0, "replica": 0},
//     {"at_request": 900, "action": "delay", "group": 1, "replica": 1,
//      "delay_ms": 5}]}
//
// Unknown keys are rejected, same as FaultPlan: a typo must not
// silently run a zero-chaos plan and vacuously pass the smoke test.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/util/json.hpp"

namespace iotax::faults {

enum class ChaosAction : std::uint8_t {
  kKill = 0,   // SIGKILL the shard process (supervisor must restart it)
  kHang = 1,   // SIGSTOP the shard: alive but silent; health pings time
               // out, supervisor SIGKILLs and restarts it
  kDrop = 2,   // router drops its backhaul connection to the shard's
               // group mid-conversation (client-side reset, no process
               // harm — exercises reconnect, not restart)
  kDelay = 3,  // router stalls the request delay_ms before forwarding
};

const char* chaos_action_name(ChaosAction action);
bool chaos_action_from_name(std::string_view name, ChaosAction* out);

struct ChaosEvent {
  /// Fires when the router has admitted this many predict requests
  /// (1-based: at_request = 1 fires before the first forward).
  std::uint64_t at_request = 0;
  ChaosAction action = ChaosAction::kKill;
  std::size_t group = 0;
  std::size_t replica = 0;
  std::uint64_t delay_ms = 0;  // kDelay only
};

struct ChaosPlan {
  /// Seed forwarded to the router's retry jitter RNG so a replayed plan
  /// reproduces the same backoff schedule.
  std::uint64_t seed = 0xc0a5ULL;

  /// Sleep applied by the router to every accepted client connection
  /// before its first read — models a slow accept path.
  std::uint64_t accept_delay_ms = 0;

  /// Events sorted by at_request (from_json enforces the order so the
  /// router can walk the list with a single cursor).
  std::vector<ChaosEvent> events;

  bool empty() const { return accept_delay_ms == 0 && events.empty(); }

  /// Ground truth for supervisor counters: kills + hangs each force one
  /// shard restart; drops and delays do not touch the process.
  std::size_t expected_restarts() const;
  std::size_t count(ChaosAction action) const;

  /// Throws std::invalid_argument when an event is out of order, has
  /// at_request == 0, or targets group/replica >= the given shape
  /// (pass 0 to skip the shape check at parse time).
  void validate(std::size_t n_groups = 0, std::size_t n_replicas = 0) const;

  util::Json to_json() const;

  /// Parse a plan object. Missing keys keep defaults; unknown keys
  /// throw. The result is validate()d (shape-blind).
  static ChaosPlan from_json(const util::Json& doc);

  /// Load from a JSON file; throws std::runtime_error if unreadable.
  static ChaosPlan from_file(const std::string& path);
};

}  // namespace iotax::faults
