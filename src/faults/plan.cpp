#include "src/faults/plan.hpp"

#include <cmath>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iotax::faults {

namespace {

struct RateField {
  const char* key;
  double FaultPlan::* member;
};

constexpr RateField kRates[] = {
    {"truncate", &FaultPlan::truncate},
    {"mangle", &FaultPlan::mangle},
    {"drop", &FaultPlan::drop},
    {"duplicate", &FaultPlan::duplicate},
    {"zero_counters", &FaultPlan::zero_counters},
    {"bad_throughput", &FaultPlan::bad_throughput},
    {"clock_skew", &FaultPlan::clock_skew},
    {"reorder", &FaultPlan::reorder},
};

}  // namespace

void FaultPlan::validate() const {
  for (const auto& f : kRates) {
    const double v = this->*(f.member);
    if (!(v >= 0.0 && v < 1.0)) {
      throw std::invalid_argument("fault plan: rate '" + std::string(f.key) +
                                  "' must be in [0, 1)");
    }
  }
  if (!std::isfinite(skew_seconds)) {
    throw std::invalid_argument("fault plan: skew_seconds must be finite");
  }
}

bool FaultPlan::all_zero() const {
  for (const auto& f : kRates) {
    if (this->*(f.member) != 0.0) return false;
  }
  return true;
}

util::Json FaultPlan::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("seed", static_cast<double>(seed));
  for (const auto& f : kRates) doc.set(f.key, this->*(f.member));
  doc.set("skew_seconds", skew_seconds);
  return doc;
}

FaultPlan FaultPlan::from_json(const util::Json& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("fault plan: document must be a JSON object");
  }
  FaultPlan plan;
  for (const auto& [key, value] : doc.items()) {
    if (key == "seed") {
      const auto seed = value.as_int();
      if (seed < 0) throw std::invalid_argument("fault plan: negative seed");
      plan.seed = static_cast<std::uint64_t>(seed);
      continue;
    }
    if (key == "skew_seconds") {
      plan.skew_seconds = value.as_double();
      continue;
    }
    bool matched = false;
    for (const auto& f : kRates) {
      if (key == f.key) {
        plan.*(f.member) = value.as_double();
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw std::invalid_argument("fault plan: unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("fault plan: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(util::Json::parse(buf.str()));
}

}  // namespace iotax::faults
