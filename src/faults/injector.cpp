#include "src/faults/injector.hpp"

#include <cstring>
#include <fstream>
#include <limits>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "src/obs/metrics.hpp"
#include "src/telemetry/binary_log.hpp"
#include "src/util/rng.hpp"

namespace iotax::faults {

namespace {

// Stream ids for the per-class RNG forks. Each fault class draws from
// its own stream so changing one rate never shifts another class's
// sampling (and therefore never silently changes the ground truth of an
// unrelated experiment axis).
enum Stream : std::uint64_t {
  kDropStream = 1,
  kDuplicateStream,
  kZeroStream,
  kBadThroughputStream,
  kClockSkewStream,
  kReorderStream,
  kMangleStream,
};

/// A record headed for the corrupted archive, with the fault flags the
/// ground-truth simulation needs downstream.
struct Tagged {
  telemetry::JobLogRecord rec;
  bool bad_throughput = false;
};

/// Half-open byte span of one serialized record within the archive.
struct Span {
  std::size_t begin = 0;
  std::size_t end = 0;
};

std::size_t header_bytes(bool binary) {
  // Binary container: 8-byte magic + u32 version + u32 count.
  return binary ? sizeof(telemetry::kBinaryMagic) + 2 * sizeof(std::uint32_t)
                : 0;
}

std::string serialize(const std::vector<Tagged>& work, bool binary,
                      std::vector<Span>* spans) {
  std::ostringstream out(std::ios::binary);
  spans->clear();
  spans->reserve(work.size());
  if (binary) {
    std::vector<telemetry::JobLogRecord> records;
    records.reserve(work.size());
    for (const auto& t : work) records.push_back(t.rec);
    telemetry::write_binary_archive(out, records);
    const std::string bytes = out.str();
    // Recover record boundaries by walking the framing we just wrote.
    std::size_t pos = header_bytes(true);
    for (std::size_t i = 0; i < work.size(); ++i) {
      std::uint32_t size = 0;
      std::memcpy(&size, bytes.data() + pos, sizeof(size));
      const std::size_t end = pos + 2 * sizeof(std::uint32_t) + size;
      spans->push_back({pos, end});
      pos = end;
    }
    return bytes;
  }
  std::size_t pos = 0;
  for (const auto& t : work) {
    telemetry::write_record(out, t.rec);
    const std::size_t end = static_cast<std::size_t>(out.tellp());
    spans->push_back({pos, end});
    pos = end;
  }
  return out.str();
}

/// Decide where the tail cut lands. Returns bytes.size() (no cut) when
/// the truncate rate is zero. The cut always lands past the container
/// header and — for text — on a line boundary strictly inside a record,
/// so the partially kept record parses as exactly one kTruncated entry.
std::size_t choose_cut(const std::string& bytes, const std::vector<Span>& spans,
                       bool binary, double rate) {
  if (rate == 0.0 || spans.empty()) return bytes.size();
  const auto total = bytes.size();
  auto cut_bytes = static_cast<std::size_t>(
      static_cast<double>(total) * rate + 0.5);
  if (cut_bytes == 0) cut_bytes = 1;
  std::size_t target = total - cut_bytes;
  // Keep the container header (and at least one byte of the first
  // record) so the loss is a record-level truncation, not a refused
  // container.
  const std::size_t min_keep = spans.front().begin + 1;
  if (target < min_keep) target = min_keep;
  if (binary) return target;  // any mid-stream cut maps to kTruncated

  // Text: find the record the target lands in (or the boundary case
  // where it lands exactly at a record's end — then cut into the next).
  std::size_t j = 0;
  while (j < spans.size() && spans[j].end <= target) ++j;
  if (j == spans.size()) j = spans.size() - 1;  // unreachable guard
  // Snap back to the last newline at or before the target that keeps at
  // least one line of record j and does not complete it.
  const std::size_t lo = spans[j].begin;
  const std::size_t hi = std::min(target, spans[j].end - 2);
  std::size_t cut = std::string::npos;
  if (hi > lo) {
    const auto nl = bytes.rfind('\n', hi - 1);
    if (nl != std::string::npos && nl >= lo) cut = nl + 1;
  }
  if (cut == std::string::npos) {
    // Target sits inside record j's first line: keep that full line.
    cut = bytes.find('\n', lo) + 1;
  }
  return cut;
}

}  // namespace

std::size_t InjectionReport::injected_total() const {
  return dropped + duplicated + zeroed + bad_throughput + skewed + reordered +
         mangled + truncated_records;
}

std::size_t InjectionReport::expected_total() const {
  std::size_t total = 0;
  for (const auto n : expected_quarantine) total += n;
  return total;
}

util::Json InjectionReport::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("input_records", input_records);
  doc.set("written_records", written_records);
  util::Json injected = util::Json::object();
  injected.set("dropped", dropped);
  injected.set("duplicated", duplicated);
  injected.set("zeroed", zeroed);
  injected.set("bad_throughput", bad_throughput);
  injected.set("skewed", skewed);
  injected.set("reordered", reordered);
  injected.set("mangled", mangled);
  injected.set("truncated_records", truncated_records);
  injected.set("truncated_bytes", truncated_bytes);
  doc.set("injected", std::move(injected));
  util::Json expected = util::Json::object();
  for (std::size_t i = 0; i < util::kReasonCount; ++i) {
    if (expected_quarantine[i] != 0) {
      expected.set(util::reason_name(static_cast<util::Reason>(i)),
                   expected_quarantine[i]);
    }
  }
  doc.set("expected_quarantine", std::move(expected));
  doc.set("expected_total", expected_total());
  return doc;
}

InjectionReport InjectionReport::from_json(const util::Json& doc) {
  InjectionReport rep;
  const auto get = [](const util::Json& obj, const char* key) {
    const auto* v = obj.find(key);
    return v == nullptr ? std::size_t{0}
                        : static_cast<std::size_t>(v->as_int());
  };
  rep.input_records = get(doc, "input_records");
  rep.written_records = get(doc, "written_records");
  const auto& injected = doc.at("injected");
  rep.dropped = get(injected, "dropped");
  rep.duplicated = get(injected, "duplicated");
  rep.zeroed = get(injected, "zeroed");
  rep.bad_throughput = get(injected, "bad_throughput");
  rep.skewed = get(injected, "skewed");
  rep.reordered = get(injected, "reordered");
  rep.mangled = get(injected, "mangled");
  rep.truncated_records = get(injected, "truncated_records");
  rep.truncated_bytes = get(injected, "truncated_bytes");
  for (const auto& [key, value] : doc.at("expected_quarantine").items()) {
    bool matched = false;
    for (std::size_t i = 0; i < util::kReasonCount; ++i) {
      if (key == util::reason_name(static_cast<util::Reason>(i))) {
        rep.expected_quarantine[i] = static_cast<std::size_t>(value.as_int());
        matched = true;
        break;
      }
    }
    if (!matched) {
      throw std::invalid_argument("injection report: unknown reason '" + key +
                                  "'");
    }
  }
  return rep;
}

InjectionResult inject_archive_bytes(
    const std::vector<telemetry::JobLogRecord>& records, const FaultPlan& plan,
    bool binary) {
  plan.validate();
  InjectionResult out;
  auto& rep = out.report;
  rep.input_records = records.size();
  const util::Rng root(plan.seed);

  // ---- Record-level faults, one forked stream per class.
  std::vector<Tagged> work;
  work.reserve(records.size());
  {
    auto rng = root.fork(kDropStream);
    for (const auto& rec : records) {
      if (rng.bernoulli(plan.drop)) {
        ++rep.dropped;
        continue;
      }
      work.push_back({rec});
    }
  }
  {
    auto rng = root.fork(kDuplicateStream);
    std::vector<Tagged> doubled;
    doubled.reserve(work.size());
    for (auto& t : work) {
      const bool dup = rng.bernoulli(plan.duplicate);
      doubled.push_back(std::move(t));
      if (dup) {
        doubled.push_back(doubled.back());
        ++rep.duplicated;
      }
    }
    work = std::move(doubled);
  }
  {
    auto rng = root.fork(kZeroStream);
    for (auto& t : work) {
      if (!rng.bernoulli(plan.zero_counters)) continue;
      t.rec.posix.assign(t.rec.posix.size(), 0.0);
      t.rec.mpiio.assign(t.rec.mpiio.size(), 0.0);
      ++rep.zeroed;
    }
  }
  {
    auto rng = root.fork(kBadThroughputStream);
    for (auto& t : work) {
      if (!rng.bernoulli(plan.bad_throughput)) continue;
      t.rec.agg_perf_mib = rng.bernoulli(0.5)
                               ? std::numeric_limits<double>::quiet_NaN()
                               : -t.rec.agg_perf_mib;
      t.bad_throughput = true;
      ++rep.bad_throughput;
    }
  }
  {
    auto rng = root.fork(kClockSkewStream);
    for (auto& t : work) {
      if (!rng.bernoulli(plan.clock_skew)) continue;
      t.rec.start_time += plan.skew_seconds;
      t.rec.end_time += plan.skew_seconds;
      ++rep.skewed;
    }
  }
  {
    auto rng = root.fork(kReorderStream);
    for (std::size_t i = 0; i + 1 < work.size();) {
      if (rng.bernoulli(plan.reorder)) {
        std::swap(work[i], work[i + 1]);
        ++rep.reordered;
        i += 2;  // a swapped pair is not re-entered
      } else {
        ++i;
      }
    }
  }
  rep.written_records = work.size();

  // ---- Serialize, then byte-level faults.
  std::vector<Span> spans;
  out.bytes = serialize(work, binary, &spans);

  // Truncation first: its position depends only on the byte length,
  // which mangling (a same-length overwrite) does not change; records
  // the cut removes are then excluded from mangling so each corrupted
  // record has exactly one expected defect.
  const std::size_t cut = choose_cut(out.bytes, spans, binary, plan.truncate);
  std::size_t fully_kept = 0;  // records entirely inside [0, cut)
  while (fully_kept < spans.size() && spans[fully_kept].end <= cut) {
    ++fully_kept;
  }
  rep.truncated_records = work.size() - fully_kept;
  rep.truncated_bytes = out.bytes.size() - cut;

  std::vector<bool> mangled(work.size(), false);
  {
    auto rng = root.fork(kMangleStream);
    for (std::size_t i = 0; i < work.size(); ++i) {
      if (!rng.bernoulli(plan.mangle) || i >= fully_kept) continue;
      mangled[i] = true;
      ++rep.mangled;
      if (binary) {
        // Flip one payload byte: the CRC catches it, the framing
        // survives, and the parser resynchronises at the next record.
        const std::size_t payload_begin =
            spans[i].begin + 2 * sizeof(std::uint32_t);
        const auto off = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(spans[i].end - payload_begin) - 1));
        out.bytes[payload_begin + off] =
            static_cast<char>(out.bytes[payload_begin + off] ^ 0xff);
      } else {
        // Overwrite the agg_perf_mib header value in place (every record
        // has one): the field fails to parse as a number and the record
        // is quarantined without breaking the framing of its neighbours.
        constexpr const char* kField = "# agg_perf_mib: ";
        const auto field = out.bytes.find(kField, spans[i].begin);
        const auto value_begin = field + std::strlen(kField);
        const auto value_end = out.bytes.find('\n', value_begin);
        for (std::size_t p = value_begin; p < value_end; ++p) {
          out.bytes[p] = 'x';
        }
      }
    }
  }
  out.bytes.resize(cut);

  // ---- Ground truth: simulate the detection pipeline exactly.
  auto& expected = rep.expected_quarantine;
  const auto bump = [&expected](util::Reason r, std::size_t n = 1) {
    expected[static_cast<std::size_t>(r)] += n;
  };
  if (binary) {
    // The header's record count makes every lost record detectable.
    bump(util::Reason::kTruncated, rep.truncated_records);
    bump(util::Reason::kBadChecksum, rep.mangled);
  } else {
    // Text has no record count: fully lost records vanish silently; the
    // partially kept one (the cut always lands on a line boundary inside
    // a record) parses as a single truncated record.
    if (fully_kept < work.size()) bump(util::Reason::kTruncated, 1);
    bump(util::Reason::kBadNumber, rep.mangled);
  }
  // Parse survivors flow into the ingest checks, which reject bad
  // throughput before a record can claim its job id (same order as
  // build_dataset_ingest).
  std::unordered_set<std::uint64_t> seen;
  for (std::size_t i = 0; i < fully_kept; ++i) {
    if (mangled[i]) continue;
    if (work[i].bad_throughput) {
      bump(util::Reason::kBadThroughput);
    } else if (!seen.insert(work[i].rec.job_id).second) {
      bump(util::Reason::kDuplicateJobId);
    }
  }

  IOTAX_OBS_COUNT("faults.injected", rep.injected_total());
  return out;
}

InjectionReport inject_archive(const std::string& in_path,
                               const std::string& out_path, bool binary,
                               const FaultPlan& plan) {
  std::vector<telemetry::JobLogRecord> records =
      binary ? telemetry::read_binary_archive_file(in_path, /*strict=*/true)
             : telemetry::parse_archive_file(in_path, /*strict=*/true);
  auto result = inject_archive_bytes(records, plan, binary);
  std::ofstream out(out_path, std::ios::binary);
  if (!out) throw std::runtime_error("inject: cannot open " + out_path);
  out.write(result.bytes.data(),
            static_cast<std::streamsize>(result.bytes.size()));
  if (!out) throw std::runtime_error("inject: write failed for " + out_path);
  return result.report;
}

}  // namespace iotax::faults
