// Seed-deterministic fault injection for telemetry archives.
//
// The injector corrupts a clean job-log archive (text or binary) the way
// production telemetry actually breaks — truncated logs, dropped and
// duplicated records, NaN/negative throughput, zeroed counters, clock
// skew between collectors, out-of-order records, mangled fields — and
// computes the exact quarantine counts the hardened parse+ingest
// pipeline must report, by simulating its detection rules. Detectable
// faults (mangle, truncation, bad throughput, duplication) are asserted
// count-for-count against that ground truth; silent faults (drop,
// zeroed counters, clock skew, reorder) leave the archive well-formed
// and show up only as bounded drift in the downstream taxonomy report.
//
// Determinism contract: identical (plan, input) produce identical
// output bytes and report, on any thread count; a plan with all rates
// zero is a byte-identical passthrough.
#pragma once

#include <array>
#include <cstddef>
#include <string>
#include <vector>

#include "src/faults/plan.hpp"
#include "src/telemetry/darshan_log.hpp"
#include "src/util/quarantine.hpp"

namespace iotax::faults {

/// What one injection pass did, plus the quarantine counts the lenient
/// parse + ingest pipeline is expected to report for the corrupted
/// archive (exact, not a bound).
struct InjectionReport {
  std::size_t input_records = 0;
  /// Records serialized into the corrupted archive (after drop and
  /// duplicate, before the tail cut removes bytes).
  std::size_t written_records = 0;

  std::size_t dropped = 0;
  std::size_t duplicated = 0;
  std::size_t zeroed = 0;
  std::size_t bad_throughput = 0;
  std::size_t skewed = 0;
  std::size_t reordered = 0;  // adjacent swaps applied
  std::size_t mangled = 0;
  std::size_t truncated_records = 0;  // fully or partially cut by truncate
  std::size_t truncated_bytes = 0;

  /// Per-reason quarantine counts the pipeline must produce, indexed by
  /// util::Reason.
  std::array<std::size_t, util::kReasonCount> expected_quarantine{};

  std::size_t injected_total() const;
  std::size_t expected_total() const;
  std::size_t expected(util::Reason reason) const {
    return expected_quarantine[static_cast<std::size_t>(reason)];
  }

  util::Json to_json() const;
  static InjectionReport from_json(const util::Json& doc);
};

struct InjectionResult {
  std::string bytes;  // the corrupted archive
  InjectionReport report;
};

/// Corrupt a clean record list into archive bytes (text darshan format
/// or the binary container). Publishes the `faults.injected` obs
/// counter when observability is on.
InjectionResult inject_archive_bytes(
    const std::vector<telemetry::JobLogRecord>& records,
    const FaultPlan& plan, bool binary);

/// File-to-file convenience: strict-parse `in_path` (it must be clean),
/// inject, write the corrupted archive to `out_path`.
InjectionReport inject_archive(const std::string& in_path,
                               const std::string& out_path, bool binary,
                               const FaultPlan& plan);

}  // namespace iotax::faults
