#include "src/faults/chaos.hpp"

#include <fstream>
#include <sstream>
#include <stdexcept>

namespace iotax::faults {

namespace {

constexpr const char* kActionNames[] = {"kill", "hang", "drop", "delay"};

std::uint64_t parse_u64(const util::Json& value, const char* what) {
  const long long v = value.as_int();
  if (v < 0) {
    throw std::invalid_argument(std::string("chaos plan: negative ") + what);
  }
  return static_cast<std::uint64_t>(v);
}

}  // namespace

const char* chaos_action_name(ChaosAction action) {
  return kActionNames[static_cast<std::size_t>(action)];
}

bool chaos_action_from_name(std::string_view name, ChaosAction* out) {
  for (std::size_t i = 0; i < 4; ++i) {
    if (name == kActionNames[i]) {
      *out = static_cast<ChaosAction>(i);
      return true;
    }
  }
  return false;
}

std::size_t ChaosPlan::expected_restarts() const {
  return count(ChaosAction::kKill) + count(ChaosAction::kHang);
}

std::size_t ChaosPlan::count(ChaosAction action) const {
  std::size_t n = 0;
  for (const auto& e : events) {
    if (e.action == action) ++n;
  }
  return n;
}

void ChaosPlan::validate(std::size_t n_groups, std::size_t n_replicas) const {
  std::uint64_t prev = 0;
  for (const auto& e : events) {
    if (e.at_request == 0) {
      throw std::invalid_argument("chaos plan: at_request must be >= 1");
    }
    if (e.at_request < prev) {
      throw std::invalid_argument(
          "chaos plan: events must be sorted by at_request");
    }
    prev = e.at_request;
    if (e.action == ChaosAction::kDelay && e.delay_ms == 0) {
      throw std::invalid_argument(
          "chaos plan: delay event needs delay_ms > 0");
    }
    if (e.action != ChaosAction::kDelay && e.delay_ms != 0) {
      throw std::invalid_argument(
          "chaos plan: delay_ms only valid on delay events");
    }
    if (n_groups != 0 && e.group >= n_groups) {
      throw std::invalid_argument(
          "chaos plan: event group " + std::to_string(e.group) +
          " outside fleet of " + std::to_string(n_groups) + " group(s)");
    }
    if (n_replicas != 0 && e.replica >= n_replicas) {
      throw std::invalid_argument(
          "chaos plan: event replica " + std::to_string(e.replica) +
          " outside group of " + std::to_string(n_replicas) + " replica(s)");
    }
  }
}

util::Json ChaosPlan::to_json() const {
  util::Json doc = util::Json::object();
  doc.set("seed", static_cast<double>(seed));
  doc.set("accept_delay_ms", static_cast<double>(accept_delay_ms));
  util::Json list = util::Json::array();
  for (const auto& e : events) {
    util::Json item = util::Json::object();
    item.set("at_request", static_cast<double>(e.at_request));
    item.set("action", chaos_action_name(e.action));
    item.set("group", e.group);
    item.set("replica", e.replica);
    if (e.action == ChaosAction::kDelay) {
      item.set("delay_ms", static_cast<double>(e.delay_ms));
    }
    list.push_back(std::move(item));
  }
  doc.set("events", std::move(list));
  return doc;
}

ChaosPlan ChaosPlan::from_json(const util::Json& doc) {
  if (!doc.is_object()) {
    throw std::invalid_argument("chaos plan: document must be a JSON object");
  }
  ChaosPlan plan;
  for (const auto& [key, value] : doc.items()) {
    if (key == "seed") {
      plan.seed = parse_u64(value, "seed");
    } else if (key == "accept_delay_ms") {
      plan.accept_delay_ms = parse_u64(value, "accept_delay_ms");
    } else if (key == "events") {
      if (!value.is_array()) {
        throw std::invalid_argument("chaos plan: events must be an array");
      }
      for (std::size_t i = 0; i < value.size(); ++i) {
        const util::Json& ev = value[i];
        if (!ev.is_object()) {
          throw std::invalid_argument("chaos plan: event must be an object");
        }
        ChaosEvent event;
        bool have_at = false;
        bool have_action = false;
        for (const auto& [ekey, evalue] : ev.items()) {
          if (ekey == "at_request") {
            event.at_request = parse_u64(evalue, "at_request");
            have_at = true;
          } else if (ekey == "action") {
            if (!chaos_action_from_name(evalue.as_string(), &event.action)) {
              throw std::invalid_argument("chaos plan: unknown action '" +
                                          evalue.as_string() + "'");
            }
            have_action = true;
          } else if (ekey == "group") {
            event.group =
                static_cast<std::size_t>(parse_u64(evalue, "group"));
          } else if (ekey == "replica") {
            event.replica =
                static_cast<std::size_t>(parse_u64(evalue, "replica"));
          } else if (ekey == "delay_ms") {
            event.delay_ms = parse_u64(evalue, "delay_ms");
          } else {
            throw std::invalid_argument("chaos plan: unknown event key '" +
                                        ekey + "'");
          }
        }
        if (!have_at || !have_action) {
          throw std::invalid_argument(
              "chaos plan: event needs at_request and action");
        }
        plan.events.push_back(event);
      }
    } else {
      throw std::invalid_argument("chaos plan: unknown key '" + key + "'");
    }
  }
  plan.validate();
  return plan;
}

ChaosPlan ChaosPlan::from_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("chaos plan: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return from_json(util::Json::parse(buf.str()));
}

}  // namespace iotax::faults
