#include "src/telemetry/cobalt.hpp"

#include <stdexcept>

namespace iotax::telemetry {

const std::vector<std::string>& cobalt_feature_names() {
  static const std::vector<std::string> names = {
      "COBALT_NODES", "COBALT_CORES", "COBALT_START_TIME", "COBALT_RUNTIME",
      "COBALT_PLACEMENT_SPREAD"};
  return names;
}

const std::string& start_time_feature_name() {
  static const std::string name = "COBALT_START_TIME";
  return name;
}

std::vector<double> cobalt_features(const CobaltRecord& rec) {
  if (rec.end_time < rec.start_time) {
    throw std::invalid_argument("cobalt_features: job ends before it starts");
  }
  return {static_cast<double>(rec.nodes), static_cast<double>(rec.cores),
          rec.start_time, rec.end_time - rec.start_time,
          rec.placement_spread};
}

}  // namespace iotax::telemetry
