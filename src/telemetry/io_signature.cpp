#include "src/telemetry/io_signature.hpp"

#include <cmath>
#include <cstring>
#include <stdexcept>

namespace iotax::telemetry {

double bucket_representative_size(std::size_t bucket) {
  // Geometric midpoints of the Darshan buckets; the last is open-ended so
  // we pick 2 GiB as representative.
  static constexpr double kRep[kSizeBuckets] = {
      50.0,    550.0,   5.5e3,   55.0e3,  550.0e3,
      2.5e6,   7.0e6,   55.0e6,  550.0e6, 2.147e9};
  if (bucket >= kSizeBuckets) {
    throw std::out_of_range("bucket_representative_size: bad bucket");
  }
  return kRep[bucket];
}

namespace {

void check_frac(double v, const char* name) {
  if (v < 0.0 || v > 1.0) {
    throw std::invalid_argument(std::string("IoSignature: ") + name +
                                " not in [0,1]");
  }
}

void check_bucket_sum(const std::array<double, kSizeBuckets>& frac,
                      double volume, const char* name) {
  double sum = 0.0;
  for (double f : frac) {
    if (f < 0.0) {
      throw std::invalid_argument(std::string("IoSignature: negative ") +
                                  name + " bucket");
    }
    sum += f;
  }
  if (volume > 0.0 && std::fabs(sum - 1.0) > 1e-6) {
    throw std::invalid_argument(std::string("IoSignature: ") + name +
                                " bucket fractions must sum to 1");
  }
}

}  // namespace

void IoSignature::validate() const {
  if (bytes_read < 0.0 || bytes_written < 0.0) {
    throw std::invalid_argument("IoSignature: negative byte volume");
  }
  if (n_procs == 0) {
    throw std::invalid_argument("IoSignature: n_procs must be >= 1");
  }
  check_bucket_sum(read_size_frac, bytes_read, "read");
  check_bucket_sum(write_size_frac, bytes_written, "write");
  check_frac(consec_read_frac, "consec_read_frac");
  check_frac(consec_write_frac, "consec_write_frac");
  check_frac(seq_read_frac, "seq_read_frac");
  check_frac(seq_write_frac, "seq_write_frac");
  check_frac(rw_switch_frac, "rw_switch_frac");
  check_frac(mem_unaligned_frac, "mem_unaligned_frac");
  check_frac(file_unaligned_frac, "file_unaligned_frac");
  check_frac(files_shared_frac, "files_shared_frac");
  check_frac(files_readonly_frac, "files_readonly_frac");
  check_frac(files_writeonly_frac, "files_writeonly_frac");
  if (files_readonly_frac + files_writeonly_frac > 1.0 + 1e-9) {
    throw std::invalid_argument(
        "IoSignature: read-only + write-only file fractions exceed 1");
  }
  check_frac(coll_frac, "coll_frac");
  check_frac(nonblocking_frac, "nonblocking_frac");
  check_frac(split_frac, "split_frac");
  if (files_total < 1.0) {
    throw std::invalid_argument("IoSignature: files_total must be >= 1");
  }
  if (opens_per_file < 0.0 || seeks_per_op < 0.0 || stats_per_open < 0.0 ||
      fsyncs < 0.0 || meta_intensity < 0.0) {
    throw std::invalid_argument("IoSignature: negative metadata field");
  }
  if (consec_read_frac > seq_read_frac + 1e-9 ||
      consec_write_frac > seq_write_frac + 1e-9) {
    throw std::invalid_argument(
        "IoSignature: consecutive accesses are a subset of sequential");
  }
}

std::uint64_t IoSignature::content_hash() const {
  // FNV-1a over the raw bytes of every observable field. Doubles are
  // produced deterministically by the generator, so bit-equality is the
  // right notion of "identical observable features".
  std::uint64_t h = 0xcbf29ce484222325ULL;
  const auto mix = [&h](const void* p, std::size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 0x100000001b3ULL;
    }
  };
  const auto mix_d = [&mix](double v) { mix(&v, sizeof(v)); };
  mix_d(bytes_read);
  mix_d(bytes_written);
  mix(&n_procs, sizeof(n_procs));
  for (double f : read_size_frac) mix_d(f);
  for (double f : write_size_frac) mix_d(f);
  mix_d(consec_read_frac);
  mix_d(consec_write_frac);
  mix_d(seq_read_frac);
  mix_d(seq_write_frac);
  mix_d(rw_switch_frac);
  mix_d(mem_unaligned_frac);
  mix_d(file_unaligned_frac);
  mix_d(files_total);
  mix_d(files_shared_frac);
  mix_d(files_readonly_frac);
  mix_d(files_writeonly_frac);
  mix_d(opens_per_file);
  mix_d(seeks_per_op);
  mix_d(stats_per_open);
  mix_d(fsyncs);
  mix_d(meta_intensity);
  const char mpi = uses_mpiio ? 1 : 0;
  mix(&mpi, 1);
  mix_d(coll_frac);
  mix_d(nonblocking_frac);
  mix_d(split_frac);
  return h;
}

}  // namespace iotax::telemetry
