// Compact binary container for job-log archives — the production format
// next to the human-readable text format in darshan_log.hpp. Real Darshan
// ships compressed binary logs and sites keep years of them; a credible
// pipeline needs a dense format with integrity checks.
//
// Layout (little-endian):
//   file header : magic "IOTXBLOG" (8) | u32 version | u32 record count
//   per record  : u32 payload size | u32 CRC32C of payload | payload
//   payload     : fixed header fields, then two sparse counter sections
//                 (u16 count, then (u16 index, f64 value) pairs each)
//
// The reader validates magic, version, counter-index bounds, and each
// record's checksum. In lenient mode, records that fail validation are
// skipped (and counted) by seeking to the next record boundary — the
// framing survives payload corruption.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/telemetry/darshan_log.hpp"

namespace iotax::telemetry {

inline constexpr char kBinaryMagic[8] = {'I', 'O', 'T', 'X',
                                         'B', 'L', 'O', 'G'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// CRC-32C (Castagnoli), bitwise implementation; used for record payloads.
std::uint32_t crc32c(const void* data, std::size_t size,
                     std::uint32_t seed = 0);

/// Serialize records into the binary container.
void write_binary_archive(std::ostream& out,
                          const std::vector<JobLogRecord>& records);
void write_binary_archive_file(const std::string& path,
                               const std::vector<JobLogRecord>& records);

/// Parse a binary container. Strict mode throws std::runtime_error on the
/// first malformed record or header; lenient mode skips bad records and
/// counts them in `stats`.
std::vector<JobLogRecord> read_binary_archive(std::istream& in,
                                              bool strict = true,
                                              ParseStats* stats = nullptr);
std::vector<JobLogRecord> read_binary_archive_file(const std::string& path,
                                                   bool strict = true,
                                                   ParseStats* stats = nullptr);

/// Non-throwing variants. Container-level corruption (bad magic/version,
/// unreadable stream) sets ok=false; per-record corruption is quarantined
/// with its byte offset. When the stream ends early, every record the
/// header promised but the bytes no longer hold is quarantined as
/// `truncated`, so quarantine counts match ground truth exactly even for
/// hard-truncated files.
ParseOutcome read_binary_archive_outcome(std::istream& in,
                                         ParseMode mode = ParseMode::kLenient);
ParseOutcome read_binary_archive_file_outcome(
    const std::string& path, ParseMode mode = ParseMode::kLenient);

}  // namespace iotax::telemetry
