#include "src/telemetry/darshan_log.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "src/telemetry/counters.hpp"
#include "src/util/str.hpp"

namespace iotax::telemetry {

namespace {

constexpr const char* kVersionLine = "# iotax darshan log version: 1.0";
constexpr const char* kEndOfRecord = "# end_of_record";

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Index maps for counter names, built once.
const std::unordered_map<std::string, std::size_t>& posix_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, std::size_t>();
    const auto& names = posix_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) (*m)[names[i]] = i;
    return m;
  }();
  return *map;
}

const std::unordered_map<std::string, std::size_t>& mpiio_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, std::size_t>();
    const auto& names = mpiio_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) (*m)[names[i]] = i;
    return m;
  }();
  return *map;
}

struct HeaderField {
  const char* key;
  bool seen = false;
};

}  // namespace

void write_record(std::ostream& out, const JobLogRecord& rec) {
  if (rec.posix.size() != posix_feature_names().size()) {
    throw std::invalid_argument("write_record: posix counter size mismatch");
  }
  if (rec.mpiio.size() != mpiio_feature_names().size()) {
    throw std::invalid_argument("write_record: mpiio counter size mismatch");
  }
  out << kVersionLine << '\n';
  out << "# jobid: " << rec.job_id << '\n';
  out << "# appid: " << rec.app_id << '\n';
  out << "# configid: " << rec.config_id << '\n';
  out << "# nprocs: " << rec.n_procs << '\n';
  out << "# nodes: " << rec.nodes << '\n';
  out << "# start_time: " << fmt_g(rec.start_time) << '\n';
  out << "# end_time: " << fmt_g(rec.end_time) << '\n';
  out << "# placement_spread: " << fmt_g(rec.placement_spread) << '\n';
  out << "# agg_perf_mib: " << fmt_g(rec.agg_perf_mib) << '\n';
  const auto& pnames = posix_feature_names();
  for (std::size_t i = 0; i < rec.posix.size(); ++i) {
    if (rec.posix[i] == 0.0) continue;  // sparse, like darshan-parser output
    out << "POSIX\t-1\t" << pnames[i] << '\t' << fmt_g(rec.posix[i]) << '\n';
  }
  const auto& mnames = mpiio_feature_names();
  for (std::size_t i = 0; i < rec.mpiio.size(); ++i) {
    if (rec.mpiio[i] == 0.0) continue;
    out << "MPIIO\t-1\t" << mnames[i] << '\t' << fmt_g(rec.mpiio[i]) << '\n';
  }
  out << kEndOfRecord << '\n';
}

void write_archive(const std::string& path,
                   const std::vector<JobLogRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_archive: cannot open " + path);
  for (const auto& rec : records) write_record(out, rec);
}

namespace {

/// How the shared parse core reacts to a defect: strict records it and
/// stops (the throwing entry points re-raise outcome.error); lenient
/// records it and resynchronises at the next record boundary.
enum class OnError { kStopFirst, kLenient };

ParseOutcome parse_core(std::istream& in, OnError on_error) {
  ParseOutcome out;
  std::string line;
  std::size_t line_no = 0;
  std::size_t record_index = 0;  // index of the record being parsed

  JobLogRecord rec;
  bool in_record = false;
  bool record_bad = false;
  bool stop = false;
  // Header completeness tracking for the current record.
  int header_fields_seen = 0;
  constexpr int kRequiredHeaderFields = 9;

  const auto reset = [&] {
    rec = JobLogRecord{};
    rec.posix.assign(posix_feature_names().size(), 0.0);
    rec.mpiio.assign(mpiio_feature_names().size(), 0.0);
    in_record = false;
    record_bad = false;
    header_fields_seen = 0;
  };
  reset();

  const auto record_error = [&](util::Reason reason,
                                const std::string& what) {
    if (!record_bad) {
      // One quarantine entry per corrupt record: the first defect wins.
      out.quarantine.add({reason, rec.job_id, record_index, line_no, what});
    }
    record_bad = true;
    if (on_error == OnError::kStopFirst) {
      out.ok = false;
      out.error = "line " + std::to_string(line_no) + ": " + what;
      stop = true;
    }
  };

  while (!stop && std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;

    if (trimmed == kVersionLine) {
      if (in_record) {
        record_error(util::Reason::kTruncated,
                     "record not terminated before new record");
        ++record_index;
      }
      reset();
      in_record = true;
      continue;
    }
    if (trimmed == kEndOfRecord) {
      if (!in_record) {
        record_error(util::Reason::kMalformedLine,
                     "end_of_record outside a record");
      } else if (header_fields_seen < kRequiredHeaderFields) {
        record_error(util::Reason::kIncompleteHeader, "incomplete header");
      }
      if (in_record && !record_bad) out.records.push_back(rec);
      ++record_index;
      reset();
      continue;
    }
    if (!in_record) {
      record_error(util::Reason::kMalformedLine,
                   "content before version line");
      // Not inside a record: don't let the bad flag leak into the next one.
      record_bad = false;
      continue;
    }
    if (record_bad) continue;  // skip the rest of a corrupt record

    try {
      if (trimmed.front() == '#') {
        const auto colon = trimmed.find(':');
        if (colon == std::string_view::npos) {
          record_error(util::Reason::kMalformedHeader,
                       "malformed header line");
          continue;
        }
        const auto key = util::trim(trimmed.substr(1, colon - 1));
        const auto value = util::trim(trimmed.substr(colon + 1));
        ++header_fields_seen;
        if (key == "jobid") {
          rec.job_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "appid") {
          rec.app_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "configid") {
          rec.config_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "nprocs") {
          rec.n_procs = static_cast<std::uint32_t>(util::parse_int(value));
        } else if (key == "nodes") {
          rec.nodes = static_cast<std::uint32_t>(util::parse_int(value));
        } else if (key == "start_time") {
          rec.start_time = util::parse_double(value);
        } else if (key == "end_time") {
          rec.end_time = util::parse_double(value);
        } else if (key == "placement_spread") {
          rec.placement_spread = util::parse_double(value);
        } else if (key == "agg_perf_mib") {
          rec.agg_perf_mib = util::parse_double(value);
        } else {
          --header_fields_seen;  // unknown header keys are ignored
        }
        continue;
      }
      // Counter line: MODULE \t rank \t NAME \t value
      const auto fields = util::split(std::string(trimmed), '\t');
      if (fields.size() != 4) {
        record_error(util::Reason::kMalformedLine,
                     "counter line must have 4 tab-separated fields");
        continue;
      }
      const auto& module = fields[0];
      const auto& name = fields[2];
      const double value = util::parse_double(fields[3]);
      if (module == "POSIX") {
        const auto it = posix_index().find(name);
        if (it == posix_index().end()) {
          record_error(util::Reason::kUnknownCounter,
                       "unknown POSIX counter '" + name + "'");
          continue;
        }
        rec.posix[it->second] = value;
      } else if (module == "MPIIO") {
        const auto it = mpiio_index().find(name);
        if (it == mpiio_index().end()) {
          record_error(util::Reason::kUnknownCounter,
                       "unknown MPIIO counter '" + name + "'");
          continue;
        }
        rec.mpiio[it->second] = value;
      } else {
        record_error(util::Reason::kUnknownModule,
                     "unknown module '" + module + "'");
      }
    } catch (const std::invalid_argument& e) {
      record_error(util::Reason::kBadNumber, e.what());
    }
  }
  if (in_record && !stop) {
    if (!record_bad) {
      out.quarantine.add({util::Reason::kTruncated, rec.job_id, record_index,
                          line_no, "truncated final record"});
    }
    if (on_error == OnError::kStopFirst) {
      out.ok = false;
      out.error = "line " + std::to_string(line_no) +
                  ": truncated final record";
    }
  }
  return out;
}

}  // namespace

std::vector<JobLogRecord> parse_archive(std::istream& in, bool strict,
                                        ParseStats* stats) {
  // Legacy throwing entry point, now a thin wrapper over the
  // non-throwing core: strict mode re-raises the outcome's first defect
  // with the historical message shape ("darshan parse error at line N:
  // ...") so existing catch sites and tests see identical text.
  auto outcome =
      parse_core(in, strict ? OnError::kStopFirst : OnError::kLenient);
  if (strict && !outcome.ok) {
    throw std::runtime_error("darshan parse error at " + outcome.error);
  }
  if (stats != nullptr) *stats = outcome.stats();
  return std::move(outcome.records);
}

std::vector<JobLogRecord> parse_archive_file(const std::string& path,
                                             bool strict, ParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_archive_file: cannot open " + path);
  return parse_archive(in, strict, stats);
}

ParseOutcome parse_archive_outcome(std::istream& in, ParseMode mode) {
  return parse_core(in, mode == ParseMode::kStrict ? OnError::kStopFirst
                                                   : OnError::kLenient);
}

ParseOutcome parse_archive_file_outcome(const std::string& path,
                                        ParseMode mode) {
  std::ifstream in(path);
  if (!in) {
    ParseOutcome out;
    out.ok = false;
    out.error = "cannot open " + path;
    return out;
  }
  return parse_archive_outcome(in, mode);
}

}  // namespace iotax::telemetry
