#include "src/telemetry/darshan_log.hpp"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>

#include "src/telemetry/counters.hpp"
#include "src/util/str.hpp"

namespace iotax::telemetry {

namespace {

constexpr const char* kVersionLine = "# iotax darshan log version: 1.0";
constexpr const char* kEndOfRecord = "# end_of_record";

std::string fmt_g(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  return buf;
}

// Index maps for counter names, built once.
const std::unordered_map<std::string, std::size_t>& posix_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, std::size_t>();
    const auto& names = posix_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) (*m)[names[i]] = i;
    return m;
  }();
  return *map;
}

const std::unordered_map<std::string, std::size_t>& mpiio_index() {
  static const auto* map = [] {
    auto* m = new std::unordered_map<std::string, std::size_t>();
    const auto& names = mpiio_feature_names();
    for (std::size_t i = 0; i < names.size(); ++i) (*m)[names[i]] = i;
    return m;
  }();
  return *map;
}

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  throw std::runtime_error("darshan parse error at line " +
                           std::to_string(line_no) + ": " + what);
}

struct HeaderField {
  const char* key;
  bool seen = false;
};

}  // namespace

void write_record(std::ostream& out, const JobLogRecord& rec) {
  if (rec.posix.size() != posix_feature_names().size()) {
    throw std::invalid_argument("write_record: posix counter size mismatch");
  }
  if (rec.mpiio.size() != mpiio_feature_names().size()) {
    throw std::invalid_argument("write_record: mpiio counter size mismatch");
  }
  out << kVersionLine << '\n';
  out << "# jobid: " << rec.job_id << '\n';
  out << "# appid: " << rec.app_id << '\n';
  out << "# configid: " << rec.config_id << '\n';
  out << "# nprocs: " << rec.n_procs << '\n';
  out << "# nodes: " << rec.nodes << '\n';
  out << "# start_time: " << fmt_g(rec.start_time) << '\n';
  out << "# end_time: " << fmt_g(rec.end_time) << '\n';
  out << "# placement_spread: " << fmt_g(rec.placement_spread) << '\n';
  out << "# agg_perf_mib: " << fmt_g(rec.agg_perf_mib) << '\n';
  const auto& pnames = posix_feature_names();
  for (std::size_t i = 0; i < rec.posix.size(); ++i) {
    if (rec.posix[i] == 0.0) continue;  // sparse, like darshan-parser output
    out << "POSIX\t-1\t" << pnames[i] << '\t' << fmt_g(rec.posix[i]) << '\n';
  }
  const auto& mnames = mpiio_feature_names();
  for (std::size_t i = 0; i < rec.mpiio.size(); ++i) {
    if (rec.mpiio[i] == 0.0) continue;
    out << "MPIIO\t-1\t" << mnames[i] << '\t' << fmt_g(rec.mpiio[i]) << '\n';
  }
  out << kEndOfRecord << '\n';
}

void write_archive(const std::string& path,
                   const std::vector<JobLogRecord>& records) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("write_archive: cannot open " + path);
  for (const auto& rec : records) write_record(out, rec);
}

std::vector<JobLogRecord> parse_archive(std::istream& in, bool strict,
                                        ParseStats* stats) {
  std::vector<JobLogRecord> records;
  ParseStats local;
  std::string line;
  std::size_t line_no = 0;

  JobLogRecord rec;
  bool in_record = false;
  bool record_bad = false;
  // Header completeness tracking for the current record.
  int header_fields_seen = 0;
  constexpr int kRequiredHeaderFields = 9;

  const auto reset = [&] {
    rec = JobLogRecord{};
    rec.posix.assign(posix_feature_names().size(), 0.0);
    rec.mpiio.assign(mpiio_feature_names().size(), 0.0);
    in_record = false;
    record_bad = false;
    header_fields_seen = 0;
  };
  reset();

  const auto record_error = [&](const std::string& what) {
    if (strict) fail(line_no, what);
    record_bad = true;
  };

  while (std::getline(in, line)) {
    ++line_no;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    const auto trimmed = util::trim(line);
    if (trimmed.empty()) continue;

    if (trimmed == kVersionLine) {
      if (in_record) record_error("record not terminated before new record");
      reset();
      in_record = true;
      continue;
    }
    if (trimmed == kEndOfRecord) {
      if (!in_record) {
        record_error("end_of_record outside a record");
      } else if (header_fields_seen < kRequiredHeaderFields) {
        record_error("incomplete header");
      }
      if (in_record && !record_bad) {
        records.push_back(rec);
        ++local.parsed;
      } else {
        ++local.skipped;
      }
      reset();
      continue;
    }
    if (!in_record) {
      record_error("content before version line");
      continue;
    }
    if (record_bad && !strict) continue;  // skip rest of corrupt record

    try {
      if (trimmed.front() == '#') {
        const auto colon = trimmed.find(':');
        if (colon == std::string_view::npos) {
          record_error("malformed header line");
          continue;
        }
        const auto key = util::trim(trimmed.substr(1, colon - 1));
        const auto value = util::trim(trimmed.substr(colon + 1));
        ++header_fields_seen;
        if (key == "jobid") {
          rec.job_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "appid") {
          rec.app_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "configid") {
          rec.config_id = static_cast<std::uint64_t>(util::parse_int(value));
        } else if (key == "nprocs") {
          rec.n_procs = static_cast<std::uint32_t>(util::parse_int(value));
        } else if (key == "nodes") {
          rec.nodes = static_cast<std::uint32_t>(util::parse_int(value));
        } else if (key == "start_time") {
          rec.start_time = util::parse_double(value);
        } else if (key == "end_time") {
          rec.end_time = util::parse_double(value);
        } else if (key == "placement_spread") {
          rec.placement_spread = util::parse_double(value);
        } else if (key == "agg_perf_mib") {
          rec.agg_perf_mib = util::parse_double(value);
        } else {
          --header_fields_seen;  // unknown header keys are ignored
        }
        continue;
      }
      // Counter line: MODULE \t rank \t NAME \t value
      const auto fields = util::split(std::string(trimmed), '\t');
      if (fields.size() != 4) {
        record_error("counter line must have 4 tab-separated fields");
        continue;
      }
      const auto& module = fields[0];
      const auto& name = fields[2];
      const double value = util::parse_double(fields[3]);
      if (module == "POSIX") {
        const auto it = posix_index().find(name);
        if (it == posix_index().end()) {
          record_error("unknown POSIX counter '" + name + "'");
          continue;
        }
        rec.posix[it->second] = value;
      } else if (module == "MPIIO") {
        const auto it = mpiio_index().find(name);
        if (it == mpiio_index().end()) {
          record_error("unknown MPIIO counter '" + name + "'");
          continue;
        }
        rec.mpiio[it->second] = value;
      } else {
        record_error("unknown module '" + module + "'");
      }
    } catch (const std::invalid_argument& e) {
      record_error(e.what());
    }
  }
  if (in_record) {
    if (strict) fail(line_no, "truncated final record");
    ++local.skipped;
  }
  if (stats != nullptr) *stats = local;
  return records;
}

std::vector<JobLogRecord> parse_archive_file(const std::string& path,
                                             bool strict, ParseStats* stats) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("parse_archive_file: cannot open " + path);
  return parse_archive(in, strict, stats);
}

}  // namespace iotax::telemetry
