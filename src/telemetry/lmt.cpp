#include "src/telemetry/lmt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::telemetry {

namespace {

const char* const kBaseSignals[] = {
    "OSS_CPU",        "OSS_MEM",       "OST_READ_RATE",
    "OST_WRITE_RATE", "OST_FULLNESS",  "MDS_CPU",
    "MDS_OPS_RATE",   "MDS_OPEN_RATE", "MDS_CLOSE_RATE"};
const char* const kAggSuffix[] = {"MIN", "MAX", "MEAN", "STD"};

std::vector<std::string> build_lmt_names() {
  std::vector<std::string> names;
  for (const char* base : kBaseSignals) {
    for (const char* agg : kAggSuffix) {
      names.push_back(std::string("LMT_") + base + "_" + agg);
    }
  }
  names.emplace_back("LMT_OST_COUNT");
  return names;
}

double signal_value(const LmtSample& s, std::size_t signal) {
  switch (signal) {
    case 0: return s.oss_cpu;
    case 1: return s.oss_mem;
    case 2: return s.ost_read_rate;
    case 3: return s.ost_write_rate;
    case 4: return s.ost_fullness;
    case 5: return s.mds_cpu;
    case 6: return s.mds_ops_rate;
    case 7: return s.mds_open_rate;
    case 8: return s.mds_close_rate;
    default: throw std::logic_error("LMT signal index out of range");
  }
}

}  // namespace

const std::vector<std::string>& lmt_feature_names() {
  static const std::vector<std::string> names = build_lmt_names();
  return names;
}

const std::vector<std::string>& burst_feature_names() {
  static const std::vector<std::string> names = [] {
    std::vector<std::string> out;
    for (const auto& lmt : lmt_feature_names()) {
      out.push_back("BURST_" + lmt);
    }
    for (const char* base : kBaseSignals) {
      out.push_back(std::string("BURST_DELTA_") + base);
    }
    out.emplace_back("BURST_TOD_SIN");
    out.emplace_back("BURST_TOD_COS");
    return out;
  }();
  return names;
}

void LmtTimeline::add_sample(const LmtSample& sample) {
  if (!samples_.empty() && sample.time < samples_.back().time) {
    throw std::invalid_argument("LmtTimeline: samples must be time-ordered");
  }
  samples_.push_back(sample);
}

std::vector<double> LmtTimeline::aggregate(double t0, double t1) const {
  if (samples_.empty()) {
    throw std::logic_error("LmtTimeline::aggregate: no samples");
  }
  if (t1 < t0) throw std::invalid_argument("LmtTimeline::aggregate: t1 < t0");

  const auto lo = std::lower_bound(
      samples_.begin(), samples_.end(), t0,
      [](const LmtSample& s, double t) { return s.time < t; });
  auto hi = std::upper_bound(
      samples_.begin(), samples_.end(), t1,
      [](double t, const LmtSample& s) { return t < s.time; });

  auto begin = lo;
  auto end = hi;
  if (begin == end) {
    // Window between samples: use the nearest one.
    if (begin == samples_.end()) {
      begin = samples_.end() - 1;
    } else if (begin != samples_.begin()) {
      const auto prev = begin - 1;
      const double d_prev = t0 - prev->time;
      const double d_next = begin->time - t1;
      if (d_prev < d_next) begin = prev;
    }
    end = begin + 1;
  }

  constexpr std::size_t kSignals = 9;
  std::vector<double> out;
  out.reserve(kSignals * 4 + 1);
  for (std::size_t sig = 0; sig < kSignals; ++sig) {
    double mn = signal_value(*begin, sig);
    double mx = mn;
    double sum = 0.0;
    double sum2 = 0.0;
    std::size_t n = 0;
    for (auto it = begin; it != end; ++it) {
      const double v = signal_value(*it, sig);
      mn = std::min(mn, v);
      mx = std::max(mx, v);
      sum += v;
      sum2 += v * v;
      ++n;
    }
    const double mean = sum / static_cast<double>(n);
    const double var = std::max(0.0, sum2 / static_cast<double>(n) -
                                          mean * mean);
    out.push_back(mn);
    out.push_back(mx);
    out.push_back(mean);
    out.push_back(std::sqrt(var));
  }
  out.push_back(ost_count_);
  return out;
}

}  // namespace iotax::telemetry
