// Cobalt-scheduler-style job records. Cobalt logs what Darshan cannot
// see: the resources the scheduler actually granted and when the job ran
// (§V). The start/end time features are also what lets a model memorise
// individual jobs once duplicates stop being identical (§VI.C).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace iotax::telemetry {

struct CobaltRecord {
  std::uint64_t job_id = 0;
  std::uint32_t nodes = 0;
  std::uint32_t cores = 0;
  double start_time = 0.0;       // seconds since dataset epoch
  double end_time = 0.0;
  double placement_spread = 0.0; // normalised distance between allocated nodes
};

/// The 5 Cobalt feature names, in model feature order.
const std::vector<std::string>& cobalt_feature_names();

/// Name of the single start-time feature used by the Litmus-2 golden model.
const std::string& start_time_feature_name();

/// Convert a record to the 5 model features
/// (NODES, CORES, START_TIME, RUNTIME, PLACEMENT_SPREAD).
std::vector<double> cobalt_features(const CobaltRecord& rec);

}  // namespace iotax::telemetry
