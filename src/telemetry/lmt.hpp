// Lustre Monitoring Tools (LMT) style storage-side telemetry.
//
// LMT samples the state of the Lustre servers every few seconds; since a
// job may be served by any number of OSS/OST/MDS nodes, only min/max/mean/
// std aggregates over the job's time window are exposed to the model
// (§V of the paper). 9 base signals × 4 aggregates + OST count = 37
// features, matching the paper's LMT feature count.
#pragma once

#include <string>
#include <vector>

namespace iotax::telemetry {

/// One storage-side sample at a point in time (fleet-wide averages).
struct LmtSample {
  double time = 0.0;           // seconds since dataset epoch
  double oss_cpu = 0.0;        // [0,1] object storage server CPU load
  double oss_mem = 0.0;        // [0,1]
  double ost_read_rate = 0.0;  // bytes/s across OSTs
  double ost_write_rate = 0.0;
  double ost_fullness = 0.0;   // [0,1] filesystem fullness
  double mds_cpu = 0.0;        // [0,1] metadata server CPU load
  double mds_ops_rate = 0.0;   // metadata ops/s
  double mds_open_rate = 0.0;
  double mds_close_rate = 0.0;
};

/// The 37 LMT feature names, in model feature order.
const std::vector<std::string>& lmt_feature_names();

/// The 48 burst-window feature names, in model feature order: the 37
/// window aggregates under a BURST_ prefix, the 9 mean-signal deltas
/// against the previous window (BURST_DELTA_<signal>), and the
/// time-of-day phase pair (BURST_TOD_SIN/COS). These are the columns of
/// the windowed cluster-telemetry dataset the burst-prediction workload
/// trains on (sim::build_burst_dataset).
const std::vector<std::string>& burst_feature_names();

/// Time-ordered store of LMT samples with window aggregation.
class LmtTimeline {
 public:
  /// Samples must be appended in non-decreasing time order.
  void add_sample(const LmtSample& sample);

  std::size_t size() const { return samples_.size(); }
  const std::vector<LmtSample>& samples() const { return samples_; }

  void set_ost_count(double n) { ost_count_ = n; }

  /// Aggregate the 37 features over [t0, t1]. If no sample falls in the
  /// window, the nearest sample is used (a job shorter than the sampling
  /// cadence still gets system context).
  std::vector<double> aggregate(double t0, double t1) const;

 private:
  std::vector<LmtSample> samples_;
  double ost_count_ = 0.0;
};

}  // namespace iotax::telemetry
