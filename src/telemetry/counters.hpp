// Darshan-style aggregate job counters (POSIX and MPI-IO modules) and the
// feature-name registry the models index by. The paper's models see
// 48 POSIX + 48 MPI-IO + 37 LMT + 5 Cobalt features (§V); the POSIX and
// MPI-IO halves are defined here.
#pragma once

#include <string>
#include <vector>

#include "src/telemetry/io_signature.hpp"

namespace iotax::telemetry {

/// The 48 POSIX counter names, in model feature order.
const std::vector<std::string>& posix_feature_names();

/// The 48 MPI-IO counter names, in model feature order.
const std::vector<std::string>& mpiio_feature_names();

/// Compute the 48 POSIX counters for a job with the given signature.
/// Deterministic: equal signatures yield bit-equal counters.
std::vector<double> compute_posix_counters(const IoSignature& sig);

/// Compute the 48 MPI-IO counters; all zero when !sig.uses_mpiio, and all
/// MPI-IO traffic is also visible at the POSIX level (as on real systems).
std::vector<double> compute_mpiio_counters(const IoSignature& sig);

/// Estimated operation counts for a volume spread over size buckets.
double estimate_op_count(double bytes,
                         const std::array<double, kSizeBuckets>& size_frac);

}  // namespace iotax::telemetry
