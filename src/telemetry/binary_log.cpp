#include "src/telemetry/binary_log.hpp"

#include <array>
#include <cstring>
#include <fstream>
#include <stdexcept>

#include "src/telemetry/counters.hpp"

namespace iotax::telemetry {

namespace {

// CRC-32C table, built once.
const std::array<std::uint32_t, 256>& crc_table() {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    constexpr std::uint32_t kPoly = 0x82f63b78u;  // reflected Castagnoli
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) != 0 ? (c >> 1) ^ kPoly : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

class Writer {
 public:
  void u16(std::uint16_t v) { raw(&v, sizeof(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const char*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  const std::vector<char>& buffer() const { return buf_; }

 private:
  std::vector<char> buf_;
};

class Reader {
 public:
  Reader(const char* data, std::size_t size) : data_(data), size_(size) {}

  std::uint16_t u16() { return get<std::uint16_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  double f64() { return get<double>(); }
  bool exhausted() const { return pos_ == size_; }

 private:
  template <typename T>
  T get() {
    if (pos_ + sizeof(T) > size_) {
      throw std::runtime_error("binary log: truncated payload");
    }
    T v;
    std::memcpy(&v, data_ + pos_, sizeof(T));
    pos_ += sizeof(T);
    return v;
  }

  const char* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

void write_sparse(Writer* w, const std::vector<double>& counters) {
  std::uint16_t n = 0;
  for (const double v : counters) n += (v != 0.0) ? 1 : 0;
  w->u16(n);
  for (std::size_t i = 0; i < counters.size(); ++i) {
    if (counters[i] == 0.0) continue;
    w->u16(static_cast<std::uint16_t>(i));
    w->f64(counters[i]);
  }
}

void read_sparse(Reader* r, std::vector<double>* counters) {
  const std::uint16_t n = r->u16();
  for (std::uint16_t i = 0; i < n; ++i) {
    const std::uint16_t idx = r->u16();
    const double value = r->f64();
    if (idx >= counters->size()) {
      throw std::runtime_error("binary log: counter index out of range");
    }
    (*counters)[idx] = value;
  }
}

std::vector<char> encode_record(const JobLogRecord& rec) {
  Writer w;
  w.u64(rec.job_id);
  w.u64(rec.app_id);
  w.u64(rec.config_id);
  w.u32(rec.n_procs);
  w.u32(rec.nodes);
  w.f64(rec.start_time);
  w.f64(rec.end_time);
  w.f64(rec.placement_spread);
  w.f64(rec.agg_perf_mib);
  write_sparse(&w, rec.posix);
  write_sparse(&w, rec.mpiio);
  return w.buffer();
}

JobLogRecord decode_record(const char* data, std::size_t size) {
  Reader r(data, size);
  JobLogRecord rec;
  rec.job_id = r.u64();
  rec.app_id = r.u64();
  rec.config_id = r.u64();
  rec.n_procs = r.u32();
  rec.nodes = r.u32();
  rec.start_time = r.f64();
  rec.end_time = r.f64();
  rec.placement_spread = r.f64();
  rec.agg_perf_mib = r.f64();
  rec.posix.assign(posix_feature_names().size(), 0.0);
  rec.mpiio.assign(mpiio_feature_names().size(), 0.0);
  read_sparse(&r, &rec.posix);
  read_sparse(&r, &rec.mpiio);
  if (!r.exhausted()) {
    throw std::runtime_error("binary log: trailing bytes in payload");
  }
  return rec;
}

}  // namespace

std::uint32_t crc32c(const void* data, std::size_t size, std::uint32_t seed) {
  const auto& table = crc_table();
  const auto* bytes = static_cast<const unsigned char*>(data);
  std::uint32_t crc = ~seed;
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

void write_binary_archive(std::ostream& out,
                          const std::vector<JobLogRecord>& records) {
  out.write(kBinaryMagic, sizeof(kBinaryMagic));
  const std::uint32_t version = kBinaryVersion;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const auto count = static_cast<std::uint32_t>(records.size());
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  for (const auto& rec : records) {
    if (rec.posix.size() != posix_feature_names().size() ||
        rec.mpiio.size() != mpiio_feature_names().size()) {
      throw std::invalid_argument(
          "write_binary_archive: counter size mismatch");
    }
    const auto payload = encode_record(rec);
    const auto size = static_cast<std::uint32_t>(payload.size());
    const std::uint32_t crc = crc32c(payload.data(), payload.size());
    out.write(reinterpret_cast<const char*>(&size), sizeof(size));
    out.write(reinterpret_cast<const char*>(&crc), sizeof(crc));
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
  }
  if (!out) throw std::runtime_error("write_binary_archive: stream failure");
}

void write_binary_archive_file(const std::string& path,
                               const std::vector<JobLogRecord>& records) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    throw std::runtime_error("write_binary_archive_file: cannot open " + path);
  }
  write_binary_archive(out, records);
}

namespace {

/// Shared reader core: every defect lands in the outcome with a reason
/// code, never a throw. `stop_on_first` decides whether parsing
/// continues past a recoverable defect; the legacy throwing entry
/// points re-raise outcome.error on top of this core.
ParseOutcome read_binary_core(std::istream& in, bool stop_on_first) {
  ParseOutcome out;
  const auto container_error = [&](util::Reason reason,
                                   const std::string& what,
                                   std::size_t offset) {
    out.ok = false;
    out.error = "binary log: " + what;
    out.quarantine.add(
        {reason, 0, static_cast<std::size_t>(-1), offset, what});
  };

  char magic[sizeof(kBinaryMagic)] = {};
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kBinaryMagic, sizeof(magic)) != 0) {
    // Legacy strict and lenient both refuse a foreign container.
    container_error(util::Reason::kBadMagic, "bad magic", 0);
    return out;
  }
  std::uint32_t version = 0;
  std::uint32_t count = 0;
  in.read(reinterpret_cast<char*>(&version), sizeof(version));
  if (!in) {
    container_error(util::Reason::kTruncated, "truncated header",
                    sizeof(kBinaryMagic));
    return out;
  }
  if (version != kBinaryVersion) {
    container_error(util::Reason::kBadVersion, "unsupported version",
                    sizeof(kBinaryMagic));
    return out;
  }
  in.read(reinterpret_cast<char*>(&count), sizeof(count));
  if (!in) {
    container_error(util::Reason::kTruncated, "truncated header",
                    sizeof(kBinaryMagic) + sizeof(version));
    return out;
  }

  std::size_t offset = sizeof(kBinaryMagic) + sizeof(version) + sizeof(count);
  bool stopped = false;
  std::uint32_t i = 0;
  std::vector<JobLogRecord> records;
  // A corrupted count field must not drive allocation; push_back grows
  // the vector naturally past this if the records really are there.
  records.reserve(std::min<std::uint32_t>(count, 1u << 16));
  std::vector<char> payload;

  // Quarantines record i and every later record the header promised but
  // the unrecoverable framing makes unreachable. Counts stay exact even
  // for absurd header counts; only one sample entry is stored.
  const auto lose_rest = [&](util::Reason reason, const std::string& what) {
    out.quarantine.add_many(reason, count - i, {reason, 0, i, offset, what});
    stopped = true;
  };

  for (; i < count && !stopped; ++i) {
    const std::size_t record_offset = offset;
    std::uint32_t size = 0;
    std::uint32_t crc = 0;
    in.read(reinterpret_cast<char*>(&size), sizeof(size));
    in.read(reinterpret_cast<char*>(&crc), sizeof(crc));
    if (!in) {
      lose_rest(util::Reason::kTruncated, "truncated archive");
      break;
    }
    if (size > (1u << 24)) {
      // Framing is clearly corrupt; cannot resynchronise safely.
      lose_rest(util::Reason::kImplausibleSize, "implausible record size");
      break;
    }
    payload.resize(size);
    in.read(payload.data(), size);
    if (!in) {
      lose_rest(util::Reason::kTruncated, "truncated record");
      break;
    }
    offset = record_offset + sizeof(size) + sizeof(crc) + size;
    if (crc32c(payload.data(), payload.size()) != crc) {
      out.quarantine.add({util::Reason::kBadChecksum, 0, i, record_offset,
                          "checksum mismatch"});
      if (stop_on_first) stopped = true;
      continue;  // framing intact; move to the next record
    }
    try {
      records.push_back(decode_record(payload.data(), payload.size()));
    } catch (const std::runtime_error& e) {
      const std::string what = e.what();
      auto reason = util::Reason::kTruncated;
      if (what.find("counter index") != std::string::npos) {
        reason = util::Reason::kCounterIndexOutOfRange;
      } else if (what.find("trailing") != std::string::npos) {
        reason = util::Reason::kTrailingBytes;
      }
      out.quarantine.add({reason, 0, i, record_offset, what});
      if (stop_on_first) stopped = true;
    }
  }
  out.records = std::move(records);
  if (stop_on_first && out.quarantine.total() != 0) {
    out.ok = false;
    // Decode-error details already carry the "binary log: " prefix
    // (they come from decode_record's own throws); container defects do
    // not. Normalise so the message carries it exactly once.
    const std::string& detail = out.quarantine.entries().front().detail;
    out.error = detail.rfind("binary log: ", 0) == 0 ? detail
                                                     : "binary log: " + detail;
  }
  return out;
}

}  // namespace

std::vector<JobLogRecord> read_binary_archive(std::istream& in, bool strict,
                                              ParseStats* stats) {
  // Legacy throwing entry point, now a thin wrapper over the
  // non-throwing core: strict mode re-raises the outcome's first defect
  // ("binary log: ..." — prefix already normalised by the core).
  if (strict) {
    auto outcome = read_binary_core(in, /*stop_on_first=*/true);
    if (!outcome.ok) throw std::runtime_error(outcome.error);
    if (stats != nullptr) *stats = outcome.stats();
    return std::move(outcome.records);
  }
  auto outcome = read_binary_core(in, /*stop_on_first=*/false);
  if (!outcome.ok && outcome.quarantine.count(util::Reason::kBadMagic) != 0) {
    // Legacy lenient mode still refused a foreign container.
    throw std::runtime_error("binary log: bad magic");
  }
  if (!outcome.ok &&
      outcome.quarantine.count(util::Reason::kBadVersion) != 0) {
    throw std::runtime_error("binary log: unsupported version");
  }
  if (!outcome.ok) {
    throw std::runtime_error(outcome.error);
  }
  if (stats != nullptr) {
    // Legacy counting: a mid-stream truncation was one skip, not one per
    // promised-but-lost record. Stored entries are one per defect site.
    *stats = {outcome.records.size(), outcome.quarantine.entries().size()};
  }
  return std::move(outcome.records);
}

std::vector<JobLogRecord> read_binary_archive_file(const std::string& path,
                                                   bool strict,
                                                   ParseStats* stats) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("read_binary_archive_file: cannot open " + path);
  }
  return read_binary_archive(in, strict, stats);
}

ParseOutcome read_binary_archive_outcome(std::istream& in, ParseMode mode) {
  return read_binary_core(in, /*stop_on_first=*/mode == ParseMode::kStrict);
}

ParseOutcome read_binary_archive_file_outcome(const std::string& path,
                                              ParseMode mode) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ParseOutcome out;
    out.ok = false;
    out.error = "cannot open " + path;
    return out;
  }
  return read_binary_archive_outcome(in, mode);
}

}  // namespace iotax::telemetry
