// The observable I/O behaviour of one application configuration.
//
// A job's Darshan counters are a deterministic function of its signature,
// which is what makes "duplicate jobs" (same application, same observable
// features, §VI.A of the paper) exist in the generated datasets: two jobs
// sharing a signature are indistinguishable to any model.
#pragma once

#include <array>
#include <cstdint>

namespace iotax::telemetry {

/// Darshan-style access-size buckets (bytes):
/// [0,100), [100,1K), [1K,10K), [10K,100K), [100K,1M),
/// [1M,4M), [4M,10M), [10M,100M), [100M,1G), [1G,inf).
inline constexpr std::size_t kSizeBuckets = 10;

/// Representative access size per bucket, used to derive op counts from
/// byte volumes (geometric midpoints, bytes).
double bucket_representative_size(std::size_t bucket);

struct IoSignature {
  // Volume.
  double bytes_read = 0.0;     // total across all processes
  double bytes_written = 0.0;
  std::uint32_t n_procs = 1;

  // Access-size distribution: fraction of read/write *bytes* moved through
  // each bucket. Each array sums to 1 when the corresponding volume > 0.
  std::array<double, kSizeBuckets> read_size_frac{};
  std::array<double, kSizeBuckets> write_size_frac{};

  // Access-pattern structure (fractions in [0, 1]).
  double consec_read_frac = 0.0;   // offset exactly follows previous access
  double consec_write_frac = 0.0;
  double seq_read_frac = 0.0;      // offset increases (superset of consec)
  double seq_write_frac = 0.0;
  double rw_switch_frac = 0.0;     // read<->write switches per operation
  double mem_unaligned_frac = 0.0;
  double file_unaligned_frac = 0.0;

  // File usage.
  double files_total = 1.0;
  double files_shared_frac = 0.0;     // files accessed by all ranks
  double files_readonly_frac = 0.0;
  double files_writeonly_frac = 0.0;

  // Metadata behaviour.
  double opens_per_file = 1.0;
  double seeks_per_op = 0.0;
  double stats_per_open = 0.0;
  double fsyncs = 0.0;
  double meta_intensity = 0.0;  // drives MDS load in the simulator

  // MPI-IO usage (all-zero MPIIO counters when uses_mpiio is false).
  bool uses_mpiio = false;
  double coll_frac = 0.0;         // collective fraction of MPI-IO ops
  double nonblocking_frac = 0.0;
  double split_frac = 0.0;

  /// Total read+write bytes.
  double total_bytes() const { return bytes_read + bytes_written; }

  /// Throws std::invalid_argument when fields are out of range (negative
  /// volumes, fractions outside [0,1], bucket fractions not summing to 1).
  void validate() const;

  /// Stable 64-bit content hash over all observable fields; two signatures
  /// hash equal iff a model sees identical application features.
  std::uint64_t content_hash() const;
};

}  // namespace iotax::telemetry
