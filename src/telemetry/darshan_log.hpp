// A darshan-parser-style text log format with writer and parser.
//
// The simulator does not hand Tables to the models directly: it writes
// job logs in this format and the dataset builder parses them back, so
// the pipeline round-trips through files exactly like a production
// Darshan deployment (modulo the binary container). The parser has a
// strict mode (throw on first malformed record) and a lenient mode that
// skips corrupt records and reports how many were dropped — production
// log archives always contain a few.
//
// Format, one record per job:
//   # iotax darshan log version: 1.0
//   # jobid: 42
//   # appid: 7
//   # configid: 3
//   # nprocs: 64
//   # nodes: 16
//   # start_time: 86400.0
//   # end_time: 86700.0
//   # placement_spread: 0.25
//   # agg_perf_mib: 1234.5
//   POSIX<TAB>-1<TAB>POSIX_OPENS<TAB>64
//   ...                                  (one line per non-zero counter)
//   MPIIO<TAB>-1<TAB>MPIIO_COLL_READS<TAB>128
//   # end_of_record
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "src/util/quarantine.hpp"

namespace iotax::telemetry {

/// One job's log: identification header plus both counter modules.
struct JobLogRecord {
  std::uint64_t job_id = 0;
  std::uint64_t app_id = 0;
  std::uint64_t config_id = 0;
  std::uint32_t n_procs = 1;
  std::uint32_t nodes = 1;
  double start_time = 0.0;
  double end_time = 0.0;
  double placement_spread = 0.0;
  /// Measured aggregate I/O throughput (MiB/s), the regression target.
  double agg_perf_mib = 0.0;
  /// Parallel to posix_feature_names() / mpiio_feature_names().
  std::vector<double> posix;
  std::vector<double> mpiio;
};

/// Append one record to the stream.
void write_record(std::ostream& out, const JobLogRecord& rec);

/// Write a whole archive (all records, one file).
void write_archive(const std::string& path,
                   const std::vector<JobLogRecord>& records);

struct ParseStats {
  std::size_t parsed = 0;
  std::size_t skipped = 0;  // corrupt records dropped in lenient mode
};

enum class ParseMode { kStrict, kLenient };

/// Result of a non-throwing parse. `ok` is false only when the container
/// itself was unusable (bad magic, unreadable stream) — per-record
/// corruption lands in `quarantine` instead, with reason codes, the
/// record index and the line number / byte offset where it was detected.
/// In kStrict mode the first defect of any kind sets ok=false and stops;
/// in kLenient mode parsing continues past every recoverable defect and
/// ok stays true unless the framing is beyond recovery.
struct ParseOutcome {
  std::vector<JobLogRecord> records;
  util::QuarantineReport quarantine;
  bool ok = true;
  std::string error;  // set when !ok

  ParseStats stats() const {
    return {records.size(), quarantine.total()};
  }
};

/// Parse all records from a stream. In strict mode any malformed record
/// throws std::runtime_error with a line number; in lenient mode the
/// record is skipped and counted in stats.
std::vector<JobLogRecord> parse_archive(std::istream& in, bool strict = true,
                                        ParseStats* stats = nullptr);

std::vector<JobLogRecord> parse_archive_file(const std::string& path,
                                             bool strict = true,
                                             ParseStats* stats = nullptr);

/// Non-throwing variants: corruption is reported, never thrown.
ParseOutcome parse_archive_outcome(std::istream& in,
                                   ParseMode mode = ParseMode::kLenient);
ParseOutcome parse_archive_file_outcome(const std::string& path,
                                        ParseMode mode = ParseMode::kLenient);

}  // namespace iotax::telemetry
