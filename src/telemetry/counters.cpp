#include "src/telemetry/counters.hpp"

#include <cmath>
#include <stdexcept>

namespace iotax::telemetry {

namespace {

const char* const kBucketSuffix[kSizeBuckets] = {
    "0_100",   "100_1K",  "1K_10K",   "10K_100K", "100K_1M",
    "1M_4M",   "4M_10M",  "10M_100M", "100M_1G",  "1G_PLUS"};

std::vector<std::string> build_posix_names() {
  std::vector<std::string> names = {
      "POSIX_OPENS",           "POSIX_READS",
      "POSIX_WRITES",          "POSIX_SEEKS",
      "POSIX_STATS",           "POSIX_FSYNCS",
      "POSIX_BYTES_READ",      "POSIX_BYTES_WRITTEN",
      "POSIX_CONSEC_READS",    "POSIX_CONSEC_WRITES",
      "POSIX_SEQ_READS",       "POSIX_SEQ_WRITES",
      "POSIX_RW_SWITCHES",     "POSIX_MEM_NOT_ALIGNED",
      "POSIX_FILE_NOT_ALIGNED"};
  for (const char* s : kBucketSuffix) {
    names.push_back(std::string("POSIX_SIZE_READ_") + s);
  }
  for (const char* s : kBucketSuffix) {
    names.push_back(std::string("POSIX_SIZE_WRITE_") + s);
  }
  const char* tail[] = {
      "POSIX_TOTAL_FILES",      "POSIX_SHARED_FILES",
      "POSIX_UNIQUE_FILES",     "POSIX_READ_ONLY_FILES",
      "POSIX_WRITE_ONLY_FILES", "POSIX_READ_WRITE_FILES",
      "POSIX_MAX_BYTE_READ",    "POSIX_MAX_BYTE_WRITTEN",
      "POSIX_ACCESS1_ACCESS",   "POSIX_ACCESS1_COUNT",
      "POSIX_FILE_ALIGNMENT",   "POSIX_MEM_ALIGNMENT",
      "POSIX_NPROCS"};
  for (const char* t : tail) names.emplace_back(t);
  return names;
}

std::vector<std::string> build_mpiio_names() {
  std::vector<std::string> names = {
      "MPIIO_INDEP_OPENS",  "MPIIO_COLL_OPENS",  "MPIIO_INDEP_READS",
      "MPIIO_INDEP_WRITES", "MPIIO_COLL_READS",  "MPIIO_COLL_WRITES",
      "MPIIO_SPLIT_READS",  "MPIIO_SPLIT_WRITES","MPIIO_NB_READS",
      "MPIIO_NB_WRITES",    "MPIIO_SYNCS",       "MPIIO_HINTS",
      "MPIIO_VIEWS",        "MPIIO_BYTES_READ",  "MPIIO_BYTES_WRITTEN",
      "MPIIO_RW_SWITCHES"};
  for (const char* s : kBucketSuffix) {
    names.push_back(std::string("MPIIO_SIZE_READ_AGG_") + s);
  }
  for (const char* s : kBucketSuffix) {
    names.push_back(std::string("MPIIO_SIZE_WRITE_AGG_") + s);
  }
  const char* tail[] = {
      "MPIIO_TOTAL_FILES",    "MPIIO_SHARED_FILES",
      "MPIIO_UNIQUE_FILES",   "MPIIO_ACCESS1_ACCESS",
      "MPIIO_ACCESS1_COUNT",  "MPIIO_DEFERRED_OPENS",
      "MPIIO_MAX_BYTE_READ",  "MPIIO_MAX_BYTE_WRITTEN",
      "MPIIO_COLL_RATIO",     "MPIIO_HINT_COUNT",
      "MPIIO_DATATYPE_SIZE",  "MPIIO_NPROCS"};
  for (const char* t : tail) names.emplace_back(t);
  return names;
}

std::size_t dominant_bucket(const std::array<double, kSizeBuckets>& frac) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kSizeBuckets; ++i) {
    if (frac[i] > frac[best]) best = i;
  }
  return best;
}

}  // namespace

const std::vector<std::string>& posix_feature_names() {
  static const std::vector<std::string> names = build_posix_names();
  return names;
}

const std::vector<std::string>& mpiio_feature_names() {
  static const std::vector<std::string> names = build_mpiio_names();
  return names;
}

double estimate_op_count(double bytes,
                         const std::array<double, kSizeBuckets>& size_frac) {
  if (bytes <= 0.0) return 0.0;
  double ops = 0.0;
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    ops += bytes * size_frac[b] / bucket_representative_size(b);
  }
  return std::ceil(ops);
}

std::vector<double> compute_posix_counters(const IoSignature& sig) {
  sig.validate();
  const auto& names = posix_feature_names();
  std::vector<double> c(names.size(), 0.0);
  const double reads = estimate_op_count(sig.bytes_read, sig.read_size_frac);
  const double writes =
      estimate_op_count(sig.bytes_written, sig.write_size_frac);
  const double ops = reads + writes;
  const double files = std::ceil(sig.files_total);
  const double shared = std::round(files * sig.files_shared_frac);
  const double ro = std::round(files * sig.files_readonly_frac);
  const double wo = std::round(files * sig.files_writeonly_frac);
  const double opens = std::ceil(files * sig.opens_per_file);

  std::size_t i = 0;
  c[i++] = opens;                                        // POSIX_OPENS
  c[i++] = reads;                                        // POSIX_READS
  c[i++] = writes;                                       // POSIX_WRITES
  c[i++] = std::ceil(ops * sig.seeks_per_op);            // POSIX_SEEKS
  c[i++] = std::ceil(opens * sig.stats_per_open);        // POSIX_STATS
  c[i++] = sig.fsyncs;                                   // POSIX_FSYNCS
  c[i++] = sig.bytes_read;                               // POSIX_BYTES_READ
  c[i++] = sig.bytes_written;                            // POSIX_BYTES_WRITTEN
  c[i++] = std::floor(reads * sig.consec_read_frac);     // POSIX_CONSEC_READS
  c[i++] = std::floor(writes * sig.consec_write_frac);   // POSIX_CONSEC_WRITES
  c[i++] = std::floor(reads * sig.seq_read_frac);        // POSIX_SEQ_READS
  c[i++] = std::floor(writes * sig.seq_write_frac);      // POSIX_SEQ_WRITES
  c[i++] = std::floor(ops * sig.rw_switch_frac);         // POSIX_RW_SWITCHES
  c[i++] = std::floor(ops * sig.mem_unaligned_frac);     // POSIX_MEM_NOT_ALIGNED
  c[i++] = std::floor(ops * sig.file_unaligned_frac);    // POSIX_FILE_NOT_ALIGNED
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    c[i++] = std::floor(sig.bytes_read * sig.read_size_frac[b] /
                        bucket_representative_size(b));
  }
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    c[i++] = std::floor(sig.bytes_written * sig.write_size_frac[b] /
                        bucket_representative_size(b));
  }
  c[i++] = files;                                        // POSIX_TOTAL_FILES
  c[i++] = shared;                                       // POSIX_SHARED_FILES
  c[i++] = files - shared;                               // POSIX_UNIQUE_FILES
  c[i++] = ro;                                           // POSIX_READ_ONLY_FILES
  c[i++] = wo;                                           // POSIX_WRITE_ONLY_FILES
  c[i++] = std::max(0.0, files - ro - wo);               // POSIX_READ_WRITE_FILES
  // Max offsets: shared files see the whole volume, unique ones a slice.
  const double read_span = sig.files_shared_frac > 0.5
                               ? sig.bytes_read
                               : sig.bytes_read / std::max(1.0, files);
  const double write_span = sig.files_shared_frac > 0.5
                                ? sig.bytes_written
                                : sig.bytes_written / std::max(1.0, files);
  c[i++] = std::max(0.0, read_span - 1.0);               // POSIX_MAX_BYTE_READ
  c[i++] = std::max(0.0, write_span - 1.0);              // POSIX_MAX_BYTE_WRITTEN
  const auto& dom_frac =
      sig.bytes_read >= sig.bytes_written ? sig.read_size_frac
                                          : sig.write_size_frac;
  const std::size_t dom = dominant_bucket(dom_frac);
  c[i++] = bucket_representative_size(dom);              // POSIX_ACCESS1_ACCESS
  c[i++] = std::floor(ops * dom_frac[dom]);              // POSIX_ACCESS1_COUNT
  c[i++] = 1048576.0;                                    // POSIX_FILE_ALIGNMENT
  c[i++] = 8.0;                                          // POSIX_MEM_ALIGNMENT
  c[i++] = static_cast<double>(sig.n_procs);             // POSIX_NPROCS
  if (i != names.size()) {
    throw std::logic_error("compute_posix_counters: name/value mismatch");
  }
  return c;
}

std::vector<double> compute_mpiio_counters(const IoSignature& sig) {
  sig.validate();
  const auto& names = mpiio_feature_names();
  std::vector<double> c(names.size(), 0.0);
  if (!sig.uses_mpiio) return c;

  const double reads = estimate_op_count(sig.bytes_read, sig.read_size_frac);
  const double writes =
      estimate_op_count(sig.bytes_written, sig.write_size_frac);
  const double files = std::ceil(sig.files_total);
  const double shared = std::round(files * sig.files_shared_frac);
  const double coll_r = std::floor(reads * sig.coll_frac);
  const double coll_w = std::floor(writes * sig.coll_frac);
  const double split_r = std::floor(reads * sig.split_frac);
  const double split_w = std::floor(writes * sig.split_frac);
  const double nb_r = std::floor(reads * sig.nonblocking_frac);
  const double nb_w = std::floor(writes * sig.nonblocking_frac);

  std::size_t i = 0;
  c[i++] = std::ceil(files * (1.0 - sig.coll_frac));  // MPIIO_INDEP_OPENS
  c[i++] = std::floor(files * sig.coll_frac);         // MPIIO_COLL_OPENS
  c[i++] = reads - coll_r;                            // MPIIO_INDEP_READS
  c[i++] = writes - coll_w;                           // MPIIO_INDEP_WRITES
  c[i++] = coll_r;                                    // MPIIO_COLL_READS
  c[i++] = coll_w;                                    // MPIIO_COLL_WRITES
  c[i++] = split_r;                                   // MPIIO_SPLIT_READS
  c[i++] = split_w;                                   // MPIIO_SPLIT_WRITES
  c[i++] = nb_r;                                      // MPIIO_NB_READS
  c[i++] = nb_w;                                      // MPIIO_NB_WRITES
  c[i++] = sig.fsyncs;                                // MPIIO_SYNCS
  c[i++] = sig.coll_frac > 0.0 ? 2.0 : 0.0;           // MPIIO_HINTS
  c[i++] = std::ceil(files);                          // MPIIO_VIEWS
  c[i++] = sig.bytes_read;                            // MPIIO_BYTES_READ
  c[i++] = sig.bytes_written;                         // MPIIO_BYTES_WRITTEN
  c[i++] = std::floor((reads + writes) * sig.rw_switch_frac);
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    c[i++] = std::floor(sig.bytes_read * sig.read_size_frac[b] /
                        bucket_representative_size(b));
  }
  for (std::size_t b = 0; b < kSizeBuckets; ++b) {
    c[i++] = std::floor(sig.bytes_written * sig.write_size_frac[b] /
                        bucket_representative_size(b));
  }
  c[i++] = files;                                     // MPIIO_TOTAL_FILES
  c[i++] = shared;                                    // MPIIO_SHARED_FILES
  c[i++] = files - shared;                            // MPIIO_UNIQUE_FILES
  const auto& dom_frac =
      sig.bytes_read >= sig.bytes_written ? sig.read_size_frac
                                          : sig.write_size_frac;
  const std::size_t dom = dominant_bucket(dom_frac);
  c[i++] = bucket_representative_size(dom);           // MPIIO_ACCESS1_ACCESS
  c[i++] = std::floor((reads + writes) * dom_frac[dom]);
  c[i++] = 0.0;                                       // MPIIO_DEFERRED_OPENS
  c[i++] = std::max(0.0, sig.bytes_read - 1.0);       // MPIIO_MAX_BYTE_READ
  c[i++] = std::max(0.0, sig.bytes_written - 1.0);    // MPIIO_MAX_BYTE_WRITTEN
  c[i++] = sig.coll_frac;                             // MPIIO_COLL_RATIO
  c[i++] = sig.coll_frac > 0.0 ? 2.0 : 0.0;           // MPIIO_HINT_COUNT
  c[i++] = 8.0;                                       // MPIIO_DATATYPE_SIZE
  c[i++] = static_cast<double>(sig.n_procs);          // MPIIO_NPROCS
  if (i != names.size()) {
    throw std::logic_error("compute_mpiio_counters: name/value mismatch");
  }
  return c;
}

}  // namespace iotax::telemetry
