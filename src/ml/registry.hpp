// Name-based model factory: build any Regressor family from a family
// name and a JSON parameter object. This is the configuration-driven
// entry point the CLI `train` command and experiment configs use, so a
// model choice is a string, not a compile-time type.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ml/model.hpp"

namespace iotax::ml {

/// Family names accepted by make_regressor, sorted.
std::vector<std::string> regressor_names();

/// Construct an unfitted regressor.
///
/// `name` is one of regressor_names() ("mean", "linear", "gbt", "mlp",
/// "ensemble"); `params_json` is a JSON object whose keys map onto the
/// family's params struct ({"n_estimators": 50, "max_depth": 4} for
/// gbt, {"hidden": [32, 32], "nll_head": true} for mlp, ...). Throws
/// std::invalid_argument for an unknown family, malformed JSON, an
/// unknown key, or a value of the wrong type — a typo never silently
/// trains a default model.
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          const std::string& params_json = "{}");

/// Open `path` and restore the checkpoint through Regressor::load. All
/// failures — missing file, unreadable stream, unrecognized magic —
/// surface as std::runtime_error naming the path (and, for a bad
/// header, the offending token plus the known model magics), so a CLI
/// pointed at the wrong file says which file and why.
std::unique_ptr<Regressor> load_regressor_file(const std::string& path);

/// In-memory registry of loaded checkpoints for the serve daemon: each
/// add() loads one file; requests address models by their add() index.
/// The registry is immutable after construction-time loading, so
/// concurrent lookup from session/batcher threads needs no locking.
class ModelRegistry {
 public:
  /// Load a checkpoint; returns its index. Throws like
  /// load_regressor_file.
  std::size_t add(const std::string& path);

  std::size_t size() const { return models_.size(); }
  const Regressor& model(std::size_t i) const { return *models_.at(i); }
  /// Source path of model i (diagnostics / the serve startup banner).
  const std::string& path(std::size_t i) const { return paths_.at(i); }

 private:
  std::vector<std::unique_ptr<Regressor>> models_;
  std::vector<std::string> paths_;
};

}  // namespace iotax::ml
