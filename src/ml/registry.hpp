// Name-based model factory: build any Regressor family from a family
// name and a JSON parameter object. This is the configuration-driven
// entry point the CLI `train` command and experiment configs use, so a
// model choice is a string, not a compile-time type.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "src/ml/model.hpp"

namespace iotax::ml {

/// Family names accepted by make_regressor, sorted.
std::vector<std::string> regressor_names();

/// Construct an unfitted regressor.
///
/// `name` is one of regressor_names() ("mean", "linear", "gbt", "mlp",
/// "ensemble", "classifier"); `params_json` is a JSON object whose keys
/// map onto the family's params struct ({"n_estimators": 50,
/// "max_depth": 4} for gbt, {"hidden": [32, 32], "nll_head": true} for
/// mlp, {"kind": "logistic", "gbt": {...}} for classifier, ...). Throws
/// std::invalid_argument for an unknown family, malformed JSON, an
/// unknown key, or a value of the wrong type — a typo never silently
/// trains a default model.
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          const std::string& params_json = "{}");

/// Open `path` and restore the checkpoint through Regressor::load. All
/// failures — missing file, unreadable stream, unrecognized magic —
/// surface as std::runtime_error naming the path (and, for a bad
/// header, the offending token plus the known model magics), so a CLI
/// pointed at the wrong file says which file and why.
std::unique_ptr<Regressor> load_regressor_file(const std::string& path);

/// FNV-1a 64-bit hash of a checkpoint file's bytes — the "params hash"
/// shown by registry diagnostics and the serve banner. Computable even
/// for a checkpoint that fails to load, so a broken or mismatched file
/// is identifiable by content, not just by name. Throws
/// std::runtime_error when the file cannot be opened.
std::uint64_t hash_model_file(const std::string& path);

/// Render a params hash the way diagnostics print it ("0x1a2b...").
std::string format_params_hash(std::uint64_t hash);

/// One publication in a registry slot: the model itself, where it came
/// from, the slot's monotonically increasing generation, and the FNV-1a
/// hash of the checkpoint bytes. Entries are immutable and shared — a
/// serve batch snapshots the shared_ptr once and the model stays alive
/// for the whole batch even if the slot is re-published underneath it.
struct ModelEntry {
  std::shared_ptr<const Regressor> model;
  std::string source;
  std::uint64_t generation = 0;
  std::uint64_t params_hash = 0;
};

/// In-memory registry of loaded checkpoints for the serve daemon: each
/// add() creates one slot; requests address models by their add()
/// index. The slot count is fixed after startup, but each slot's
/// current publication can be atomically replaced (publish) or restored
/// (rollback) under live traffic: readers take entry() snapshots, so an
/// in-flight batch keeps scoring against the model it started with
/// while new requests see the new generation.
class ModelRegistry {
 public:
  /// Load a checkpoint into a new slot at generation 1; returns the
  /// slot index. Load failures rethrow with the slot, the would-be
  /// generation, and the checkpoint's params hash appended — enough to
  /// tell which artifact was rejected, not just which path.
  std::size_t add(const std::string& path);

  std::size_t size() const;

  /// Snapshot of slot i's current publication (never null).
  std::shared_ptr<const ModelEntry> entry(std::size_t i) const;

  /// Replace slot i's publication; the displaced entry is retained for
  /// rollback. Returns the new generation (previous + 1).
  std::uint64_t publish(std::size_t i, std::shared_ptr<const Regressor> model,
                        std::string source, std::uint64_t params_hash);

  /// Restore slot i's previous publication under a fresh generation
  /// (generations only ever increase, so clients can always detect a
  /// swap). Rolling back twice toggles between the two newest
  /// publications. Throws std::runtime_error when the slot has never
  /// been re-published.
  std::shared_ptr<const ModelEntry> rollback(std::size_t i);

  /// Current model of slot i. Only safe when no concurrent publish can
  /// run (startup banners, single-threaded tools); concurrent readers
  /// must hold an entry() snapshot instead.
  const Regressor& model(std::size_t i) const { return *entry(i)->model; }
  /// Source path slot i was add()ed from (stable across publishes; the
  /// current publication's origin is entry(i)->source).
  const std::string& path(std::size_t i) const { return paths_.at(i); }

 private:
  mutable std::mutex mu_;
  std::vector<std::shared_ptr<const ModelEntry>> slots_;
  std::vector<std::shared_ptr<const ModelEntry>> previous_;
  std::vector<std::string> paths_;
};

}  // namespace iotax::ml
