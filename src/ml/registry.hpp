// Name-based model factory: build any Regressor family from a family
// name and a JSON parameter object. This is the configuration-driven
// entry point the CLI `train` command and experiment configs use, so a
// model choice is a string, not a compile-time type.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "src/ml/model.hpp"

namespace iotax::ml {

/// Family names accepted by make_regressor, sorted.
std::vector<std::string> regressor_names();

/// Construct an unfitted regressor.
///
/// `name` is one of regressor_names() ("mean", "linear", "gbt", "mlp",
/// "ensemble"); `params_json` is a JSON object whose keys map onto the
/// family's params struct ({"n_estimators": 50, "max_depth": 4} for
/// gbt, {"hidden": [32, 32], "nll_head": true} for mlp, ...). Throws
/// std::invalid_argument for an unknown family, malformed JSON, an
/// unknown key, or a value of the wrong type — a typo never silently
/// trains a default model.
std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          const std::string& params_json = "{}");

}  // namespace iotax::ml
