#include "src/ml/uq_gbt.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::ml {

namespace {
// Floor on residual^2 before taking logs; also the smallest variance the
// model will ever predict (log10^2 units).
constexpr double kVarFloor = 1e-8;
}  // namespace

GbtUncertainty::GbtUncertainty(GbtParams mean_params, GbtParams variance_params)
    : mean_(mean_params), variance_(variance_params) {}

void GbtUncertainty::fit(const data::MatrixView& x, std::span<const double> y) {
  mean_.fit(x, y);
  const auto mean_pred = mean_.predict(x);
  // Target: log(residual^2). Training-set residuals understate the true
  // noise (the mean model has fit part of it); inflate by the classic
  // n/(n - #trees-ish) factor being unknowable, we instead rely on the
  // variance model's own smoothing and document the bias.
  std::vector<double> log_sq(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    const double r = y[i] - mean_pred[i];
    log_sq[i] = std::log(std::max(r * r, kVarFloor));
  }
  variance_.fit(x, log_sq);
  fitted_ = true;
}

GbtDistPrediction GbtUncertainty::predict_dist(
    const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("GbtUncertainty: not fitted");
  GbtDistPrediction out;
  out.mean = mean_.predict(x);
  const auto log_var = variance_.predict(x);
  out.variance.resize(log_var.size());
  for (std::size_t i = 0; i < log_var.size(); ++i) {
    // E[log r^2] = log sigma^2 - 1.27 for Gaussian residuals (the
    // expectation of log chi^2_1); undo that bias.
    out.variance[i] =
        std::max(std::exp(log_var[i] + 1.2704), kVarFloor);
  }
  return out;
}

}  // namespace iotax::ml
