#include "src/ml/kmeans.hpp"

#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/util/rng.hpp"

namespace iotax::ml {

void KMeansParams::validate() const {
  if (k < 2) throw std::invalid_argument("KMeansParams: k must be >= 2");
  if (max_iters == 0 || n_init == 0) {
    throw std::invalid_argument("KMeansParams: zero iterations/inits");
  }
  if (tol < 0.0) throw std::invalid_argument("KMeansParams: negative tol");
}

KMeans::KMeans(KMeansParams params) : params_(params) { params_.validate(); }

namespace {

double sq_dist(std::span<const double> a, std::span<const double> b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    acc += d * d;
  }
  return acc;
}

// k-means++ seeding: each next centre is drawn proportionally to the
// squared distance from the nearest existing centre.
data::Matrix plus_plus_init(const data::Matrix& z, std::size_t k,
                            util::Rng& rng) {
  data::Matrix centroids(k, z.cols());
  const auto first = static_cast<std::size_t>(
      rng.uniform_int(0, static_cast<std::int64_t>(z.rows()) - 1));
  for (std::size_t c = 0; c < z.cols(); ++c) {
    centroids(0, c) = z(first, c);
  }
  std::vector<double> d2(z.rows());
  for (std::size_t chosen = 1; chosen < k; ++chosen) {
    double total = 0.0;
    for (std::size_t r = 0; r < z.rows(); ++r) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < chosen; ++c) {
        best = std::min(best, sq_dist(z.row(r), centroids.row(c)));
      }
      d2[r] = best;
      total += best;
    }
    std::size_t pick = 0;
    if (total > 0.0) {
      double target = rng.uniform() * total;
      for (std::size_t r = 0; r < z.rows(); ++r) {
        target -= d2[r];
        if (target <= 0.0) {
          pick = r;
          break;
        }
      }
    } else {
      pick = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(z.rows()) - 1));
    }
    for (std::size_t c = 0; c < z.cols(); ++c) {
      centroids(chosen, c) = z(pick, c);
    }
  }
  return centroids;
}

}  // namespace

double KMeans::assign(const data::Matrix& z, const data::Matrix& centroids,
                      std::vector<std::size_t>* labels) const {
  double inertia = 0.0;
  labels->resize(z.rows());
  for (std::size_t r = 0; r < z.rows(); ++r) {
    double best = std::numeric_limits<double>::infinity();
    std::size_t arg = 0;
    for (std::size_t c = 0; c < centroids.rows(); ++c) {
      const double d = sq_dist(z.row(r), centroids.row(c));
      if (d < best) {
        best = d;
        arg = c;
      }
    }
    (*labels)[r] = arg;
    inertia += best;
  }
  return inertia;
}

void KMeans::fit(const data::MatrixView& x) {
  if (x.rows() < params_.k) {
    throw std::invalid_argument("KMeans::fit: fewer rows than clusters");
  }
  const data::Matrix z = scaler_.fit_transform_log1p(x);
  util::Rng rng(params_.seed);

  double best_inertia = std::numeric_limits<double>::infinity();
  for (std::size_t init = 0; init < params_.n_init; ++init) {
    data::Matrix centroids = plus_plus_init(z, params_.k, rng);
    std::vector<std::size_t> labels;
    double inertia = assign(z, centroids, &labels);
    for (std::size_t iter = 0; iter < params_.max_iters; ++iter) {
      // Recompute centroids.
      data::Matrix next(params_.k, z.cols(), 0.0);
      std::vector<std::size_t> counts(params_.k, 0);
      for (std::size_t r = 0; r < z.rows(); ++r) {
        const auto l = labels[r];
        ++counts[l];
        for (std::size_t c = 0; c < z.cols(); ++c) next(l, c) += z(r, c);
      }
      for (std::size_t l = 0; l < params_.k; ++l) {
        if (counts[l] == 0) {
          // Re-seed an empty cluster at a random point.
          const auto r = static_cast<std::size_t>(
              rng.uniform_int(0, static_cast<std::int64_t>(z.rows()) - 1));
          for (std::size_t c = 0; c < z.cols(); ++c) next(l, c) = z(r, c);
        } else {
          for (std::size_t c = 0; c < z.cols(); ++c) {
            next(l, c) /= static_cast<double>(counts[l]);
          }
        }
      }
      centroids = std::move(next);
      const double new_inertia = assign(z, centroids, &labels);
      if (inertia - new_inertia < params_.tol * (1.0 + inertia)) {
        inertia = new_inertia;
        break;
      }
      inertia = new_inertia;
    }
    if (inertia < best_inertia) {
      best_inertia = inertia;
      centroids_ = centroids;
      labels_ = labels;
    }
  }
  inertia_ = best_inertia;
  fitted_ = true;
}

std::vector<std::size_t> KMeans::predict(const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("KMeans::predict: not fitted");
  const data::Matrix z = scaler_.transform_log1p(x);
  std::vector<std::size_t> labels;
  assign(z, centroids_, &labels);
  return labels;
}

}  // namespace iotax::ml
