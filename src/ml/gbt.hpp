// Gradient-boosted regression trees — the library's XGBoost stand-in.
//
// Second-order boosting on squared loss with L2 leaf regularisation,
// learning-rate shrinkage, per-tree row subsampling and column
// subsampling; split finding uses quantile-binned histograms (XGBoost's
// `hist` method) so training stays fast on one core. These are the four
// hyperparameters the paper tunes exhaustively in §VI.B.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/ml/binning.hpp"
#include "src/ml/kernels/forest.hpp"
#include "src/ml/model.hpp"
#include "src/util/rng.hpp"

namespace iotax::ml {

/// Training objective: squared log error (the default regression loss)
/// or pinball/quantile loss, which turns the model into a conditional
/// quantile estimator — pairs of (alpha, 1-alpha) models give per-job
/// prediction intervals, the operator-facing complement to the global
/// noise bands of litmus 5.
enum class GbtLoss { kSquaredError, kQuantile };

struct GbtParams {
  std::size_t n_estimators = 100;
  std::size_t max_depth = 6;
  GbtLoss loss = GbtLoss::kSquaredError;
  /// Target quantile for GbtLoss::kQuantile, in (0, 1).
  double quantile_alpha = 0.5;
  double learning_rate = 0.1;
  double reg_lambda = 1.0;        // L2 on leaf weights
  double min_child_weight = 1.0;  // min hessian sum per leaf
  double min_split_gain = 0.0;
  double subsample = 1.0;         // row fraction per tree
  double colsample = 1.0;         // feature fraction per tree
  std::size_t max_bins = 64;
  /// Optional per-feature bin budgets overriding max_bins (empty = use
  /// max_bins for all). Needed to give a start-time feature day-level
  /// resolution without paying that cost on every counter.
  std::vector<std::size_t> per_feature_bins;
  /// Stop adding trees when the fit_eval validation RMSE has not improved
  /// for this many rounds (0 disables; plain fit() ignores it).
  std::size_t early_stopping_rounds = 0;
  std::uint64_t seed = 17;

  void validate() const;
};

class GradientBoostedTrees final : public Regressor {
 public:
  explicit GradientBoostedTrees(GbtParams params = {});

  void fit(const data::MatrixView& x, std::span<const double> y) override;

  /// fit() reusing a pre-built binned view of `x`. The view must have
  /// been built from this exact matrix with this model's bin budgets
  /// (max_bins / per_feature_bins); hyperparameter searches use this to
  /// bin the training set once per search instead of once per candidate.
  void fit_binned(const data::MatrixView& x, std::span<const double> y,
                  const BinnedMatrix& binned);

  /// Fit with a validation set for early stopping: boosting stops once
  /// validation RMSE has not improved for early_stopping_rounds rounds,
  /// and the ensemble is truncated to the best round. With
  /// early_stopping_rounds == 0 this trains exactly like fit().
  void fit_eval(const data::MatrixView& x, std::span<const double> y,
                const data::MatrixView& x_val, std::span<const double> y_val);

  /// Warm-start continuation: append `extra_rounds` more boosting rounds
  /// on top of the fitted forest. Continuation is stateless — the call
  /// re-bins `x` under the model's bin budgets, replays the running
  /// predictions through predict() (same per-row, tree-order FP
  /// accumulation the cold fit produced) and replays the
  /// subsample/colsample RNG stream past the existing rounds — so for
  /// the same data and seed, fit(N) + fit_continue(x, y, M) is
  /// bit-identical to a cold fit with n_estimators == N + M, at any
  /// IOTAX_THREADS. Works on loaded checkpoints too (the saved params
  /// carry the seed). On new data the base score and earlier trees stay
  /// frozen and only the new rounds chase the new residuals. After a
  /// continuation the forest mixes trees built against different
  /// binnings, so fit-time code traversal (predict_codes) is dropped;
  /// predict() routes by raw thresholds and is unaffected. fit_eval's
  /// early stopping is a fit-time-only concern: continuation never
  /// trims, and continuing a trimmed model re-draws from the kept
  /// rounds.
  void fit_continue(const data::MatrixView& x, std::span<const double> y,
                    std::size_t extra_rounds) override;
  FitContinueInfo fit_continue_info() const override {
    return {true, "tree"};
  }

  std::vector<double> predict(const data::MatrixView& x) const override;

  /// predict() for rows pre-encoded against the fit-time binning
  /// (BinnedMatrix::encode_all on the matrix this model was fitted
  /// with, or any input encoded by that same BinnedMatrix). Routing by
  /// code reaches the same leaf as routing the raw row by thresholds,
  /// so the result is bit-identical to predict(); searches encode a
  /// validation set once and score every candidate against it. Only
  /// valid on models fitted in this process — loaded models carry
  /// thresholds but not fit-time bin indices, and throw here.
  std::vector<double> predict_codes(std::span<const std::uint16_t> codes) const;

  /// predict_codes() using only the first `n_trees` boosting rounds
  /// (clamped to the fitted count). Because round t depends only on
  /// rounds before it, this is bit-identical to predict_codes() on a
  /// model fitted with n_estimators == n_trees and the same seed —
  /// hyperparameter searches fit the largest candidate of an
  /// n_estimators ladder once and score the rest as prefixes.
  std::vector<double> predict_codes_prefix(
      std::span<const std::uint16_t> codes, std::size_t n_trees) const;

  std::string name() const override;

  const GbtParams& params() const { return params_; }
  std::size_t n_trees() const { return trees_.size(); }
  std::size_t n_features() const override { return n_features_; }

  /// Gain-based feature importances (summed split gains), normalised to
  /// sum to 1; zero vector if the model is constant.
  std::vector<double> feature_importances() const;

  /// Serialize the fitted model as versioned text; load() restores a
  /// model whose predictions are bit-identical.
  void save(std::ostream& out) const override;
  static GradientBoostedTrees load(std::istream& in);

 private:
  struct Node {
    int feature = -1;  // -1 marks a leaf
    double threshold = 0.0;
    /// Bin index of `threshold` in the fit-time BinnedMatrix; only valid
    /// during fit (not serialized, -1 on loaded models).
    int split_bin = -1;
    int left = -1;
    int right = -1;
    double value = 0.0;
  };
  struct Tree {
    std::vector<Node> nodes;
    double predict(std::span<const double> row) const;
    /// Route by fit-time bin codes: code <= split_bin goes left, exactly
    /// the comparison build_tree partitions with. Because
    /// code(r,f) <= b iff x(r,f) <= threshold(f,b), this returns the
    /// same value predict() would on the raw row, without gathering it.
    double predict_codes(std::span<const std::uint16_t> codes) const;
  };

  Tree build_tree(const BinnedMatrix& binned,
                  const std::vector<std::size_t>& rows,
                  const std::vector<std::size_t>& features,
                  std::span<const double> grad);

  void fit_impl(const data::MatrixView& x, std::span<const double> y,
                const data::MatrixView& x_val, std::span<const double> y_val,
                const BinnedMatrix* binned);

  /// Relayout one tree into a PackedForest (the SoA batch-prediction
  /// layout).
  static void pack_tree(kernels::PackedForest& forest, const Tree& tree,
                        bool with_codes);
  /// Append one tree to packed_ (the SoA batch-prediction layout).
  void append_packed(const Tree& tree, bool with_codes);
  /// Rebuild packed_ from trees_ after they change wholesale.
  void rebuild_packed();

  GbtParams params_;
  double base_score_ = 0.0;
  std::vector<Tree> trees_;
  // Breadth-first SoA relayout of trees_ for batch prediction; rebuilt
  // whenever trees_ changes (fit, load). Bit-identical to walking the
  // Tree nodes — see kernels::PackedForest.
  kernels::PackedForest packed_;
  std::size_t n_features_ = 0;
  std::vector<double> importance_;
  bool fitted_ = false;
  // True when trees_ carry valid fit-time split bins (fitted in this
  // process, not deserialized) and predict_codes may be used.
  bool has_split_bins_ = false;
};

}  // namespace iotax::ml
