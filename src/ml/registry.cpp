#include "src/ml/registry.hpp"

#include <fstream>
#include <stdexcept>

#include "src/ml/classifier.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/nn.hpp"
#include "src/util/json.hpp"

namespace iotax::ml {

namespace {

[[noreturn]] void unknown_key(const std::string& family,
                              const std::string& key) {
  throw std::invalid_argument("make_regressor: unknown " + family +
                              " parameter '" + key + "'");
}

std::size_t as_size(const util::Json& v) {
  const long long n = v.as_int();
  if (n < 0) throw std::invalid_argument("make_regressor: negative size");
  return static_cast<std::size_t>(n);
}

std::vector<std::size_t> as_size_array(const util::Json& v) {
  if (!v.is_array()) {
    throw std::invalid_argument("make_regressor: expected an array");
  }
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < v.size(); ++i) out.push_back(as_size(v[i]));
  return out;
}

std::unique_ptr<Regressor> make_linear(const util::Json& params) {
  double l2 = 1.0;
  bool log_transform = true;
  for (const auto& [key, value] : params.items()) {
    if (key == "l2") {
      l2 = value.as_double();
    } else if (key == "log_transform") {
      log_transform = value.as_bool();
    } else {
      unknown_key("linear", key);
    }
  }
  return std::make_unique<LinearRegressor>(l2, log_transform);
}

GbtParams parse_gbt_params(const util::Json& params,
                           const std::string& family) {
  GbtParams p;
  for (const auto& [key, value] : params.items()) {
    if (key == "n_estimators") {
      p.n_estimators = as_size(value);
    } else if (key == "max_depth") {
      p.max_depth = as_size(value);
    } else if (key == "loss") {
      const std::string& loss = value.as_string();
      if (loss == "squared") {
        p.loss = GbtLoss::kSquaredError;
      } else if (loss == "quantile") {
        p.loss = GbtLoss::kQuantile;
      } else {
        throw std::invalid_argument("make_regressor: gbt loss must be "
                                    "'squared' or 'quantile', got '" +
                                    loss + "'");
      }
    } else if (key == "quantile_alpha") {
      p.quantile_alpha = value.as_double();
    } else if (key == "learning_rate") {
      p.learning_rate = value.as_double();
    } else if (key == "reg_lambda") {
      p.reg_lambda = value.as_double();
    } else if (key == "min_child_weight") {
      p.min_child_weight = value.as_double();
    } else if (key == "min_split_gain") {
      p.min_split_gain = value.as_double();
    } else if (key == "subsample") {
      p.subsample = value.as_double();
    } else if (key == "colsample") {
      p.colsample = value.as_double();
    } else if (key == "max_bins") {
      p.max_bins = as_size(value);
    } else if (key == "per_feature_bins") {
      p.per_feature_bins = as_size_array(value);
    } else if (key == "early_stopping_rounds") {
      p.early_stopping_rounds = as_size(value);
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(value.as_int());
    } else {
      unknown_key(family, key);
    }
  }
  return p;
}

std::unique_ptr<Regressor> make_gbt(const util::Json& params) {
  return std::make_unique<GradientBoostedTrees>(
      parse_gbt_params(params, "gbt"));
}

std::unique_ptr<Regressor> make_classifier(const util::Json& params) {
  ClassifierParams p;
  for (const auto& [key, value] : params.items()) {
    if (key == "kind") {
      const std::string& kind = value.as_string();
      if (kind == "logistic") {
        p.kind = ClassifierKind::kLogistic;
      } else if (kind == "threshold") {
        p.kind = ClassifierKind::kThreshold;
      } else {
        throw std::invalid_argument(
            "make_regressor: classifier kind must be 'logistic' or "
            "'threshold', got '" +
            kind + "'");
      }
    } else if (key == "threshold") {
      p.threshold = value.as_double();
    } else if (key == "platt_max_iters") {
      p.platt_max_iters = as_size(value);
    } else if (key == "gbt") {
      if (!value.is_object()) {
        throw std::invalid_argument(
            "make_regressor: classifier 'gbt' must be an object");
      }
      p.gbt = parse_gbt_params(value, "classifier.gbt");
    } else {
      unknown_key("classifier", key);
    }
  }
  return std::make_unique<BurstClassifier>(std::move(p));
}

std::unique_ptr<Regressor> make_mlp(const util::Json& params) {
  MlpParams p;
  for (const auto& [key, value] : params.items()) {
    if (key == "hidden") {
      p.hidden = as_size_array(value);
    } else if (key == "learning_rate") {
      p.learning_rate = value.as_double();
    } else if (key == "weight_decay") {
      p.weight_decay = value.as_double();
    } else if (key == "dropout") {
      p.dropout = value.as_double();
    } else if (key == "epochs") {
      p.epochs = as_size(value);
    } else if (key == "batch_size") {
      p.batch_size = as_size(value);
    } else if (key == "nll_head") {
      p.nll_head = value.as_bool();
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(value.as_int());
    } else {
      unknown_key("mlp", key);
    }
  }
  return std::make_unique<Mlp>(std::move(p));
}

std::unique_ptr<Regressor> make_ensemble(const util::Json& params) {
  EnsembleParams p;
  for (const auto& [key, value] : params.items()) {
    if (key == "size") {
      p.size = as_size(value);
    } else if (key == "epochs") {
      p.epochs = as_size(value);
    } else if (key == "seed") {
      p.seed = static_cast<std::uint64_t>(value.as_int());
    } else {
      unknown_key("ensemble", key);
    }
  }
  return std::make_unique<DeepEnsemble>(std::move(p));
}

}  // namespace

std::vector<std::string> regressor_names() {
  return {"classifier", "ensemble", "gbt", "linear", "mean", "mlp"};
}

std::unique_ptr<Regressor> make_regressor(const std::string& name,
                                          const std::string& params_json) {
  util::Json params;
  try {
    params = util::Json::parse(params_json);
  } catch (const std::invalid_argument& err) {
    throw std::invalid_argument(std::string("make_regressor: bad params: ") +
                                err.what());
  }
  if (!params.is_object()) {
    throw std::invalid_argument("make_regressor: params must be an object");
  }
  if (name == "mean") {
    if (params.size() != 0) {
      unknown_key("mean", params.items().front().first);
    }
    return std::make_unique<MeanRegressor>();
  }
  if (name == "linear") return make_linear(params);
  if (name == "gbt") return make_gbt(params);
  if (name == "classifier") return make_classifier(params);
  if (name == "mlp") return make_mlp(params);
  if (name == "ensemble") return make_ensemble(params);
  throw std::invalid_argument("make_regressor: unknown model family '" + name +
                              "'");
}

std::unique_ptr<Regressor> load_regressor_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    throw std::runtime_error("cannot open model file " + path);
  }
  return Regressor::load(in, path);
}

std::uint64_t hash_model_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open model file " + path);
  }
  std::uint64_t h = 14695981039346656037ull;  // FNV-1a 64 offset basis
  char buf[4096];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const auto n = static_cast<std::size_t>(in.gcount());
    for (std::size_t i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;  // FNV-1a 64 prime
    }
    if (!in) break;
  }
  return h;
}

std::string format_params_hash(std::uint64_t hash) {
  static const char* kHex = "0123456789abcdef";
  std::string out = "0x";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out += kHex[(hash >> shift) & 0xF];
  }
  return out;
}

std::size_t ModelRegistry::add(const std::string& path) {
  const std::uint64_t hash = hash_model_file(path);
  std::shared_ptr<const Regressor> model;
  try {
    model = load_regressor_file(path);
  } catch (const std::exception& err) {
    // The hash identifies the rejected artifact by content even though
    // it never became a model.
    throw std::runtime_error(
        std::string(err.what()) + " (registry slot " +
        std::to_string(slots_.size()) + ", generation 1, params hash " +
        format_params_hash(hash) + ")");
  }
  auto entry = std::make_shared<const ModelEntry>(
      ModelEntry{std::move(model), path, 1, hash});
  std::lock_guard<std::mutex> lock(mu_);
  slots_.push_back(std::move(entry));
  previous_.push_back(nullptr);
  paths_.push_back(path);
  return slots_.size() - 1;
}

std::size_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.size();
}

std::shared_ptr<const ModelEntry> ModelRegistry::entry(std::size_t i) const {
  std::lock_guard<std::mutex> lock(mu_);
  return slots_.at(i);
}

std::uint64_t ModelRegistry::publish(std::size_t i,
                                     std::shared_ptr<const Regressor> model,
                                     std::string source,
                                     std::uint64_t params_hash) {
  if (model == nullptr) {
    throw std::invalid_argument("ModelRegistry::publish: null model");
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = slots_.at(i);
  auto entry = std::make_shared<const ModelEntry>(
      ModelEntry{std::move(model), std::move(source), slot->generation + 1,
                 params_hash});
  previous_.at(i) = slot;
  slot = std::move(entry);
  return slot->generation;
}

std::shared_ptr<const ModelEntry> ModelRegistry::rollback(std::size_t i) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto prev = previous_.at(i);
  if (prev == nullptr) {
    throw std::runtime_error("ModelRegistry::rollback: slot " +
                             std::to_string(i) +
                             " has no previous publication");
  }
  auto cur = slots_.at(i);
  auto entry = std::make_shared<const ModelEntry>(
      ModelEntry{prev->model, prev->source, cur->generation + 1,
                 prev->params_hash});
  previous_.at(i) = std::move(cur);
  slots_.at(i) = entry;
  return entry;
}

}  // namespace iotax::ml
