// Ridge linear regression — the simplest model family the I/O modeling
// literature has used; serves as the weak baseline in the model-family
// ablation bench.
#pragma once

#include "src/data/scaler.hpp"
#include "src/ml/model.hpp"

namespace iotax::ml {

class LinearRegressor final : public Regressor {
 public:
  /// `l2` is the ridge penalty on standardized features. `log_transform`
  /// applies signed log1p before standardisation — the right default for
  /// Darshan counters spanning ten orders of magnitude; disable it when
  /// the inputs are already on a sane scale.
  explicit LinearRegressor(double l2 = 1.0, bool log_transform = true);

  void fit(const data::MatrixView& x, std::span<const double> y) override;
  std::vector<double> predict(const data::MatrixView& x) const override;
  std::string name() const override;
  std::size_t n_features() const override { return coef_.size(); }

  const std::vector<double>& coefficients() const { return coef_; }
  double intercept() const { return intercept_; }

  void save(std::ostream& out) const override;
  static LinearRegressor load(std::istream& in);

 private:
  double l2_;
  bool log_transform_;
  data::StandardScaler scaler_;
  std::vector<double> coef_;  // in standardized feature space
  double intercept_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotax::ml
