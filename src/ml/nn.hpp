// Feedforward neural network regressor with Adam, dropout, weight decay,
// and an optional heteroscedastic Gaussian-NLL head (mean + log-variance
// outputs). The NLL head is what the AutoDEUQ-style deep ensemble needs
// to separate aleatory from epistemic uncertainty (§VIII).
//
// Inputs are preprocessed internally (signed log1p + standardisation) and
// the target is centred/scaled, so callers pass raw counter features.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <vector>

#include "src/data/scaler.hpp"
#include "src/ml/model.hpp"
#include "src/util/rng.hpp"

namespace iotax::ml {

/// Optimizer state retained between fit() and fit_continue(): Adam
/// moments, the global step count, and the shuffle/dropout RNG streams.
/// Defined in nn.cpp; lives only on models fitted in this process
/// (checkpoints don't serialize optimizer moments, so loaded models
/// cannot continue).
struct MlpTrainState;

struct MlpParams {
  std::vector<std::size_t> hidden = {64, 64};
  double learning_rate = 1e-3;
  double weight_decay = 1e-5;
  double dropout = 0.0;
  std::size_t epochs = 30;
  std::size_t batch_size = 64;
  /// Two-output Gaussian head (mean, log variance) trained with NLL
  /// instead of a single-output MSE head.
  bool nll_head = false;
  std::uint64_t seed = 1;

  void validate() const;
  std::string to_string() const;
};

/// Mean/variance prediction from an NLL-head network (variance is the
/// predicted *aleatory* variance in target units).
struct DistPrediction {
  std::vector<double> mean;
  std::vector<double> variance;
};

class Mlp final : public Regressor {
 public:
  explicit Mlp(MlpParams params = {});
  // Out-of-line for the unique_ptr<MlpTrainState> member (incomplete
  // here); declaring the destructor suppresses the implicit moves, so
  // they are re-declared and defaulted in nn.cpp.
  ~Mlp() override;
  Mlp(Mlp&&) noexcept;
  Mlp& operator=(Mlp&&) noexcept;

  void fit(const data::MatrixView& x, std::span<const double> y) override;

  /// Warm-start continuation: run `extra_rounds` more epochs from the
  /// retained optimizer state (Adam moments, step count, shuffle and
  /// dropout RNG streams). The preprocessing scaler and target
  /// normalisation stay frozen at their fit-time values, so re-feeding
  /// the fit-time matrix reproduces the exact training stream and
  /// fit(N epochs) + fit_continue(x, y, M) is bit-identical to a cold
  /// fit with epochs == N + M (params_.epochs is advanced to match).
  /// Models loaded from a checkpoint carry no optimizer state and throw
  /// std::logic_error here.
  void fit_continue(const data::MatrixView& x, std::span<const double> y,
                    std::size_t extra_rounds) override;
  FitContinueInfo fit_continue_info() const override {
    return {true, "epoch"};
  }
  std::vector<double> predict(const data::MatrixView& x) const override;
  std::string name() const override;
  std::size_t n_features() const override {
    return layers_.empty() ? 0 : layers_.front().in;
  }

  /// fit() on an already log1p'd + standardised matrix, adopting the
  /// scaler that produced it. DeepEnsemble preprocesses its training set
  /// once and shares `z` across all members instead of each member
  /// re-materializing the identical transform.
  void fit_preprocessed(const data::Matrix& z, std::span<const double> y,
                        const data::StandardScaler& scaler);

  /// fit_continue() on an already log1p'd + standardised matrix (the
  /// output of scaler().transform_log1p). DeepEnsemble transforms its
  /// input once and continues every member against the shared copy.
  void fit_continue_preprocessed(const data::Matrix& z,
                                 std::span<const double> y,
                                 std::size_t extra_rounds);

  /// Mean and aleatory variance; requires an NLL head.
  DistPrediction predict_dist(const data::MatrixView& x) const;

  /// predict_dist writing into an existing buffer, so callers looping
  /// over many inputs (or ensemble members) can reuse one allocation.
  void predict_dist_into(const data::MatrixView& x, DistPrediction* out) const;

  /// predict_dist_into on an already-preprocessed matrix (the output of
  /// scaler().transform_log1p). DeepEnsemble transforms its input once
  /// and shares it across members — which all hold the same fit-time
  /// scaler — instead of materializing one identical copy per member.
  void predict_dist_preprocessed(const data::Matrix& z,
                                 DistPrediction* out) const;

  /// The fitted preprocessing scaler (log1p + standardise parameters).
  const data::StandardScaler& scaler() const { return scaler_; }

  /// Serialize the fitted network (weights + preprocessing) as versioned
  /// text; load() restores bit-identical predictions.
  void save(std::ostream& out) const override;
  static Mlp load(std::istream& in);

  const MlpParams& params() const { return params_; }

 private:
  struct Layer {
    std::size_t in = 0;
    std::size_t out = 0;
    std::vector<double> w;  // out x in, row-major
    std::vector<double> b;  // out
  };

  void forward(std::span<const double> input, std::vector<double>* acts,
               util::Rng* dropout_rng, std::vector<char>* masks) const;

  /// Inference-only forward over a dense row-major block (n_rows x
  /// input width, contiguous) through the dispatched GEMM microkernel
  /// (kernels::dense_forward) — bit-identical per row to forward()
  /// without dropout. Returns a pointer to the final layer's
  /// activations (n_rows x out_dim) inside one of the two ping-pong
  /// scratch buffers.
  const double* forward_batch(const double* in, std::size_t n_rows,
                              std::vector<double>& buf_a,
                              std::vector<double>& buf_b) const;

  /// Training loop on the preprocessed matrix (scaler_ already set).
  void fit_impl(const data::Matrix& z, std::span<const double> y);

  /// Run `n_epochs` epochs of the Adam/SGD loop against the retained
  /// train_state_ (which must exist). Shared by fit_impl (from a fresh
  /// state) and fit_continue (resuming).
  void run_epochs(const data::Matrix& z, std::span<const double> y,
                  std::size_t n_epochs);

  MlpParams params_;
  std::vector<Layer> layers_;
  data::StandardScaler scaler_;
  double y_mean_ = 0.0;
  double y_scale_ = 1.0;
  bool fitted_ = false;
  // Retained optimizer state for fit_continue; null on loaded models.
  std::unique_ptr<MlpTrainState> train_state_;

  // Activation buffer offsets per layer (input + each layer output).
  std::vector<std::size_t> act_offsets_;
  std::size_t act_total_ = 0;
};

}  // namespace iotax::ml
