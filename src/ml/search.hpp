// Hyperparameter search for the GBT models (§VI.B): the paper trains
// 8046 XGBoost configurations over four hyperparameters — number of
// trees, tree depth, row fraction and column fraction — and selects on a
// validation set. GridSearch reproduces that; RandomSearch is the cheaper
// alternative used by the ablation benches.
#pragma once

#include <functional>
#include <vector>

#include "src/ml/gbt.hpp"
#include "src/ml/metrics.hpp"

namespace iotax::ml {

struct SearchPoint {
  GbtParams params;
  double val_error = 0.0;  // median |log10 ratio| on the validation set
};

struct SearchResult {
  std::vector<SearchPoint> evaluated;  // in evaluation order
  SearchPoint best;
};

struct GbtGrid {
  std::vector<std::size_t> n_estimators = {8, 16, 32, 64, 128};
  std::vector<std::size_t> max_depth = {3, 6, 9, 12, 15, 18, 21};
  std::vector<double> subsample = {0.8, 1.0};
  std::vector<double> colsample = {0.8, 1.0};
  GbtParams base;  // learning rate, lambda etc. shared by all points
};

using SearchCallback = std::function<void(const SearchPoint&)>;

/// Exhaustive grid search; selects by validation median |log10| error.
SearchResult grid_search(const GbtGrid& grid, const data::MatrixView& x_train,
                         std::span<const double> y_train,
                         const data::MatrixView& x_val,
                         std::span<const double> y_val,
                         const SearchCallback& on_point = nullptr);

/// Random search over the same space.
SearchResult random_search(const GbtGrid& grid, std::size_t n_samples,
                           const data::MatrixView& x_train,
                           std::span<const double> y_train,
                           const data::MatrixView& x_val,
                           std::span<const double> y_val, util::Rng& rng,
                           const SearchCallback& on_point = nullptr);

/// Successive halving (Hyperband's inner loop): start many random
/// configurations on a small row budget, keep the best `1/elim_factor`
/// fraction at each rung, and multiply the budget by `elim_factor` until
/// the full training set is reached. Finds near-grid-quality configs at
/// a fraction of the grid's cost — the budget-aware alternative to the
/// paper's 8046-model exhaustive sweep.
struct HalvingParams {
  std::size_t initial_configs = 27;
  std::size_t elim_factor = 3;
  /// Row budget of the first rung as a fraction of the training set.
  double initial_budget_frac = 0.1;
  std::uint64_t seed = 59;
};

SearchResult successive_halving(const GbtGrid& grid,
                                const HalvingParams& params,
                                const data::MatrixView& x_train,
                                std::span<const double> y_train,
                                const data::MatrixView& x_val,
                                std::span<const double> y_val,
                                const SearchCallback& on_point = nullptr);

}  // namespace iotax::ml
