#include "src/ml/metrics.hpp"

#include <cmath>
#include <stdexcept>

#include "src/stats/descriptive.hpp"

namespace iotax::ml {

std::vector<double> log_errors(std::span<const double> y_true_log,
                               std::span<const double> y_pred_log) {
  if (y_true_log.size() != y_pred_log.size()) {
    throw std::invalid_argument("log_errors: size mismatch");
  }
  std::vector<double> errs(y_true_log.size());
  for (std::size_t i = 0; i < errs.size(); ++i) {
    errs[i] = y_pred_log[i] - y_true_log[i];
  }
  return errs;
}

double median_abs_log_error(std::span<const double> y_true_log,
                            std::span<const double> y_pred_log) {
  auto errs = log_errors(y_true_log, y_pred_log);
  for (auto& e : errs) e = std::fabs(e);
  return stats::median(errs);
}

double mean_abs_log_error(std::span<const double> y_true_log,
                          std::span<const double> y_pred_log) {
  auto errs = log_errors(y_true_log, y_pred_log);
  for (auto& e : errs) e = std::fabs(e);
  return stats::mean(errs);
}

double rmse_log(std::span<const double> y_true_log,
                std::span<const double> y_pred_log) {
  const auto errs = log_errors(y_true_log, y_pred_log);
  double acc = 0.0;
  for (double e : errs) acc += e * e;
  return std::sqrt(acc / static_cast<double>(errs.size()));
}

double log_error_to_percent(double log_err) {
  return (std::pow(10.0, log_err) - 1.0) * 100.0;
}

double percent_to_log_error(double percent) {
  if (percent <= -100.0) {
    throw std::invalid_argument("percent_to_log_error: percent <= -100");
  }
  return std::log10(1.0 + percent / 100.0);
}

}  // namespace iotax::ml
