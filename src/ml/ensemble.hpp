// AutoDEUQ-style deep ensemble with uncertainty decomposition (§VIII).
//
// K NLL-head MLPs with diverse architectures are trained on the same
// data; by the law of total variance the predictive variance splits into
//   aleatory  AU(x) = E_k[ sigma_k^2(x) ]   (mean predicted noise)
//   epistemic EU(x) = Var_k[ mu_k(x) ]      (model disagreement)
// High-EU samples are flagged out-of-distribution; the paper attributes
// their full error to the OoD class (litmus test 3).
#pragma once

#include <memory>
#include <vector>

#include "src/ml/nas.hpp"
#include "src/ml/nn.hpp"

namespace iotax::ml {

struct EnsembleParams {
  std::size_t size = 8;
  /// Architectures: either mutated from a NAS result (preferred, as in
  /// AutoDEUQ) or sampled randomly when no NAS history is given.
  NasParams space;
  std::size_t epochs = 25;
  std::uint64_t seed = 31;
  /// When non-empty, member architectures are drawn from the best
  /// candidates here (AutoDEUQ's reuse of the NAS population); leaving
  /// it empty samples fresh architectures from `space`.
  std::vector<NasCandidate> nas_history;
};

struct UncertaintyPrediction {
  std::vector<double> mean;       // ensemble mean prediction
  std::vector<double> aleatory;   // AU(x), variance units (log10^2)
  std::vector<double> epistemic;  // EU(x), variance units (log10^2)
};

class DeepEnsemble final : public Regressor {
 public:
  explicit DeepEnsemble(EnsembleParams params = {});

  /// Train the ensemble using params().nas_history for the member
  /// architectures (fresh random samples when it is empty). The training
  /// matrix is preprocessed (log1p + standardise) once and shared across
  /// all members, not re-materialized per member.
  void fit(const data::MatrixView& x, std::span<const double> y) override;

  /// Warm-start continuation: every member runs `extra_rounds` more
  /// epochs from its retained optimizer state against one shared
  /// preprocessed copy of `x` (member hyperparameters were all drawn
  /// up front at fit time, independent of the epoch count, so for the
  /// same data this is bit-identical to a cold fit with
  /// epochs == N + extra_rounds). Loaded ensembles carry no member
  /// optimizer state and throw std::logic_error.
  void fit_continue(const data::MatrixView& x, std::span<const double> y,
                    std::size_t extra_rounds) override;
  FitContinueInfo fit_continue_info() const override {
    return {true, "epoch"};
  }

  UncertaintyPrediction predict_uncertainty(const data::MatrixView& x) const;
  std::vector<double> predict(const data::MatrixView& x) const override;
  std::string name() const override;
  std::size_t n_features() const override {
    return members_.empty() ? 0 : members_.front()->n_features();
  }

  /// Persist the K fitted members ("iotax-ensemble" header followed by
  /// one Mlp block per member). The NAS search space / history are not
  /// round-tripped; a loaded ensemble predicts, it is not refittable
  /// from the same history.
  void save(std::ostream& out) const override;
  static DeepEnsemble load(std::istream& in);

  std::size_t size() const { return members_.size(); }
  const Mlp& member(std::size_t i) const { return *members_.at(i); }

  const EnsembleParams& params() const { return params_; }

 private:
  EnsembleParams params_;
  std::vector<std::unique_ptr<Mlp>> members_;
};

}  // namespace iotax::ml
