#include "src/ml/nn.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/ml/kernels/gemm.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/parallel.hpp"

namespace iotax::ml {

void MlpParams::validate() const {
  for (std::size_t h : hidden) {
    if (h == 0) throw std::invalid_argument("MlpParams: zero-width layer");
  }
  if (learning_rate <= 0.0) {
    throw std::invalid_argument("MlpParams: learning_rate <= 0");
  }
  if (weight_decay < 0.0) {
    throw std::invalid_argument("MlpParams: weight_decay < 0");
  }
  if (dropout < 0.0 || dropout >= 1.0) {
    throw std::invalid_argument("MlpParams: dropout not in [0,1)");
  }
  if (epochs == 0 || batch_size == 0) {
    throw std::invalid_argument("MlpParams: zero epochs/batch");
  }
}

std::string MlpParams::to_string() const {
  std::string s = "mlp[";
  for (std::size_t i = 0; i < hidden.size(); ++i) {
    if (i != 0) s += "x";
    s += std::to_string(hidden[i]);
  }
  s += ",lr=" + std::to_string(learning_rate);
  s += ",do=" + std::to_string(dropout);
  if (nll_head) s += ",nll";
  s += "]";
  return s;
}

// Per-layer Adam moments plus the step counter and the RNG streams the
// epoch loop consumes; holding these (the weights live in the layers)
// is exactly what makes epoch continuation bit-identical to having
// never stopped.
struct MlpTrainState {
  struct Adam {
    std::vector<double> mw, vw, mb, vb;
  };
  std::vector<Adam> adam;
  std::size_t step = 0;
  util::Rng shuffle_rng;
  util::Rng dropout_rng;
  /// Row visit order. Each epoch shuffles it IN PLACE, so epoch k's
  /// permutation compounds on epoch k-1's; a continuation must resume
  /// from the compounded order, not from identity.
  std::vector<std::size_t> order;
};

Mlp::Mlp(MlpParams params) : params_(std::move(params)) { params_.validate(); }

Mlp::~Mlp() = default;
Mlp::Mlp(Mlp&&) noexcept = default;
Mlp& Mlp::operator=(Mlp&&) noexcept = default;

namespace {
constexpr double kLogVarMin = -8.0;
constexpr double kLogVarMax = 4.0;
}  // namespace

void Mlp::forward(std::span<const double> input, std::vector<double>* acts,
                  util::Rng* dropout_rng, std::vector<char>* masks) const {
  // acts holds [input | layer0 out | layer1 out | ...]; pre-activation
  // values are ReLU'd in place for hidden layers.
  std::copy(input.begin(), input.end(), acts->begin());
  const double keep = 1.0 - params_.dropout;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    const double* in = acts->data() + act_offsets_[l];
    double* out = acts->data() + act_offsets_[l + 1];
    for (std::size_t o = 0; o < layer.out; ++o) {
      const double* w = layer.w.data() + o * layer.in;
      double acc = layer.b[o];
      for (std::size_t i = 0; i < layer.in; ++i) acc += w[i] * in[i];
      out[o] = acc;
    }
    const bool is_hidden = l + 1 < layers_.size();
    if (is_hidden) {
      for (std::size_t o = 0; o < layer.out; ++o) {
        out[o] = std::max(0.0, out[o]);  // ReLU
      }
      if (dropout_rng != nullptr && params_.dropout > 0.0) {
        // Inverted dropout; masks recorded for the backward pass.
        char* m = masks->data() + act_offsets_[l + 1];
        for (std::size_t o = 0; o < layer.out; ++o) {
          const bool kept = dropout_rng->uniform() < keep;
          m[o] = kept ? 1 : 0;
          out[o] = kept ? out[o] / keep : 0.0;
        }
      }
    }
  }
}

const double* Mlp::forward_batch(const double* in, std::size_t n_rows,
                                 std::vector<double>& buf_a,
                                 std::vector<double>& buf_b) const {
  const double* cur = in;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double>& out_buf = (l % 2 == 0) ? buf_a : buf_b;
    if (out_buf.size() < n_rows * layer.out) {
      out_buf.resize(n_rows * layer.out);
    }
    kernels::dense_forward(cur, n_rows, layer.in, layer.w.data(),
                           layer.b.data(), layer.out, out_buf.data());
    if (l + 1 < layers_.size()) {
      // ReLU, elementwise — same std::max as the per-row forward().
      const std::size_t total = n_rows * layer.out;
      for (std::size_t k = 0; k < total; ++k) {
        out_buf[k] = std::max(0.0, out_buf[k]);
      }
    }
    cur = out_buf.data();
  }
  return cur;
}

void Mlp::fit(const data::MatrixView& x, std::span<const double> y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("Mlp::fit: size mismatch");
  }
  if (x.rows() < 2) throw std::invalid_argument("Mlp::fit: need >= 2 rows");
  // Fused log1p + standardise: one materialized matrix instead of two.
  const data::Matrix z = scaler_.fit_transform_log1p(x);
  fit_impl(z, y);
}

void Mlp::fit_preprocessed(const data::Matrix& z, std::span<const double> y,
                           const data::StandardScaler& scaler) {
  if (z.rows() != y.size()) {
    throw std::invalid_argument("Mlp::fit_preprocessed: size mismatch");
  }
  if (z.rows() < 2) {
    throw std::invalid_argument("Mlp::fit_preprocessed: need >= 2 rows");
  }
  if (!scaler.fitted() || scaler.means().size() != z.cols()) {
    throw std::invalid_argument("Mlp::fit_preprocessed: scaler mismatch");
  }
  scaler_ = scaler;
  fit_impl(z, y);
}

void Mlp::fit_impl(const data::Matrix& z, std::span<const double> y) {
  IOTAX_TRACE_SPAN("mlp.fit");
  obs::span_arg("rows", static_cast<double>(z.rows()));
  obs::span_arg("epochs", static_cast<double>(params_.epochs));

  y_mean_ = stats::mean(y);
  y_scale_ = std::max(stats::stddev(y), 1e-6);
  std::vector<double> ty(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ty[i] = (y[i] - y_mean_) / y_scale_;
  }

  // Architecture: input -> hidden... -> output (1 or 2 units).
  const std::size_t out_dim = params_.nll_head ? 2 : 1;
  std::vector<std::size_t> widths;
  widths.push_back(z.cols());
  for (std::size_t h : params_.hidden) widths.push_back(h);
  widths.push_back(out_dim);

  util::Rng rng(params_.seed);
  layers_.clear();
  act_offsets_.assign(1, 0);
  act_total_ = widths[0];
  for (std::size_t l = 0; l + 1 < widths.size(); ++l) {
    Layer layer;
    layer.in = widths[l];
    layer.out = widths[l + 1];
    layer.w.resize(layer.in * layer.out);
    layer.b.assign(layer.out, 0.0);
    // He initialisation for ReLU nets.
    const double scale = std::sqrt(2.0 / static_cast<double>(layer.in));
    for (auto& w : layer.w) w = rng.normal(0.0, scale);
    layers_.push_back(std::move(layer));
    act_offsets_.push_back(act_total_);
    act_total_ += widths[l + 1];
  }

  // Fresh optimizer state; run_epochs advances it and fit_continue
  // resumes from wherever it stops.
  train_state_ = std::make_unique<MlpTrainState>();
  train_state_->adam.resize(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    train_state_->adam[l].mw.assign(layers_[l].w.size(), 0.0);
    train_state_->adam[l].vw.assign(layers_[l].w.size(), 0.0);
    train_state_->adam[l].mb.assign(layers_[l].b.size(), 0.0);
    train_state_->adam[l].vb.assign(layers_[l].b.size(), 0.0);
  }
  train_state_->shuffle_rng = rng.fork(1);
  train_state_->dropout_rng = rng.fork(2);

  run_epochs(z, y, params_.epochs);
  fitted_ = true;
}

void Mlp::run_epochs(const data::Matrix& z, std::span<const double> y,
                     std::size_t n_epochs) {
  // Target normalisation against the frozen fit-time statistics: the
  // same elementwise arithmetic the cold fit ran, so resuming on the
  // fit-time data recomputes an identical ty.
  std::vector<double> ty(y.size());
  for (std::size_t i = 0; i < y.size(); ++i) {
    ty[i] = (y[i] - y_mean_) / y_scale_;
  }

  MlpTrainState& st = *train_state_;
  std::vector<MlpTrainState::Adam>& adam = st.adam;
  constexpr double kBeta1 = 0.9;
  constexpr double kBeta2 = 0.999;
  constexpr double kEps = 1e-8;

  std::vector<double> acts(act_total_);
  std::vector<double> deltas(act_total_);
  std::vector<char> masks(act_total_, 1);
  std::vector<std::vector<double>> gw(layers_.size());
  std::vector<std::vector<double>> gb(layers_.size());
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    gw[l].assign(layers_[l].w.size(), 0.0);
    gb[l].assign(layers_[l].b.size(), 0.0);
  }

  std::vector<std::size_t>& order = st.order;
  if (order.size() != z.rows()) {
    order.resize(z.rows());
    for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  }

  for (std::size_t epoch = 0; epoch < n_epochs; ++epoch) {
    obs::SpanGuard epoch_span("mlp.epoch");
    st.shuffle_rng.shuffle(order);
    for (std::size_t start = 0; start < order.size();
         start += params_.batch_size) {
      const std::size_t end =
          std::min(order.size(), start + params_.batch_size);
      const auto batch_n = static_cast<double>(end - start);
      for (auto& g : gw) std::fill(g.begin(), g.end(), 0.0);
      for (auto& g : gb) std::fill(g.begin(), g.end(), 0.0);

      for (std::size_t bi = start; bi < end; ++bi) {
        const std::size_t r = order[bi];
        forward(z.row(r), &acts,
                params_.dropout > 0.0 ? &st.dropout_rng : nullptr, &masks);

        // Output deltas (dLoss/dPreactivation of the output layer).
        const std::size_t out_off = act_offsets_.back();
        std::fill(deltas.begin(), deltas.end(), 0.0);
        if (params_.nll_head) {
          const double mu = acts[out_off];
          const double log_var =
              std::clamp(acts[out_off + 1], kLogVarMin, kLogVarMax);
          const double var = std::exp(log_var);
          const double diff = mu - ty[r];
          deltas[out_off] = diff / var;
          deltas[out_off + 1] = 0.5 - 0.5 * diff * diff / var;
        } else {
          deltas[out_off] = acts[out_off] - ty[r];
        }

        // Backprop.
        for (std::size_t li = layers_.size(); li > 0; --li) {
          const std::size_t l = li - 1;
          const Layer& layer = layers_[l];
          const double* in = acts.data() + act_offsets_[l];
          const double* dout = deltas.data() + act_offsets_[l + 1];
          double* din = deltas.data() + act_offsets_[l];
          for (std::size_t o = 0; o < layer.out; ++o) {
            const double d = dout[o];
            if (d == 0.0) continue;
            double* gwp = gw[l].data() + o * layer.in;
            const double* w = layer.w.data() + o * layer.in;
            for (std::size_t i = 0; i < layer.in; ++i) {
              gwp[i] += d * in[i];
              din[i] += d * w[i];
            }
            gb[l][o] += d;
          }
          if (l > 0) {
            // Through ReLU (and dropout mask) of the previous layer.
            const char* m = masks.data() + act_offsets_[l];
            const double keep = 1.0 - params_.dropout;
            for (std::size_t i = 0; i < layer.in; ++i) {
              if (in[i] <= 0.0) {
                din[i] = 0.0;
              } else if (params_.dropout > 0.0) {
                din[i] = m[i] != 0 ? din[i] / keep : 0.0;
              }
            }
          }
        }
      }

      // Adam update with decoupled weight decay.
      ++st.step;
      const double bc1 = 1.0 - std::pow(kBeta1, static_cast<double>(st.step));
      const double bc2 = 1.0 - std::pow(kBeta2, static_cast<double>(st.step));
      for (std::size_t l = 0; l < layers_.size(); ++l) {
        Layer& layer = layers_[l];
        for (std::size_t i = 0; i < layer.w.size(); ++i) {
          const double g = gw[l][i] / batch_n;
          adam[l].mw[i] = kBeta1 * adam[l].mw[i] + (1.0 - kBeta1) * g;
          adam[l].vw[i] = kBeta2 * adam[l].vw[i] + (1.0 - kBeta2) * g * g;
          const double mhat = adam[l].mw[i] / bc1;
          const double vhat = adam[l].vw[i] / bc2;
          layer.w[i] -= params_.learning_rate *
                        (mhat / (std::sqrt(vhat) + kEps) +
                         params_.weight_decay * layer.w[i]);
        }
        for (std::size_t i = 0; i < layer.b.size(); ++i) {
          const double g = gb[l][i] / batch_n;
          adam[l].mb[i] = kBeta1 * adam[l].mb[i] + (1.0 - kBeta1) * g;
          adam[l].vb[i] = kBeta2 * adam[l].vb[i] + (1.0 - kBeta2) * g * g;
          const double mhat = adam[l].mb[i] / bc1;
          const double vhat = adam[l].vb[i] / bc2;
          layer.b[i] -= params_.learning_rate * mhat / (std::sqrt(vhat) + kEps);
        }
      }
    }

    if (obs::enabled()) {
      // Mean training loss on the post-epoch weights. Runs only under
      // observation and consumes no RNG (no dropout), so it cannot
      // perturb the fitted model.
      std::vector<double> eval_acts(act_total_);
      const std::size_t out_off = act_offsets_.back();
      double loss = 0.0;
      for (std::size_t r = 0; r < z.rows(); ++r) {
        forward(z.row(r), &eval_acts, nullptr, nullptr);
        const double diff = eval_acts[out_off] - ty[r];
        if (params_.nll_head) {
          const double log_var =
              std::clamp(eval_acts[out_off + 1], kLogVarMin, kLogVarMax);
          loss += 0.5 * (log_var + diff * diff / std::exp(log_var));
        } else {
          loss += 0.5 * diff * diff;
        }
      }
      obs::span_arg("epoch", static_cast<double>(epoch));
      obs::span_arg("loss", loss / static_cast<double>(z.rows()));
    }
  }
}

void Mlp::fit_continue(const data::MatrixView& x, std::span<const double> y,
                       std::size_t extra_rounds) {
  if (!fitted_) throw std::logic_error("Mlp::fit_continue: not fitted");
  if (x.rows() != y.size()) {
    throw std::invalid_argument("Mlp::fit_continue: size mismatch");
  }
  if (x.rows() < 2) {
    throw std::invalid_argument("Mlp::fit_continue: need >= 2 rows");
  }
  // The scaler is frozen at fit time; transform_log1p reproduces the
  // fit-time preprocessing bit-exactly (it is the same elementwise
  // arithmetic fit_transform_log1p ran after fitting).
  const data::Matrix z = scaler_.transform_log1p(x);
  fit_continue_preprocessed(z, y, extra_rounds);
}

void Mlp::fit_continue_preprocessed(const data::Matrix& z,
                                    std::span<const double> y,
                                    std::size_t extra_rounds) {
  if (!fitted_) throw std::logic_error("Mlp::fit_continue: not fitted");
  if (z.rows() != y.size()) {
    throw std::invalid_argument("Mlp::fit_continue: size mismatch");
  }
  if (z.cols() != n_features()) {
    throw std::invalid_argument("Mlp::fit_continue: feature count mismatch");
  }
  if (train_state_ == nullptr) {
    throw std::logic_error(
        "Mlp::fit_continue: no retained training state — checkpoints do not "
        "serialize optimizer moments, so loaded models cannot continue");
  }
  if (extra_rounds == 0) return;
  IOTAX_TRACE_SPAN("mlp.fit_continue");
  obs::span_arg("rows", static_cast<double>(z.rows()));
  obs::span_arg("extra_rounds", static_cast<double>(extra_rounds));
  run_epochs(z, y, extra_rounds);
  // A continued model has trained epochs + extra_rounds epochs total;
  // advancing the recorded count keeps name()/save() agreeing with a
  // cold fit of that length.
  params_.epochs += extra_rounds;
}

std::vector<double> Mlp::predict(const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("Mlp::predict: not fitted");
  IOTAX_TRACE_SPAN("mlp.predict");
  const data::Matrix z = scaler_.transform_log1p(x);
  std::vector<double> out(z.rows());
  // Rows are independent; each chunk owns scratch buffers and writes
  // only its own output slots (bit-identical at any thread count).
  const std::size_t out_dim = layers_.back().out;
  util::parallel_for_chunks(
      z.rows(),
      [&](std::size_t lo, std::size_t hi) {
        // z is row-major and contiguous, so the chunk is a dense block;
        // forward_batch runs it through the GEMM microkernel.
        std::vector<double> buf_a;
        std::vector<double> buf_b;
        const double* res = forward_batch(z.row(lo).data(), hi - lo,
                                          buf_a, buf_b);
        for (std::size_t r = lo; r < hi; ++r) {
          out[r] = res[(r - lo) * out_dim] * y_scale_ + y_mean_;
        }
      },
      64);
  return out;
}

DistPrediction Mlp::predict_dist(const data::MatrixView& x) const {
  DistPrediction pred;
  predict_dist_into(x, &pred);
  return pred;
}

void Mlp::predict_dist_into(const data::MatrixView& x,
                            DistPrediction* out) const {
  if (!fitted_) throw std::logic_error("Mlp::predict_dist: not fitted");
  const data::Matrix z = scaler_.transform_log1p(x);
  predict_dist_preprocessed(z, out);
}

void Mlp::predict_dist_preprocessed(const data::Matrix& z,
                                    DistPrediction* out) const {
  if (!fitted_) throw std::logic_error("Mlp::predict_dist: not fitted");
  if (!params_.nll_head) {
    throw std::logic_error("Mlp::predict_dist: requires an NLL head");
  }
  IOTAX_TRACE_SPAN("mlp.predict_dist");
  out->mean.resize(z.rows());
  out->variance.resize(z.rows());
  const std::size_t out_dim = layers_.back().out;
  util::parallel_for_chunks(
      z.rows(),
      [&](std::size_t lo, std::size_t hi) {
        std::vector<double> buf_a;
        std::vector<double> buf_b;
        const double* res = forward_batch(z.row(lo).data(), hi - lo,
                                          buf_a, buf_b);
        for (std::size_t r = lo; r < hi; ++r) {
          const double* orow = res + (r - lo) * out_dim;
          out->mean[r] = orow[0] * y_scale_ + y_mean_;
          const double log_var = std::clamp(orow[1], kLogVarMin, kLogVarMax);
          out->variance[r] = std::exp(log_var) * y_scale_ * y_scale_;
        }
      },
      64);
}

std::string Mlp::name() const { return params_.to_string(); }


namespace {

void expect_token(std::istream& in, const char* expected) {
  std::string token;
  in >> token;
  if (token != expected) {
    throw std::runtime_error(std::string("Mlp::load: expected '") + expected +
                             "', got '" + token + "'");
  }
}

}  // namespace

void Mlp::save(std::ostream& out) const {
  if (!fitted_) throw std::logic_error("Mlp::save: not fitted");
  out.precision(17);
  out << "iotax-mlp 1\n";
  out << "hidden " << params_.hidden.size();
  for (const auto h : params_.hidden) out << ' ' << h;
  out << '\n';
  out << "hyper " << params_.learning_rate << ' ' << params_.weight_decay
      << ' ' << params_.dropout << ' ' << params_.epochs << ' '
      << params_.batch_size << ' ' << (params_.nll_head ? 1 : 0) << ' '
      << params_.seed << '\n';
  out << "target " << y_mean_ << ' ' << y_scale_ << '\n';
  out << "scaler " << scaler_.means().size() << '\n';
  for (const auto m : scaler_.means()) out << m << ' ';
  out << '\n';
  for (const auto s : scaler_.stddevs()) out << s << ' ';
  out << '\n';
  out << "layers " << layers_.size() << '\n';
  for (const auto& layer : layers_) {
    out << "layer " << layer.in << ' ' << layer.out << '\n';
    for (const auto w : layer.w) out << w << ' ';
    out << '\n';
    for (const auto b : layer.b) out << b << ' ';
    out << '\n';
  }
  if (!out) throw std::runtime_error("Mlp::save: stream failure");
}

Mlp Mlp::load(std::istream& in) {
  expect_token(in, "iotax-mlp");
  int version = 0;
  in >> version;
  if (version != 1) throw std::runtime_error("Mlp::load: bad version");

  MlpParams params;
  expect_token(in, "hidden");
  std::size_t n_hidden = 0;
  in >> n_hidden;
  params.hidden.resize(n_hidden);
  for (auto& h : params.hidden) in >> h;
  expect_token(in, "hyper");
  int nll = 0;
  in >> params.learning_rate >> params.weight_decay >> params.dropout >>
      params.epochs >> params.batch_size >> nll >> params.seed;
  params.nll_head = nll != 0;

  Mlp model(params);
  expect_token(in, "target");
  in >> model.y_mean_ >> model.y_scale_;
  expect_token(in, "scaler");
  std::size_t n_features = 0;
  in >> n_features;
  std::vector<double> means(n_features);
  std::vector<double> stds(n_features);
  for (auto& v : means) in >> v;
  for (auto& v : stds) in >> v;
  model.scaler_ = data::StandardScaler::from_params(std::move(means),
                                                    std::move(stds));
  expect_token(in, "layers");
  std::size_t n_layers = 0;
  in >> n_layers;
  model.layers_.resize(n_layers);
  model.act_offsets_.assign(1, 0);
  model.act_total_ = n_features;
  for (auto& layer : model.layers_) {
    expect_token(in, "layer");
    in >> layer.in >> layer.out;
    layer.w.resize(layer.in * layer.out);
    layer.b.resize(layer.out);
    for (auto& w : layer.w) in >> w;
    for (auto& b : layer.b) in >> b;
    model.act_offsets_.push_back(model.act_total_);
    model.act_total_ += layer.out;
  }
  if (!in) throw std::runtime_error("Mlp::load: truncated");
  if (model.layers_.empty() || model.layers_.front().in != n_features) {
    throw std::runtime_error("Mlp::load: inconsistent architecture");
  }
  model.fitted_ = true;
  return model;
}

}  // namespace iotax::ml
