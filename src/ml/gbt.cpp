#include "src/ml/gbt.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <limits>
#include <optional>
#include <ostream>
#include <stdexcept>

#include "src/ml/kernels/hist.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/stats/descriptive.hpp"
#include "src/util/parallel.hpp"

namespace iotax::ml {

namespace {

// Node size (rows in node × features scanned) below which the
// per-feature scan stays serial: dispatch overhead would beat the win.
constexpr std::size_t kParallelScanWork = 8192;

}  // namespace

void GbtParams::validate() const {
  if (n_estimators == 0) throw std::invalid_argument("GbtParams: 0 trees");
  if (max_depth == 0) throw std::invalid_argument("GbtParams: 0 depth");
  if (learning_rate <= 0.0 || learning_rate > 1.0) {
    throw std::invalid_argument("GbtParams: learning_rate not in (0,1]");
  }
  if (reg_lambda < 0.0) throw std::invalid_argument("GbtParams: reg_lambda < 0");
  if (subsample <= 0.0 || subsample > 1.0 || colsample <= 0.0 ||
      colsample > 1.0) {
    throw std::invalid_argument("GbtParams: subsample/colsample not in (0,1]");
  }
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("GbtParams: max_bins not in [2,4096]");
  }
  for (const auto b : per_feature_bins) {
    if (b < 2 || b > kMaxBins) {
      throw std::invalid_argument("GbtParams: per-feature bins not in [2,4096]");
    }
  }
  if (loss == GbtLoss::kQuantile &&
      (quantile_alpha <= 0.0 || quantile_alpha >= 1.0)) {
    throw std::invalid_argument("GbtParams: quantile_alpha not in (0,1)");
  }
}

GradientBoostedTrees::GradientBoostedTrees(GbtParams params)
    : params_(params) {
  params_.validate();
}

double GradientBoostedTrees::Tree::predict(std::span<const double> row) const {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(idx)];
    idx = row[static_cast<std::size_t>(n.feature)] <= n.threshold ? n.left
                                                                  : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

double GradientBoostedTrees::Tree::predict_codes(
    std::span<const std::uint16_t> codes) const {
  int idx = 0;
  while (nodes[static_cast<std::size_t>(idx)].feature >= 0) {
    const auto& n = nodes[static_cast<std::size_t>(idx)];
    idx = static_cast<int>(codes[static_cast<std::size_t>(n.feature)]) <=
                  n.split_bin
              ? n.left
              : n.right;
  }
  return nodes[static_cast<std::size_t>(idx)].value;
}

GradientBoostedTrees::Tree GradientBoostedTrees::build_tree(
    const BinnedMatrix& binned, const std::vector<std::size_t>& rows,
    const std::vector<std::size_t>& features, std::span<const double> grad) {
  Tree tree;
  // Work queue: (node index, row slice [lo, hi) in `order`, depth).
  std::vector<std::size_t> order = rows;
  struct Item {
    int node;
    std::size_t lo;
    std::size_t hi;
    std::size_t depth;
  };
  std::vector<Item> stack;
  tree.nodes.push_back({});
  stack.push_back({0, 0, order.size(), 0});

  // Histogram scratch is owned by the kernel layer (thread-local per
  // tier); hessian == 1 for squared loss, so the kernels track gradient
  // sums and counts.
  std::vector<double> node_grad(order.size());
  std::vector<kernels::SplitScan> candidates;
  std::size_t hist_scans = 0;

  while (!stack.empty()) {
    const Item item = stack.back();
    stack.pop_back();
    auto& node = tree.nodes[static_cast<std::size_t>(item.node)];
    const std::size_t n = item.hi - item.lo;
    // Gather this node's gradients once, in ascending row order — every
    // downstream sum sees the same FP sequence as reading grad[order[i]]
    // in place, and the per-feature scans stream a dense buffer instead
    // of re-gathering per feature.
    for (std::size_t i = 0; i < n; ++i) {
      node_grad[i] = grad[order[item.lo + i]];
    }
    const double g_total = kernels::node_sum(node_grad.data(), n);
    const double h_total = static_cast<double>(n);
    const double leaf_value =
        -g_total / (h_total + params_.reg_lambda) * params_.learning_rate;
    const double parent_score =
        g_total * g_total / (h_total + params_.reg_lambda);

    if (item.depth >= params_.max_depth ||
        h_total < 2.0 * params_.min_child_weight) {
      node.value = leaf_value;
      continue;
    }

    // Histogram + best-bin scan of one feature, via the dispatched
    // kernel (kernels::feature_scan — the scalar tier is the seed loop
    // verbatim, the AVX2 tier is bit-identical to it). The
    // within-feature strict `>` picks the first bin attaining the
    // feature's max gain, so folding features in fixed order below
    // reproduces the sequential first-feature-wins selection exactly.
    const kernels::FeatureScanParams scan_params{
        g_total,
        h_total,
        params_.reg_lambda,
        params_.min_child_weight,
        params_.min_split_gain,
        parent_score};
    const auto scan_feature = [&](std::size_t f) -> kernels::SplitScan {
      const std::size_t bins = binned.n_bins(f);
      if (bins < 2) return {};
      return kernels::feature_scan(binned.col_codes(f).data(),
                                   order.data() + item.lo, n,
                                   node_grad.data(), bins, scan_params);
    };

    candidates.assign(features.size(), kernels::SplitScan{});
    hist_scans += features.size();
    if (n * features.size() >= kParallelScanWork && features.size() >= 2) {
      util::parallel_for(features.size(), [&](std::size_t j) {
        candidates[j] = scan_feature(features[j]);
      });
    } else {
      for (std::size_t j = 0; j < features.size(); ++j) {
        candidates[j] = scan_feature(features[j]);
      }
    }

    // Fixed-order argmin reduction over the per-feature slots.
    int best_feature = -1;
    std::size_t best_bin = 0;
    double best_gain = params_.min_split_gain;
    for (std::size_t j = 0; j < features.size(); ++j) {
      if (candidates[j].valid && candidates[j].gain > best_gain) {
        best_gain = candidates[j].gain;
        best_feature = static_cast<int>(features[j]);
        best_bin = candidates[j].bin;
      }
    }

    if (best_feature < 0) {
      node.value = leaf_value;
      continue;
    }

    // Partition rows in place: codes <= best_bin go left.
    const auto f = static_cast<std::size_t>(best_feature);
    auto mid_it = std::partition(
        order.begin() + static_cast<long>(item.lo),
        order.begin() + static_cast<long>(item.hi),
        [&](std::size_t r) { return binned.code(r, f) <= best_bin; });
    const auto mid = static_cast<std::size_t>(mid_it - order.begin());
    if (mid == item.lo || mid == item.hi) {
      node.value = leaf_value;  // degenerate split (shouldn't happen)
      continue;
    }

    node.feature = best_feature;
    node.threshold = binned.threshold(f, best_bin);
    node.split_bin = static_cast<int>(best_bin);
    node.left = static_cast<int>(tree.nodes.size());
    node.right = node.left + 1;
    importance_[f] += best_gain;
    const int left = node.left;
    const int right = node.right;
    tree.nodes.push_back({});
    tree.nodes.push_back({});
    stack.push_back({left, item.lo, mid, item.depth + 1});
    stack.push_back({right, mid, item.hi, item.depth + 1});
  }
  IOTAX_OBS_COUNT("gbt.hist_scans", hist_scans);
  return tree;
}

void GradientBoostedTrees::fit(const data::MatrixView& x,
                               std::span<const double> y) {
  fit_impl(x, y, data::MatrixView(), {}, nullptr);
}

void GradientBoostedTrees::fit_binned(const data::MatrixView& x,
                                      std::span<const double> y,
                                      const BinnedMatrix& binned) {
  if (binned.rows() != x.rows() || binned.cols() != x.cols()) {
    throw std::invalid_argument(
        "GradientBoostedTrees::fit_binned: binned view shape mismatch");
  }
  fit_impl(x, y, data::MatrixView(), {}, &binned);
}

void GradientBoostedTrees::fit_eval(const data::MatrixView& x,
                                    std::span<const double> y,
                                    const data::MatrixView& x_val,
                                    std::span<const double> y_val) {
  fit_impl(x, y, x_val, y_val, nullptr);
}

void GradientBoostedTrees::fit_impl(const data::MatrixView& x,
                                    std::span<const double> y,
                                    const data::MatrixView& x_val,
                                    std::span<const double> y_val,
                                    const BinnedMatrix* prebinned) {
  if (x_val.rows() != y_val.size()) {
    throw std::invalid_argument(
        "GradientBoostedTrees::fit_eval: validation size mismatch");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("GradientBoostedTrees::fit: size mismatch");
  }
  if (x.rows() < 2) {
    throw std::invalid_argument("GradientBoostedTrees::fit: need >= 2 rows");
  }
  IOTAX_TRACE_SPAN("gbt.fit");
  obs::span_arg("rows", static_cast<double>(x.rows()));
  obs::span_arg("cols", static_cast<double>(x.cols()));
  n_features_ = x.cols();
  importance_.assign(n_features_, 0.0);
  trees_.clear();
  packed_.clear();
  base_score_ = params_.loss == GbtLoss::kQuantile
                    ? stats::quantile(std::vector<double>(y.begin(), y.end()),
                                      params_.quantile_alpha)
                    : stats::mean(y);

  std::optional<BinnedMatrix> own_binned;
  if (prebinned == nullptr) {
    own_binned.emplace(params_.per_feature_bins.empty()
                           ? BinnedMatrix(x, params_.max_bins)
                           : BinnedMatrix(x, params_.per_feature_bins));
  }
  const BinnedMatrix& binned = prebinned != nullptr ? *prebinned : *own_binned;
  util::Rng rng(params_.seed);

  std::vector<double> preds(x.rows(), base_score_);
  std::vector<double> grad(x.rows());
  std::vector<std::size_t> all_rows(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) all_rows[i] = i;
  std::vector<std::size_t> all_features(n_features_);
  for (std::size_t i = 0; i < n_features_; ++i) all_features[i] = i;

  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(params_.subsample *
                                  static_cast<double>(x.rows())));
  const auto n_col = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.colsample *
                                  static_cast<double>(n_features_)));

  // Early-stopping bookkeeping. Validation rows are encoded into the
  // training bins once up front, so the per-tree evaluation walks codes
  // instead of gathering raw rows (one strided read per value total,
  // rather than per tree).
  const bool use_eval =
      params_.early_stopping_rounds > 0 && x_val.rows() > 0;
  std::vector<double> val_preds(x_val.rows(), base_score_);
  EncodedCodes val_codes;
  if (use_eval) {
    val_codes = binned.encode_all_ooc(x_val);
  }
  double best_val_rmse = std::numeric_limits<double>::infinity();
  std::size_t best_round = 0;
  std::size_t rounds_since_best = 0;

  for (std::size_t t = 0; t < params_.n_estimators; ++t) {
    const std::int64_t tree_t0 = obs::now_ns_if_enabled();
    if (params_.loss == GbtLoss::kQuantile) {
      // Pinball-loss gradient: -alpha below the prediction target,
      // (1-alpha) above; unit hessian (function-space gradient descent).
      const double a = params_.quantile_alpha;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        grad[i] = preds[i] >= y[i] ? (1.0 - a) : -a;
      }
    } else {
      for (std::size_t i = 0; i < x.rows(); ++i) grad[i] = preds[i] - y[i];
    }

    std::vector<std::size_t> rows =
        params_.subsample < 1.0 ? rng.sample_without_replacement(x.rows(),
                                                                 n_sub)
                                : all_rows;
    std::vector<std::size_t> features =
        params_.colsample < 1.0
            ? rng.sample_without_replacement(n_features_, n_col)
            : all_features;

    Tree tree = build_tree(binned, rows, features, grad);
    // Pack the new tree immediately: the per-round prediction updates
    // below run on the SoA layout, and packed_ stays in lockstep with
    // trees_ (re-synced only if early stopping trims the tail). Trees
    // built here always carry fit-time split bins.
    append_packed(tree, /*with_codes=*/true);
    const std::size_t t_idx = packed_.n_trees() - 1;
    // Update running predictions on all rows (per-index slots, so the
    // result is identical at any thread count). Routing by bin codes
    // gives the same leaf as routing the raw row by thresholds — see
    // Tree::predict_codes — without re-reading the (possibly strided,
    // table-backed) view once per tree.
    util::parallel_for_chunks(
        x.rows(),
        [&](std::size_t lo, std::size_t hi) {
          packed_.predict_codes_tree(t_idx, binned.row_codes(lo).data(),
                                     n_features_, hi - lo,
                                     preds.data() + lo);
        },
        512);
    IOTAX_OBS_COUNT("gbt.trees", 1);
    if (tree_t0 != 0) {
      IOTAX_OBS_HIST_MS("gbt.tree_ms",
                        static_cast<double>(obs::now_ns_if_enabled() - tree_t0) /
                            1e6);
    }
    if (use_eval) {
      // Batch-update the validation predictions, then accumulate the
      // squared error in row order — the same values and the same FP
      // sum sequence as the seed's fused loop, just two passes.
      packed_.predict_codes_tree(t_idx, val_codes.data(), n_features_,
                                 x_val.rows(), val_preds.data());
      double sq = 0.0;
      for (std::size_t i = 0; i < x_val.rows(); ++i) {
        const double d = val_preds[i] - y_val[i];
        sq += d * d;
      }
      const double rmse = std::sqrt(sq / static_cast<double>(x_val.rows()));
      if (rmse < best_val_rmse - 1e-12) {
        best_val_rmse = rmse;
        best_round = t + 1;
        rounds_since_best = 0;
      } else if (++rounds_since_best >= params_.early_stopping_rounds) {
        trees_.push_back(std::move(tree));
        break;
      }
    }
    trees_.push_back(std::move(tree));
  }
  if (use_eval && best_round < trees_.size()) {
    trees_.resize(best_round);  // keep the best-validation prefix
  }
  obs::span_arg("trees", static_cast<double>(trees_.size()));
  fitted_ = true;
  has_split_bins_ = true;
  if (packed_.n_trees() != trees_.size()) rebuild_packed();
}

void GradientBoostedTrees::fit_continue(const data::MatrixView& x,
                                        std::span<const double> y,
                                        std::size_t extra_rounds) {
  if (!fitted_) {
    throw std::logic_error("GradientBoostedTrees::fit_continue: not fitted");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument(
        "GradientBoostedTrees::fit_continue: size mismatch");
  }
  if (x.rows() < 2) {
    throw std::invalid_argument(
        "GradientBoostedTrees::fit_continue: need >= 2 rows");
  }
  if (x.cols() != n_features_) {
    throw std::invalid_argument(
        "GradientBoostedTrees::fit_continue: feature count mismatch");
  }
  if (extra_rounds == 0) return;
  IOTAX_TRACE_SPAN("gbt.fit_continue");
  obs::span_arg("rows", static_cast<double>(x.rows()));
  obs::span_arg("extra_rounds", static_cast<double>(extra_rounds));

  // Re-bin under the model's own budgets. For the matrix fit() saw this
  // reproduces the fit-time bins bit-exactly (binning is a deterministic
  // function of the column values), which is what makes warm == cold.
  const BinnedMatrix binned = params_.per_feature_bins.empty()
                                  ? BinnedMatrix(x, params_.max_bins)
                                  : BinnedMatrix(x, params_.per_feature_bins);

  // Replay the running predictions through the public predict() path:
  // base score first, then leaf values per row in ascending tree order —
  // the exact FP sequence the cold fit's per-round updates built up.
  // Routing by raw thresholds reaches the same leaves code routing did,
  // so this also works on loaded checkpoints that carry no fit-time
  // codes.
  std::vector<double> preds = predict(x);

  // Replay the subsample/colsample RNG stream past the existing rounds:
  // cold round t draws (rows, features) after t earlier rounds' draws,
  // so warm round trees_.size() + k must see the same stream position.
  util::Rng rng(params_.seed);
  const auto n_sub = std::max<std::size_t>(
      2, static_cast<std::size_t>(params_.subsample *
                                  static_cast<double>(x.rows())));
  const auto n_col = std::max<std::size_t>(
      1, static_cast<std::size_t>(params_.colsample *
                                  static_cast<double>(n_features_)));
  for (std::size_t t = 0; t < trees_.size(); ++t) {
    if (params_.subsample < 1.0) {
      rng.sample_without_replacement(x.rows(), n_sub);
    }
    if (params_.colsample < 1.0) {
      rng.sample_without_replacement(n_features_, n_col);
    }
  }

  std::vector<double> grad(x.rows());
  std::vector<std::size_t> all_rows(x.rows());
  for (std::size_t i = 0; i < x.rows(); ++i) all_rows[i] = i;
  std::vector<std::size_t> all_features(n_features_);
  for (std::size_t i = 0; i < n_features_; ++i) all_features[i] = i;

  // New trees land in a codes-only scratch forest for the per-round
  // prediction updates: the model's packed_ may hold loaded trees
  // without split bins, and PackedForest rejects code traversal unless
  // every tree carries them.
  kernels::PackedForest fresh;
  for (std::size_t k = 0; k < extra_rounds; ++k) {
    const std::int64_t tree_t0 = obs::now_ns_if_enabled();
    if (params_.loss == GbtLoss::kQuantile) {
      const double a = params_.quantile_alpha;
      for (std::size_t i = 0; i < x.rows(); ++i) {
        grad[i] = preds[i] >= y[i] ? (1.0 - a) : -a;
      }
    } else {
      for (std::size_t i = 0; i < x.rows(); ++i) grad[i] = preds[i] - y[i];
    }

    std::vector<std::size_t> rows =
        params_.subsample < 1.0 ? rng.sample_without_replacement(x.rows(),
                                                                 n_sub)
                                : all_rows;
    std::vector<std::size_t> features =
        params_.colsample < 1.0
            ? rng.sample_without_replacement(n_features_, n_col)
            : all_features;

    Tree tree = build_tree(binned, rows, features, grad);
    pack_tree(fresh, tree, /*with_codes=*/true);
    const std::size_t local_t = fresh.n_trees() - 1;
    util::parallel_for_chunks(
        x.rows(),
        [&](std::size_t lo, std::size_t hi) {
          fresh.predict_codes_tree(local_t, binned.row_codes(lo).data(),
                                   n_features_, hi - lo, preds.data() + lo);
        },
        512);
    IOTAX_OBS_COUNT("gbt.trees", 1);
    if (tree_t0 != 0) {
      IOTAX_OBS_HIST_MS("gbt.tree_ms",
                        static_cast<double>(obs::now_ns_if_enabled() - tree_t0) /
                            1e6);
    }
    trees_.push_back(std::move(tree));
  }
  obs::span_arg("trees", static_cast<double>(trees_.size()));
  // A continued forest has trees_.size() rounds total; advancing the
  // recorded count keeps name()/save() agreeing with a cold fit of that
  // length.
  params_.n_estimators = trees_.size();

  // The appended trees' split bins index this call's binning; any
  // earlier trees' bins index theirs. No single binning covers the
  // forest now, so code traversal is dropped and the whole forest is
  // relaid out for raw-value routing only.
  has_split_bins_ = false;
  rebuild_packed();
}

void GradientBoostedTrees::pack_tree(kernels::PackedForest& forest,
                                     const Tree& tree, bool with_codes) {
  std::vector<kernels::PackedForest::NodeDesc> descs;
  descs.reserve(tree.nodes.size());
  for (const auto& n : tree.nodes) {
    descs.push_back(
        {n.feature, n.threshold, n.split_bin, n.left, n.right, n.value});
  }
  forest.add_tree(descs, with_codes);
}

void GradientBoostedTrees::append_packed(const Tree& tree, bool with_codes) {
  pack_tree(packed_, tree, with_codes);
}

void GradientBoostedTrees::rebuild_packed() {
  packed_.clear();
  for (const auto& tree : trees_) append_packed(tree, has_split_bins_);
}

std::vector<double> GradientBoostedTrees::predict(
    const data::MatrixView& x) const {
  if (!fitted_) {
    throw std::logic_error("GradientBoostedTrees::predict: not fitted");
  }
  if (x.cols() != n_features_) {
    throw std::invalid_argument(
        "GradientBoostedTrees::predict: feature count mismatch");
  }
  IOTAX_TRACE_SPAN("gbt.predict");
  std::vector<double> out(x.rows(), base_score_);
  util::parallel_for_chunks(
      x.rows(),
      [&](std::size_t lo, std::size_t hi) {
        // Materialize the chunk as a dense block (the view may be
        // strided or row-mapped) and descend all trees on it at once.
        // The leaf per row — and the add order across trees — is
        // exactly the seed's per-row Tree::predict loop.
        std::vector<double> scratch;  // untouched when rows are spans
        std::vector<double> block((hi - lo) * n_features_);
        for (std::size_t i = lo; i < hi; ++i) {
          const auto row = x.row(i, scratch);
          std::copy(row.begin(), row.end(),
                    block.begin() +
                        static_cast<long>((i - lo) * n_features_));
        }
        packed_.predict_values(block.data(), n_features_, hi - lo,
                               out.data() + lo);
      },
      256);
  return out;
}

std::vector<double> GradientBoostedTrees::predict_codes(
    std::span<const std::uint16_t> codes) const {
  if (!fitted_) {
    throw std::logic_error("GradientBoostedTrees::predict_codes: not fitted");
  }
  if (!has_split_bins_) {
    throw std::logic_error(
        "GradientBoostedTrees::predict_codes: model has no fit-time split "
        "bins (loaded from disk?) — use predict()");
  }
  if (n_features_ == 0 || codes.size() % n_features_ != 0) {
    throw std::invalid_argument(
        "GradientBoostedTrees::predict_codes: code count not a multiple of "
        "the feature count");
  }
  IOTAX_TRACE_SPAN("gbt.predict");
  const std::size_t n = codes.size() / n_features_;
  std::vector<double> out(n, base_score_);
  util::parallel_for_chunks(
      n,
      [&](std::size_t lo, std::size_t hi) {
        packed_.predict_codes(codes.data() + lo * n_features_, n_features_,
                              hi - lo, out.data() + lo);
      },
      256);
  return out;
}

std::vector<double> GradientBoostedTrees::predict_codes_prefix(
    std::span<const std::uint16_t> codes, std::size_t n_trees) const {
  if (!fitted_) {
    throw std::logic_error("GradientBoostedTrees::predict_codes: not fitted");
  }
  if (!has_split_bins_) {
    throw std::logic_error(
        "GradientBoostedTrees::predict_codes: model has no fit-time split "
        "bins (loaded from disk?) — use predict()");
  }
  if (n_features_ == 0 || codes.size() % n_features_ != 0) {
    throw std::invalid_argument(
        "GradientBoostedTrees::predict_codes: code count not a multiple of "
        "the feature count");
  }
  IOTAX_TRACE_SPAN("gbt.predict");
  const std::size_t n = codes.size() / n_features_;
  std::vector<double> out(n, base_score_);
  util::parallel_for_chunks(
      n,
      [&](std::size_t lo, std::size_t hi) {
        packed_.predict_codes_prefix(n_trees, codes.data() + lo * n_features_,
                                     n_features_, hi - lo, out.data() + lo);
      },
      256);
  return out;
}

std::string GradientBoostedTrees::name() const {
  return "gbt[trees=" + std::to_string(params_.n_estimators) +
         ",depth=" + std::to_string(params_.max_depth) + "]";
}

std::vector<double> GradientBoostedTrees::feature_importances() const {
  std::vector<double> imp = importance_;
  double total = 0.0;
  for (double v : imp) total += v;
  if (total > 0.0) {
    for (double& v : imp) v /= total;
  }
  return imp;
}


namespace {

void expect_token(std::istream& in, const char* expected) {
  std::string token;
  in >> token;
  if (token != expected) {
    throw std::runtime_error(std::string("GradientBoostedTrees::load: "
                                         "expected '") +
                             expected + "', got '" + token + "'");
  }
}

}  // namespace

void GradientBoostedTrees::save(std::ostream& out) const {
  if (!fitted_) {
    throw std::logic_error("GradientBoostedTrees::save: not fitted");
  }
  out.precision(17);
  out << "iotax-gbt 1\n";
  out << "params " << params_.n_estimators << ' ' << params_.max_depth << ' '
      << params_.learning_rate << ' ' << params_.reg_lambda << ' '
      << params_.min_child_weight << ' ' << params_.min_split_gain << ' '
      << params_.subsample << ' ' << params_.colsample << ' '
      << params_.max_bins << ' ' << params_.seed << ' '
      << (params_.loss == GbtLoss::kQuantile ? 1 : 0) << ' '
      << params_.quantile_alpha << '\n';
  out << "base_score " << base_score_ << '\n';
  out << "n_features " << n_features_ << '\n';
  out << "importance";
  for (const double v : importance_) out << ' ' << v;
  out << '\n';
  out << "trees " << trees_.size() << '\n';
  for (const auto& tree : trees_) {
    out << "tree " << tree.nodes.size() << '\n';
    for (const auto& n : tree.nodes) {
      out << n.feature << ' ' << n.threshold << ' ' << n.left << ' '
          << n.right << ' ' << n.value << '\n';
    }
  }
  if (!out) throw std::runtime_error("GradientBoostedTrees::save: stream");
}

GradientBoostedTrees GradientBoostedTrees::load(std::istream& in) {
  expect_token(in, "iotax-gbt");
  int version = 0;
  in >> version;
  if (version != 1) {
    throw std::runtime_error("GradientBoostedTrees::load: bad version");
  }
  GbtParams params;
  expect_token(in, "params");
  int loss = 0;
  in >> params.n_estimators >> params.max_depth >> params.learning_rate >>
      params.reg_lambda >> params.min_child_weight >>
      params.min_split_gain >> params.subsample >> params.colsample >>
      params.max_bins >> params.seed >> loss >> params.quantile_alpha;
  params.loss = loss != 0 ? GbtLoss::kQuantile : GbtLoss::kSquaredError;
  GradientBoostedTrees model(params);
  expect_token(in, "base_score");
  in >> model.base_score_;
  expect_token(in, "n_features");
  in >> model.n_features_;
  expect_token(in, "importance");
  model.importance_.resize(model.n_features_);
  for (auto& v : model.importance_) in >> v;
  expect_token(in, "trees");
  std::size_t n_trees = 0;
  in >> n_trees;
  model.trees_.resize(n_trees);
  for (auto& tree : model.trees_) {
    expect_token(in, "tree");
    std::size_t n_nodes = 0;
    in >> n_nodes;
    tree.nodes.resize(n_nodes);
    for (auto& n : tree.nodes) {
      in >> n.feature >> n.threshold >> n.left >> n.right >> n.value;
      if (n.feature >= static_cast<int>(model.n_features_) ||
          n.left >= static_cast<int>(n_nodes) ||
          n.right >= static_cast<int>(n_nodes)) {
        throw std::runtime_error(
            "GradientBoostedTrees::load: node out of range");
      }
    }
  }
  if (!in) throw std::runtime_error("GradientBoostedTrees::load: truncated");
  model.fitted_ = true;
  // Loaded trees carry thresholds but no fit-time split bins
  // (has_split_bins_ stays false): the packed layout supports value
  // traversal only, and predict_codes keeps throwing.
  model.rebuild_packed();
  return model;
}

}  // namespace iotax::ml
