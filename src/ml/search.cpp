#include "src/ml/search.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <stdexcept>

#include "src/data/footprint.hpp"
#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace iotax::ml {

namespace {

// All candidates of one search share the base params' bin budgets, so
// the training matrix is binned once per search (not once per
// candidate) and every trial trains against the shared view.
BinnedMatrix bin_for_search(const GbtParams& base, const data::MatrixView& x) {
  return base.per_feature_bins.empty() ? BinnedMatrix(x, base.max_bins)
                                       : BinnedMatrix(x, base.per_feature_bins);
}

SearchPoint evaluate(const GbtParams& params, const data::MatrixView& x_train,
                     std::span<const double> y_train,
                     const BinnedMatrix& binned,
                     std::span<const std::uint16_t> val_codes,
                     std::span<const double> y_val) {
  obs::SpanGuard trial_span("search.trial");
  IOTAX_OBS_COUNT("search.trials", 1);
  GradientBoostedTrees model(params);
  model.fit_binned(x_train, y_train, binned);
  SearchPoint point;
  point.params = params;
  point.val_error = median_abs_log_error(y_val, model.predict_codes(val_codes));
  obs::span_arg("val_error", point.val_error);
  return point;
}

// The validation matrix encoded against the shared search binning:
// candidates all train on `binned`, so scoring them routes by these
// codes (bit-identical to predicting the raw rows, one strided read
// per value for the whole search instead of per trial). The buffer
// follows the out-of-core spill policy (EncodedCodes), so a large
// validation side never pins an O(rows) heap block.
using EncodedVal = EncodedCodes;

// True when the two candidates run the identical fit except for how
// many boosting rounds it keeps.
bool same_except_trees(const GbtParams& a, const GbtParams& b) {
  return a.max_depth == b.max_depth && a.loss == b.loss &&
         a.quantile_alpha == b.quantile_alpha &&
         a.learning_rate == b.learning_rate &&
         a.reg_lambda == b.reg_lambda &&
         a.min_child_weight == b.min_child_weight &&
         a.min_split_gain == b.min_split_gain &&
         a.subsample == b.subsample && a.colsample == b.colsample &&
         a.max_bins == b.max_bins &&
         a.per_feature_bins == b.per_feature_bins &&
         a.early_stopping_rounds == b.early_stopping_rounds &&
         a.seed == b.seed;
}

// Evaluate pre-generated candidates concurrently (each trial writes its
// own slot), then fold serially in candidate order so `on_point`
// callback order and the strict-< first-point-wins tie-breaking match
// the sequential loop bit for bit.
//
// Candidates that differ only in n_estimators are fitted once, not once
// each: boosting round t depends only on rounds before it (fit_binned
// disables early stopping, and the per-round rng stream is a function
// of the shared seed alone), so round t of the largest candidate builds
// the identical tree to round t of every smaller one. The group fits at
// its largest tree count and each member is scored against a tree
// prefix of that one model — per-candidate val errors, and therefore
// the selected point, are bit-identical to fitting every candidate
// separately, at a fraction of the tree builds. A grid with an
// n_estimators ladder of {16,32,64,128} pays for 128 trees per depth
// instead of 240.
SearchResult evaluate_all(const std::vector<GbtParams>& points,
                          const data::MatrixView& x_train,
                          std::span<const double> y_train,
                          const data::MatrixView& x_val,
                          std::span<const double> y_val,
                          const SearchCallback& on_point) {
  points.front().validate();  // surface bad shared params before binning
  const BinnedMatrix binned = bin_for_search(points.front(), x_train);
  const EncodedVal val = binned.encode_all_ooc(x_val);

  // Group candidate indices into prefix families, members sorted by
  // ascending n_estimators. Searches with per-candidate seeds (random,
  // halving populations) degenerate to singleton groups.
  std::vector<std::vector<std::size_t>> groups;
  std::vector<bool> claimed(points.size(), false);
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (claimed[i]) continue;
    std::vector<std::size_t> members{i};
    claimed[i] = true;
    for (std::size_t j = i + 1; j < points.size(); ++j) {
      if (!claimed[j] && same_except_trees(points[i], points[j])) {
        members.push_back(j);
        claimed[j] = true;
      }
    }
    std::stable_sort(members.begin(), members.end(),
                     [&](std::size_t a, std::size_t b) {
                       return points[a].n_estimators < points[b].n_estimators;
                     });
    groups.push_back(std::move(members));
  }

  std::vector<SearchPoint> evaluated(points.size());
  util::parallel_for(groups.size(), [&](std::size_t g) {
    const auto& members = groups[g];
    GradientBoostedTrees model(points[members.back()]);
    {
      obs::SpanGuard fit_span("search.fit");
      obs::span_arg("group_size", static_cast<double>(members.size()));
      model.fit_binned(x_train, y_train, binned);
    }
    for (const std::size_t idx : members) {
      obs::SpanGuard trial_span("search.trial");
      IOTAX_OBS_COUNT("search.trials", 1);
      SearchPoint point;
      point.params = points[idx];
      point.val_error = median_abs_log_error(
          y_val,
          model.predict_codes_prefix(val.codes(), points[idx].n_estimators));
      obs::span_arg("val_error", point.val_error);
      evaluated[idx] = std::move(point);
    }
  });
  SearchResult result;
  result.best.val_error = std::numeric_limits<double>::infinity();
  result.evaluated.reserve(points.size());
  for (auto& point : evaluated) {
    if (on_point) on_point(point);
    if (point.val_error < result.best.val_error) result.best = point;
    result.evaluated.push_back(std::move(point));
  }
  return result;
}

}  // namespace

SearchResult grid_search(const GbtGrid& grid, const data::MatrixView& x_train,
                         std::span<const double> y_train,
                         const data::MatrixView& x_val,
                         std::span<const double> y_val,
                         const SearchCallback& on_point) {
  if (grid.n_estimators.empty() || grid.max_depth.empty() ||
      grid.subsample.empty() || grid.colsample.empty()) {
    throw std::invalid_argument("grid_search: empty grid axis");
  }
  IOTAX_TRACE_SPAN("search.grid");
  std::vector<GbtParams> points;
  for (const auto trees : grid.n_estimators) {
    for (const auto depth : grid.max_depth) {
      for (const double sub : grid.subsample) {
        for (const double col : grid.colsample) {
          GbtParams p = grid.base;
          p.n_estimators = trees;
          p.max_depth = depth;
          p.subsample = sub;
          p.colsample = col;
          points.push_back(p);
        }
      }
    }
  }
  return evaluate_all(points, x_train, y_train, x_val, y_val, on_point);
}

SearchResult random_search(const GbtGrid& grid, std::size_t n_samples,
                           const data::MatrixView& x_train,
                           std::span<const double> y_train,
                           const data::MatrixView& x_val,
                           std::span<const double> y_val, util::Rng& rng,
                           const SearchCallback& on_point) {
  if (n_samples == 0) throw std::invalid_argument("random_search: 0 samples");
  IOTAX_TRACE_SPAN("search.random");
  // Serial RNG pass first, so the sampled stream is independent of how
  // trials are later scheduled.
  std::vector<GbtParams> points;
  points.reserve(n_samples);
  for (std::size_t i = 0; i < n_samples; ++i) {
    GbtParams p = grid.base;
    p.n_estimators = rng.choice(grid.n_estimators);
    p.max_depth = rng.choice(grid.max_depth);
    p.subsample = rng.choice(grid.subsample);
    p.colsample = rng.choice(grid.colsample);
    p.seed = rng.next();
    points.push_back(p);
  }
  return evaluate_all(points, x_train, y_train, x_val, y_val, on_point);
}


SearchResult successive_halving(const GbtGrid& grid,
                                const HalvingParams& params,
                                const data::MatrixView& x_train,
                                std::span<const double> y_train,
                                const data::MatrixView& x_val,
                                std::span<const double> y_val,
                                const SearchCallback& on_point) {
  if (params.initial_configs < 2 || params.elim_factor < 2) {
    throw std::invalid_argument("successive_halving: bad params");
  }
  if (params.initial_budget_frac <= 0.0 || params.initial_budget_frac > 1.0) {
    throw std::invalid_argument("successive_halving: bad budget fraction");
  }
  IOTAX_TRACE_SPAN("search.halving");
  util::Rng rng(params.seed);

  // Sample the initial population of configurations.
  std::vector<GbtParams> population;
  for (std::size_t i = 0; i < params.initial_configs; ++i) {
    GbtParams p = grid.base;
    p.n_estimators = rng.choice(grid.n_estimators);
    p.max_depth = rng.choice(grid.max_depth);
    p.subsample = rng.choice(grid.subsample);
    p.colsample = rng.choice(grid.colsample);
    p.seed = rng.next();
    population.push_back(p);
  }

  SearchResult result;
  result.best.val_error = std::numeric_limits<double>::infinity();
  double budget_frac = params.initial_budget_frac;
  std::vector<std::size_t> all_rows(x_train.rows());
  for (std::size_t i = 0; i < all_rows.size(); ++i) all_rows[i] = i;

  while (!population.empty()) {
    const bool last_rung =
        budget_frac >= 1.0 ||
        population.size() <= 1;
    // Rung training subset (a prefix of a fixed shuffle keeps rungs
    // nested, as successive halving prescribes).
    const auto n_rows = std::max<std::size_t>(
        16, static_cast<std::size_t>(std::min(1.0, budget_frac) *
                                     static_cast<double>(x_train.rows())));
    util::Rng shuffle_rng(params.seed);  // same shuffle at every rung
    auto rows = all_rows;
    shuffle_rng.shuffle(rows);
    rows.resize(n_rows);
    // Row-index view into the caller's matrix — the rung never copies
    // the training rows (previously a full take_rows per rung).
    std::vector<std::size_t> sub_rows;
    const data::MatrixView x_sub = x_train.take_rows(rows, &sub_rows);
    std::vector<double> y_sub(rows.size());
    for (std::size_t i = 0; i < rows.size(); ++i) y_sub[i] = y_train[rows[i]];

    // One binned view per rung, shared by the whole surviving
    // population; rung trials evaluate concurrently into slots. The
    // rung's bin edges come from its row subset, so the validation
    // encoding is per rung too.
    const BinnedMatrix binned_sub = bin_for_search(grid.base, x_sub);
    const EncodedVal val = binned_sub.encode_all_ooc(x_val);
    std::vector<SearchPoint> rung(population.size());
    util::parallel_for(population.size(), [&](std::size_t i) {
      rung[i] =
          evaluate(population[i], x_sub, y_sub, binned_sub, val.codes(), y_val);
    });
    for (const auto& point : rung) {
      if (on_point) on_point(point);
      if (last_rung && point.val_error < result.best.val_error) {
        result.best = point;
      }
      result.evaluated.push_back(point);
    }
    if (last_rung) break;
    // Keep the best 1/elim_factor of this rung.
    std::sort(rung.begin(), rung.end(),
              [](const SearchPoint& a, const SearchPoint& b) {
                return a.val_error < b.val_error;
              });
    const auto survivors = std::max<std::size_t>(
        1, rung.size() / params.elim_factor);
    population.clear();
    for (std::size_t i = 0; i < survivors; ++i) {
      population.push_back(rung[i].params);
    }
    budget_frac *= static_cast<double>(params.elim_factor);
  }
  return result;
}

}  // namespace iotax::ml
