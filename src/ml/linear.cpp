#include "src/ml/linear.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/stats/descriptive.hpp"

namespace iotax::ml {

LinearRegressor::LinearRegressor(double l2, bool log_transform)
    : l2_(l2), log_transform_(log_transform) {
  if (l2 < 0.0) throw std::invalid_argument("LinearRegressor: l2 < 0");
}

namespace {

/// Solve (A + l2*I) w = b for symmetric positive definite A via Cholesky.
std::vector<double> solve_spd(std::vector<double> a, std::vector<double> b,
                              std::size_t n, double ridge) {
  for (std::size_t i = 0; i < n; ++i) a[i * n + i] += ridge;
  // Cholesky: A = L L^T (in place, lower triangle).
  for (std::size_t j = 0; j < n; ++j) {
    double d = a[j * n + j];
    for (std::size_t k = 0; k < j; ++k) d -= a[j * n + k] * a[j * n + k];
    if (d <= 0.0) {
      throw std::runtime_error("LinearRegressor: matrix not positive definite");
    }
    a[j * n + j] = std::sqrt(d);
    for (std::size_t i = j + 1; i < n; ++i) {
      double s = a[i * n + j];
      for (std::size_t k = 0; k < j; ++k) s -= a[i * n + k] * a[j * n + k];
      a[i * n + j] = s / a[j * n + j];
    }
  }
  // Forward substitution: L z = b.
  for (std::size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (std::size_t k = 0; k < i; ++k) s -= a[i * n + k] * b[k];
    b[i] = s / a[i * n + i];
  }
  // Back substitution: L^T w = z.
  for (std::size_t ii = n; ii > 0; --ii) {
    const std::size_t i = ii - 1;
    double s = b[i];
    for (std::size_t k = i + 1; k < n; ++k) s -= a[k * n + i] * b[k];
    b[i] = s / a[i * n + i];
  }
  return b;
}

}  // namespace

void LinearRegressor::fit(const data::MatrixView& x,
                          std::span<const double> y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("LinearRegressor::fit: size mismatch");
  }
  if (x.rows() < 2) {
    throw std::invalid_argument("LinearRegressor::fit: need >= 2 rows");
  }
  const data::Matrix z = log_transform_ ? scaler_.fit_transform_log1p(x)
                                        : scaler_.fit_transform(x);
  const std::size_t p = z.cols();
  const double y_mean = stats::mean(y);

  // Normal equations on centered target: Z^T Z w = Z^T (y - mean).
  std::vector<double> gram(p * p, 0.0);
  std::vector<double> rhs(p, 0.0);
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const auto row = z.row(r);
    const double yc = y[r] - y_mean;
    for (std::size_t i = 0; i < p; ++i) {
      rhs[i] += row[i] * yc;
      for (std::size_t j = i; j < p; ++j) gram[i * p + j] += row[i] * row[j];
    }
  }
  for (std::size_t i = 0; i < p; ++i) {
    for (std::size_t j = 0; j < i; ++j) gram[i * p + j] = gram[j * p + i];
  }
  coef_ = solve_spd(std::move(gram), std::move(rhs), p,
                    l2_ + 1e-8 * static_cast<double>(x.rows()));
  intercept_ = y_mean;
  fitted_ = true;
}

std::vector<double> LinearRegressor::predict(const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("LinearRegressor::predict: not fitted");
  const data::Matrix z =
      log_transform_ ? scaler_.transform_log1p(x) : scaler_.transform(x);
  std::vector<double> out(z.rows(), intercept_);
  for (std::size_t r = 0; r < z.rows(); ++r) {
    const auto row = z.row(r);
    double acc = 0.0;
    for (std::size_t c = 0; c < coef_.size(); ++c) acc += row[c] * coef_[c];
    out[r] += acc;
  }
  return out;
}

std::string LinearRegressor::name() const {
  return "ridge[l2=" + std::to_string(l2_) + "]";
}

void LinearRegressor::save(std::ostream& out) const {
  if (!fitted_) throw std::logic_error("LinearRegressor::save: not fitted");
  out.precision(17);
  out << "iotax-linear 1\n";
  out << "params " << l2_ << ' ' << (log_transform_ ? 1 : 0) << '\n';
  out << "intercept " << intercept_ << '\n';
  out << "scaler " << scaler_.means().size() << '\n';
  for (const double m : scaler_.means()) out << m << ' ';
  out << '\n';
  for (const double s : scaler_.stddevs()) out << s << ' ';
  out << '\n';
  out << "coef " << coef_.size() << '\n';
  for (const double c : coef_) out << c << ' ';
  out << '\n';
  if (!out) throw std::runtime_error("LinearRegressor::save: stream failure");
}

LinearRegressor LinearRegressor::load(std::istream& in) {
  const auto expect = [&](const char* token) {
    std::string got;
    in >> got;
    if (got != token) {
      throw std::runtime_error(std::string("LinearRegressor::load: expected '") +
                               token + "', got '" + got + "'");
    }
  };
  expect("iotax-linear");
  int version = 0;
  in >> version;
  if (version != 1) throw std::runtime_error("LinearRegressor::load: version");
  double l2 = 0.0;
  int log_transform = 0;
  expect("params");
  in >> l2 >> log_transform;
  LinearRegressor model(l2, log_transform != 0);
  expect("intercept");
  in >> model.intercept_;
  expect("scaler");
  std::size_t p = 0;
  in >> p;
  std::vector<double> means(p);
  std::vector<double> stds(p);
  for (auto& v : means) in >> v;
  for (auto& v : stds) in >> v;
  model.scaler_ =
      data::StandardScaler::from_params(std::move(means), std::move(stds));
  expect("coef");
  std::size_t n_coef = 0;
  in >> n_coef;
  if (n_coef != p) {
    throw std::runtime_error("LinearRegressor::load: coef/scaler mismatch");
  }
  model.coef_.resize(n_coef);
  for (auto& v : model.coef_) in >> v;
  if (!in) throw std::runtime_error("LinearRegressor::load: truncated");
  model.fitted_ = true;
  return model;
}

}  // namespace iotax::ml
