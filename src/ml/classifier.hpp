// Binary classifier for the burst-prediction workload, built as a thin
// calibrated decision layer over the GBT regressor rather than a new
// boosting objective: the booster fits {0,1} labels under squared loss
// (probability regression), and the classifier decides labels either by
// a raw-score threshold or through a Platt-calibrated sigmoid. Keeping
// the booster untouched preserves the bit-identity contracts of the
// histogram/forest kernels; the calibration layer is a handful of
// serial, deterministic Newton steps.
//
// BurstClassifier is a Regressor — predict() returns the positive-class
// probability — so the whole persistence/registry/serve stack (magic
// "iotax-classifier", `iotax serve`, ModelRegistry) carries classifier
// checkpoints with zero new plumbing.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>

#include "src/ml/gbt.hpp"
#include "src/ml/model.hpp"

namespace iotax::ml {

/// How scores become labels.
///   kThreshold — label = (raw booster score >= threshold); probability
///                is the score clamped to [0, 1]. No calibration state.
///   kLogistic  — probability = sigmoid(a*score + b) with (a, b) fitted
///                on the training scores by Platt's method; label =
///                (probability >= threshold), decided in score space so
///                the decision is exactly monotone in the score.
enum class ClassifierKind { kThreshold, kLogistic };

struct ClassifierParams {
  ClassifierKind kind = ClassifierKind::kLogistic;
  /// Decision threshold: on the raw score for kThreshold (any finite
  /// value), on the calibrated probability for kLogistic (in (0, 1)).
  double threshold = 0.5;
  /// Underlying booster configuration (loss must stay kSquaredError —
  /// the labels are the regression targets).
  GbtParams gbt;
  /// Newton iteration cap for the Platt fit (kLogistic only).
  std::size_t platt_max_iters = 100;

  void validate() const;
};

class BurstClassifier final : public Regressor {
 public:
  explicit BurstClassifier(ClassifierParams params = {});

  /// Train on binary targets: every y value must be exactly 0.0 or 1.0.
  void fit(const data::MatrixView& x, std::span<const double> y) override;

  /// Positive-class probability per row, in [0, 1].
  std::vector<double> predict(const data::MatrixView& x) const override;

  /// Hard 0/1 labels per row under the configured kind and threshold.
  std::vector<double> predict_labels(const data::MatrixView& x) const;

  /// Raw (uncalibrated) booster scores.
  std::vector<double> decision_scores(const data::MatrixView& x) const;

  /// Continuation is deliberately unsupported: appending boosting rounds
  /// would silently stale the Platt layer fitted to the old scores, so
  /// the family reports {supported = false} and fit_continue throws via
  /// the base default. The equivalence suite pins this truthfulness.
  FitContinueInfo fit_continue_info() const override { return {}; }

  std::string name() const override;
  std::size_t n_features() const override { return gbt_.n_features(); }

  void save(std::ostream& out) const override;
  static BurstClassifier load(std::istream& in);

  const ClassifierParams& params() const { return params_; }
  /// Platt slope/intercept (kLogistic, fitted); 1/0 otherwise.
  double platt_a() const { return platt_a_; }
  double platt_b() const { return platt_b_; }
  const GradientBoostedTrees& booster() const { return gbt_; }

 private:
  ClassifierParams params_;
  GradientBoostedTrees gbt_;
  double platt_a_ = 1.0;
  double platt_b_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotax::ml
