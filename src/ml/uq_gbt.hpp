// Tree-based aleatory-variance estimation: an alternative to the deep
// ensemble's NLL heads for sites that only run tree models. A mean GBT is
// fitted first; a second GBT then regresses log(residual^2) on the same
// features, yielding a per-job heteroscedastic variance estimate
// (cf. the paper's reference [20], which models I/O variability with a
// conditional model). Used by the UQ ablation to show the ensemble and
// the tree estimator broadly agree on *aleatory* uncertainty — while only
// the ensemble can expose *epistemic* uncertainty.
#pragma once

#include "src/ml/gbt.hpp"

namespace iotax::ml {

/// Mean + variance prediction (kept separate from nn.hpp's DistPrediction
/// to avoid a dependency between the tree and NN stacks).
struct GbtDistPrediction {
  std::vector<double> mean;
  std::vector<double> variance;
};

class GbtUncertainty {
 public:
  GbtUncertainty(GbtParams mean_params, GbtParams variance_params);

  void fit(const data::MatrixView& x, std::span<const double> y);

  /// Mean prediction and aleatory variance per row.
  GbtDistPrediction predict_dist(const data::MatrixView& x) const;

  const GradientBoostedTrees& mean_model() const { return mean_; }
  const GradientBoostedTrees& variance_model() const { return variance_; }

 private:
  GradientBoostedTrees mean_;
  GradientBoostedTrees variance_;
  bool fitted_ = false;
};

}  // namespace iotax::ml
