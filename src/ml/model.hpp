// Common regressor interface: every model maps a feature Matrix to log10
// I/O throughput predictions.
//
// fit/predict take MatrixView, so models train and score straight off a
// row/column subset of shared storage; a plain Matrix converts
// implicitly, so `model.fit(matrix, y)` call sites read unchanged.
// Views are consumed within the call — no model retains one.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "src/data/view.hpp"

namespace iotax::ml {

/// Capability report for Regressor::fit_continue. The online loop asks
/// for this instead of dynamic_cast-probing concrete families: a model
/// either supports warm-start continuation (and names the unit one
/// round of continuation adds — "tree" for boosters, "epoch" for
/// gradient trainers) or it does not and fit_continue throws.
struct FitContinueInfo {
  bool supported = false;
  /// What one `extra_rounds` step means for this family ("tree",
  /// "epoch"); empty when unsupported.
  const char* round_unit = "";
};

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on features x (n_samples x n_features) and targets y (log10
  /// throughput). Implementations must be deterministic given their
  /// configured seed and must produce bit-identical results whether x is
  /// a whole Matrix or a view of one.
  virtual void fit(const data::MatrixView& x, std::span<const double> y) = 0;

  /// Predict one value per row; requires fit() first.
  virtual std::vector<double> predict(const data::MatrixView& x) const = 0;

  /// Warm-start continuation: add `extra_rounds` more rounds of training
  /// (trees for GBT, epochs for MLP/ensemble members) on top of the
  /// fitted state. The v2 contract is bit-exact resumability: for the
  /// same data and seed, fit(N rounds) followed by
  /// fit_continue(x, y, M) must equal a cold fit(N + M rounds) — same
  /// predictions to the last bit, at any IOTAX_THREADS. Families that
  /// cannot continue (mean, linear — they have no round structure)
  /// report {supported = false} from fit_continue_info() and the default
  /// implementation here throws std::logic_error naming the model.
  virtual void fit_continue(const data::MatrixView& x,
                            std::span<const double> y,
                            std::size_t extra_rounds);

  /// Whether fit_continue is implemented for this family, and what one
  /// round means. Callers must check this instead of probing concrete
  /// types; the base default reports unsupported.
  virtual FitContinueInfo fit_continue_info() const { return {}; }

  /// Short human-readable description ("gbt[trees=32,depth=21]").
  virtual std::string name() const = 0;

  /// Width of the feature vectors this fitted model consumes, or 0 when
  /// the family accepts any width (MeanRegressor). The serve admission
  /// path rejects mis-sized requests against this before batching.
  virtual std::size_t n_features() const { return 0; }

  /// Serialize the fitted model as versioned text ("iotax-<kind> <ver>"
  /// header). The default throws std::logic_error for model families
  /// without persistence.
  virtual void save(std::ostream& out) const;

  /// Restore any regressor saved through save(): peeks the magic token
  /// and dispatches to the matching family's loader. The stream must be
  /// seekable (file or string stream). `source` names the stream in
  /// diagnostics (a file path, or "" for anonymous streams); an
  /// unrecognized header reports the source, the offending token, and
  /// the known model magics.
  static std::unique_ptr<Regressor> load(std::istream& in,
                                         const std::string& source = "");
};

/// The magic tokens Regressor::load dispatches on, sorted ("iotax-gbt",
/// "iotax-mlp", ...). Error messages and tooling list these so a bad
/// checkpoint says what would have been accepted.
const std::vector<std::string>& known_model_magics();

/// Baseline that predicts the training-set mean: the weakest legitimate
/// model, used to normalise taxonomy error fractions.
class MeanRegressor final : public Regressor {
 public:
  void fit(const data::MatrixView& x, std::span<const double> y) override;
  std::vector<double> predict(const data::MatrixView& x) const override;
  std::string name() const override { return "mean"; }

  void save(std::ostream& out) const override;
  static MeanRegressor load(std::istream& in);

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotax::ml
