// Common regressor interface: every model maps a feature Matrix to log10
// I/O throughput predictions.
#pragma once

#include <iosfwd>
#include <memory>
#include <span>
#include <vector>

#include "src/data/matrix.hpp"

namespace iotax::ml {

class Regressor {
 public:
  virtual ~Regressor() = default;

  /// Train on features x (n_samples x n_features) and targets y (log10
  /// throughput). Implementations must be deterministic given their
  /// configured seed.
  virtual void fit(const data::Matrix& x, std::span<const double> y) = 0;

  /// Predict one value per row; requires fit() first.
  virtual std::vector<double> predict(const data::Matrix& x) const = 0;

  /// Short human-readable description ("gbt[trees=32,depth=21]").
  virtual std::string name() const = 0;

  /// Serialize the fitted model as versioned text ("iotax-<kind> <ver>"
  /// header). The default throws std::logic_error for model families
  /// without persistence.
  virtual void save(std::ostream& out) const;

  /// Restore any regressor saved through save(): peeks the magic token
  /// and dispatches to the matching family's loader. The stream must be
  /// seekable (file or string stream).
  static std::unique_ptr<Regressor> load(std::istream& in);
};

/// Baseline that predicts the training-set mean: the weakest legitimate
/// model, used to normalise taxonomy error fractions.
class MeanRegressor final : public Regressor {
 public:
  void fit(const data::Matrix& x, std::span<const double> y) override;
  std::vector<double> predict(const data::Matrix& x) const override;
  std::string name() const override { return "mean"; }

  void save(std::ostream& out) const override;
  static MeanRegressor load(std::istream& in);

 private:
  double mean_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotax::ml
