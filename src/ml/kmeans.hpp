// K-means clustering of jobs by their I/O features — the other ML
// direction the paper surveys in §II (workload clustering, as in the
// authors' Gauge tool): group the workload so experts can reason about
// classes of jobs instead of individual ones. Here it feeds the
// per-cluster error breakdown: *which kinds of jobs* does a throughput
// model fail on?
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/data/scaler.hpp"

namespace iotax::ml {

struct KMeansParams {
  std::size_t k = 8;
  std::size_t max_iters = 100;
  /// Restarts with different initialisations; best inertia wins.
  std::size_t n_init = 4;
  double tol = 1e-6;
  std::uint64_t seed = 67;

  void validate() const;
};

class KMeans {
 public:
  explicit KMeans(KMeansParams params = {});

  /// Cluster rows of x (internally signed-log1p + standardised, like the
  /// MLPs, so counters on wild scales cluster sanely). k-means++ init.
  void fit(const data::MatrixView& x);

  /// Nearest-centroid assignment for new rows.
  std::vector<std::size_t> predict(const data::MatrixView& x) const;

  /// Assignments of the training rows.
  const std::vector<std::size_t>& labels() const { return labels_; }
  /// Within-cluster sum of squared distances (standardised space).
  double inertia() const { return inertia_; }
  std::size_t k() const { return params_.k; }
  /// Centroids in the standardised feature space (k x features).
  const data::Matrix& centroids() const { return centroids_; }

 private:
  double assign(const data::Matrix& z, const data::Matrix& centroids,
                std::vector<std::size_t>* labels) const;

  KMeansParams params_;
  data::StandardScaler scaler_;
  data::Matrix centroids_{0, 0};
  std::vector<std::size_t> labels_;
  double inertia_ = 0.0;
  bool fitted_ = false;
};

}  // namespace iotax::ml
