#include "src/ml/model.hpp"

#include <istream>
#include <ostream>
#include <stdexcept>

#include "src/ml/classifier.hpp"
#include "src/ml/ensemble.hpp"
#include "src/ml/gbt.hpp"
#include "src/ml/linear.hpp"
#include "src/ml/nn.hpp"
#include "src/stats/descriptive.hpp"

namespace iotax::ml {

void Regressor::save(std::ostream& /*out*/) const {
  throw std::logic_error("Regressor::save: '" + name() +
                         "' does not support serialization");
}

void Regressor::fit_continue(const data::MatrixView& /*x*/,
                             std::span<const double> /*y*/,
                             std::size_t /*extra_rounds*/) {
  throw std::logic_error("Regressor::fit_continue: '" + name() +
                         "' does not support warm-start continuation "
                         "(fit_continue_info().supported is false)");
}

const std::vector<std::string>& known_model_magics() {
  static const std::vector<std::string> kMagics = {
      "iotax-classifier", "iotax-ensemble", "iotax-gbt", "iotax-linear",
      "iotax-mean", "iotax-mlp"};
  return kMagics;
}

std::unique_ptr<Regressor> Regressor::load(std::istream& in,
                                           const std::string& source) {
  const std::string where = source.empty() ? "" : source + ": ";
  // Peek the magic token ("iotax-<kind>") without consuming it, then
  // hand the stream to the family's own loader.
  const auto start = in.tellg();
  if (start == std::istream::pos_type(-1)) {
    throw std::runtime_error("Regressor::load: " + where +
                             "stream not seekable");
  }
  std::string magic;
  in >> magic;
  in.clear();
  in.seekg(start);
  if (magic == "iotax-gbt") {
    return std::make_unique<GradientBoostedTrees>(
        GradientBoostedTrees::load(in));
  }
  if (magic == "iotax-mlp") {
    return std::make_unique<Mlp>(Mlp::load(in));
  }
  if (magic == "iotax-linear") {
    return std::make_unique<LinearRegressor>(LinearRegressor::load(in));
  }
  if (magic == "iotax-mean") {
    return std::make_unique<MeanRegressor>(MeanRegressor::load(in));
  }
  if (magic == "iotax-ensemble") {
    return std::make_unique<DeepEnsemble>(DeepEnsemble::load(in));
  }
  if (magic == "iotax-classifier") {
    return std::make_unique<BurstClassifier>(BurstClassifier::load(in));
  }
  std::string known;
  for (const auto& m : known_model_magics()) {
    if (!known.empty()) known += ", ";
    known += m;
  }
  throw std::runtime_error(
      "Regressor::load: " + where + "unrecognized model header '" +
      (magic.empty() ? "<empty stream>" : magic) +
      "' (known model magics: " + known + ")");
}

void MeanRegressor::fit(const data::MatrixView& x, std::span<const double> y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("MeanRegressor::fit: size mismatch");
  }
  if (y.empty()) throw std::invalid_argument("MeanRegressor::fit: empty");
  mean_ = stats::mean(y);
  fitted_ = true;
}

std::vector<double> MeanRegressor::predict(const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("MeanRegressor::predict: not fitted");
  return std::vector<double>(x.rows(), mean_);
}

void MeanRegressor::save(std::ostream& out) const {
  if (!fitted_) throw std::logic_error("MeanRegressor::save: not fitted");
  out.precision(17);
  out << "iotax-mean 1\n";
  out << "mean " << mean_ << '\n';
  if (!out) throw std::runtime_error("MeanRegressor::save: stream failure");
}

MeanRegressor MeanRegressor::load(std::istream& in) {
  std::string token;
  int version = 0;
  in >> token >> version;
  if (token != "iotax-mean" || version != 1) {
    throw std::runtime_error("MeanRegressor::load: bad header");
  }
  in >> token;
  if (token != "mean") throw std::runtime_error("MeanRegressor::load: bad body");
  MeanRegressor model;
  in >> model.mean_;
  if (!in) throw std::runtime_error("MeanRegressor::load: truncated");
  model.fitted_ = true;
  return model;
}

}  // namespace iotax::ml
