#include "src/ml/model.hpp"

#include <stdexcept>

#include "src/stats/descriptive.hpp"

namespace iotax::ml {

void MeanRegressor::fit(const data::Matrix& x, std::span<const double> y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("MeanRegressor::fit: size mismatch");
  }
  if (y.empty()) throw std::invalid_argument("MeanRegressor::fit: empty");
  mean_ = stats::mean(y);
  fitted_ = true;
}

std::vector<double> MeanRegressor::predict(const data::Matrix& x) const {
  if (!fitted_) throw std::logic_error("MeanRegressor::predict: not fitted");
  return std::vector<double>(x.rows(), mean_);
}

}  // namespace iotax::ml
