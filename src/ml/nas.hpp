// Neural architecture + hyperparameter search in the AgEBO style (§VI.B,
// Fig. 2): an aging-evolution loop over MLP architectures where each new
// generation mutates the better half of the previous population, so both
// architecture (layer count/widths) and hyperparameters (learning rate,
// dropout, weight decay) evolve jointly. Selection uses a held-out
// validation set to avoid leaking the test set into the search, exactly
// as the paper stresses.
#pragma once

#include <vector>

#include "src/ml/metrics.hpp"
#include "src/ml/nn.hpp"
#include "src/util/rng.hpp"

namespace iotax::ml {

struct NasParams {
  std::size_t population = 12;
  std::size_t generations = 6;
  /// Fraction of each generation kept as parents.
  double survivor_frac = 0.5;
  /// Epochs each candidate trains for (search-time budget, not final).
  std::size_t epochs = 15;
  bool nll_head = false;
  std::uint64_t seed = 23;

  // Architecture space.
  std::size_t max_layers = 4;
  std::vector<std::size_t> widths = {16, 32, 64, 96};
};

struct NasCandidate {
  MlpParams params;
  double val_error = 0.0;
  std::size_t generation = 0;
  /// True when this candidate improved on the best seen so far (the gold
  /// stars in Fig. 2).
  bool improved_best = false;
};

struct NasResult {
  std::vector<NasCandidate> history;  // all evaluated candidates, in order
  NasCandidate best;
};

/// Run the evolutionary search; deterministic in (params, data).
NasResult nas_search(const NasParams& params, const data::MatrixView& x_train,
                     std::span<const double> y_train, const data::MatrixView& x_val,
                     std::span<const double> y_val);

}  // namespace iotax::ml
