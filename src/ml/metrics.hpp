// Error metrics. The paper optimises and reports
//   e(y, yhat) = mean_i |log10(y_i / yhat_i)|                     (Eq. 6)
// and quotes medians because the distributions are heavy-tailed. Targets
// in this library are already log10 throughputs, so the ratio error is a
// simple difference in model space.
#pragma once

#include <span>
#include <vector>

namespace iotax::ml {

/// Per-sample signed log10 ratio errors (prediction minus truth, both in
/// log10 space).
std::vector<double> log_errors(std::span<const double> y_true_log,
                               std::span<const double> y_pred_log);

/// Median of |log10 ratio|, the paper's headline metric.
double median_abs_log_error(std::span<const double> y_true_log,
                            std::span<const double> y_pred_log);

/// Mean of |log10 ratio| (the training objective, Eq. 6).
double mean_abs_log_error(std::span<const double> y_true_log,
                          std::span<const double> y_pred_log);

/// Root mean squared error in log space.
double rmse_log(std::span<const double> y_true_log,
                std::span<const double> y_pred_log);

/// Convert a log10 ratio error to the paper's percentage convention:
/// +0.041 log10 -> "+10.01%" (model overestimates by 10%).
double log_error_to_percent(double log_err);

/// Inverse of log_error_to_percent.
double percent_to_log_error(double percent);

}  // namespace iotax::ml
