#include "src/ml/nas.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

#include "src/obs/metrics.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace iotax::ml {

namespace {

MlpParams random_architecture(const NasParams& nas, util::Rng& rng) {
  MlpParams p;
  const auto n_layers = static_cast<std::size_t>(
      rng.uniform_int(1, static_cast<std::int64_t>(nas.max_layers)));
  p.hidden.clear();
  for (std::size_t l = 0; l < n_layers; ++l) {
    p.hidden.push_back(rng.choice(nas.widths));
  }
  p.learning_rate = std::pow(10.0, rng.uniform(-3.5, -2.0));
  p.dropout = rng.uniform(0.0, 0.3);
  p.weight_decay = std::pow(10.0, rng.uniform(-6.0, -3.5));
  p.epochs = nas.epochs;
  p.nll_head = nas.nll_head;
  p.seed = rng.next();
  return p;
}

MlpParams mutate(const MlpParams& parent, const NasParams& nas,
                 util::Rng& rng) {
  MlpParams p = parent;
  switch (rng.uniform_int(0, 4)) {
    case 0:  // change one layer width
      if (!p.hidden.empty()) {
        const auto l = static_cast<std::size_t>(rng.uniform_int(
            0, static_cast<std::int64_t>(p.hidden.size()) - 1));
        p.hidden[l] = rng.choice(nas.widths);
      }
      break;
    case 1:  // add or remove a layer
      if (p.hidden.size() < nas.max_layers && rng.bernoulli(0.5)) {
        p.hidden.push_back(rng.choice(nas.widths));
      } else if (p.hidden.size() > 1) {
        p.hidden.pop_back();
      }
      break;
    case 2:  // perturb learning rate
      p.learning_rate = std::clamp(
          p.learning_rate * std::pow(10.0, rng.uniform(-0.4, 0.4)),
          std::pow(10.0, -4.0), std::pow(10.0, -1.5));
      break;
    case 3:  // perturb dropout
      p.dropout = std::clamp(p.dropout + rng.uniform(-0.1, 0.1), 0.0, 0.5);
      break;
    default:  // perturb weight decay
      p.weight_decay = std::clamp(
          p.weight_decay * std::pow(10.0, rng.uniform(-0.5, 0.5)), 1e-7, 1e-2);
      break;
  }
  p.seed = rng.next();
  return p;
}

}  // namespace

NasResult nas_search(const NasParams& nas, const data::MatrixView& x_train,
                     std::span<const double> y_train, const data::MatrixView& x_val,
                     std::span<const double> y_val) {
  if (nas.population < 2 || nas.generations == 0) {
    throw std::invalid_argument("nas_search: need population>=2, generations>=1");
  }
  if (nas.survivor_frac <= 0.0 || nas.survivor_frac > 1.0) {
    throw std::invalid_argument("nas_search: bad survivor_frac");
  }
  IOTAX_TRACE_SPAN("nas.search");
  util::Rng rng(nas.seed);
  NasResult result;
  result.best.val_error = std::numeric_limits<double>::infinity();

  const auto evaluate = [&](const MlpParams& params,
                            std::size_t gen) -> NasCandidate {
    obs::SpanGuard trial_span("nas.trial");
    IOTAX_OBS_COUNT("nas.trials", 1);
    Mlp model(params);
    model.fit(x_train, y_train);
    NasCandidate cand;
    cand.params = params;
    cand.val_error = median_abs_log_error(y_val, model.predict(x_val));
    cand.generation = gen;
    obs::span_arg("generation", static_cast<double>(gen));
    obs::span_arg("val_error", cand.val_error);
    return cand;
  };

  // Train a pre-drawn batch concurrently (slot per candidate), then fold
  // serially in draw order so best-so-far flags, history order and the
  // population append match the sequential loop exactly.
  std::vector<NasCandidate> population;
  const auto evaluate_batch = [&](const std::vector<MlpParams>& batch,
                                  std::size_t gen) {
    obs::SpanGuard gen_span("nas.generation");
    obs::span_arg("generation", static_cast<double>(gen));
    std::vector<NasCandidate> cands(batch.size());
    util::parallel_for(batch.size(), [&](std::size_t i) {
      cands[i] = evaluate(batch[i], gen);
    });
    for (auto& cand : cands) {
      if (cand.val_error < result.best.val_error) {
        cand.improved_best = true;
        result.best = cand;
      }
      result.history.push_back(cand);
      population.push_back(std::move(cand));
    }
  };

  std::vector<MlpParams> batch;
  for (std::size_t i = 0; i < nas.population; ++i) {
    batch.push_back(random_architecture(nas, rng));
  }
  evaluate_batch(batch, 0);

  const auto n_survivors = std::max<std::size_t>(
      1, static_cast<std::size_t>(nas.survivor_frac *
                                  static_cast<double>(nas.population)));
  for (std::size_t gen = 1; gen < nas.generations; ++gen) {
    std::sort(population.begin(), population.end(),
              [](const NasCandidate& a, const NasCandidate& b) {
                return a.val_error < b.val_error;
              });
    population.resize(n_survivors);
    // Parents are the survivors only (rank < n_survivors), so all of a
    // generation's children can be drawn before any is trained — one
    // serial RNG pass, identical stream to the sequential loop.
    batch.clear();
    for (std::size_t c = n_survivors; c < nas.population; ++c) {
      // Rank-biased parent choice: better candidates breed more.
      const auto rank = static_cast<std::size_t>(std::min<double>(
          static_cast<double>(n_survivors) - 1.0,
          std::floor(std::fabs(rng.normal(0.0, 1.0)) *
                     static_cast<double>(n_survivors) / 2.0)));
      batch.push_back(mutate(population[rank].params, nas, rng));
    }
    evaluate_batch(batch, gen);
  }
  return result;
}

}  // namespace iotax::ml
