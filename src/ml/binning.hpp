// Quantile feature binning for histogram-based tree training (the same
// trick XGBoost's `hist` method uses): each feature is discretised once,
// after which split finding is O(bins) per feature instead of
// O(n log n).
//
// Bin budgets are per-feature: most counters are fine at 64 bins, but a
// raw start-time feature needs ~day-level resolution to express the
// system's I/O weather (§VII.A), i.e. thousands of bins over a
// multi-year trace. Codes are 16-bit to allow that.
//
// Construction accepts a MatrixView, so a binned matrix can be built
// straight from a row/column subset without materializing it; a plain
// Matrix converts implicitly. The code buffer is reported to
// data::footprint alongside Matrix payloads.
//
// Out-of-core mode (data::ooc::settings().enabled): the quantile sweep
// runs as an external sort — per-column sorted runs of chunk_rows each,
// spilled to an unlinked mmap scratch file, k-way merged to read the
// exact same order statistics the in-RAM std::sort path reads — and the
// code planes land in a second mmap spill once they exceed the spill
// threshold. Both choices are bit-identical to the in-RAM path: the
// merged stream is the same sorted sequence, and the codes are the same
// bytes in the same layout, just file-backed (mapped, not materialized).
// Copies share the spill mapping; the footprint tally only counts
// heap-resident code buffers.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "src/data/mmapfile.hpp"
#include "src/data/view.hpp"

namespace iotax::ml {

inline constexpr std::size_t kMaxBins = 4096;

class BinnedMatrix {
 public:
  /// Uniform bin budget for every feature.
  explicit BinnedMatrix(const data::MatrixView& x, std::size_t max_bins = 64);

  /// Per-feature budgets; size must equal x.cols(), entries in [2, 4096].
  BinnedMatrix(const data::MatrixView& x,
               const std::vector<std::size_t>& per_feature_bins);

  BinnedMatrix(const BinnedMatrix& other);
  BinnedMatrix(BinnedMatrix&& other) noexcept;
  BinnedMatrix& operator=(const BinnedMatrix& other);
  BinnedMatrix& operator=(BinnedMatrix&& other) noexcept;
  ~BinnedMatrix();

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t n_bins(std::size_t feature) const {
    return uppers_[feature].size() + 1;
  }
  /// Largest n_bins over all features (histogram workspace size).
  std::size_t max_bins_used() const { return max_bins_used_; }

  /// True when the code planes live in an mmap spill file instead of the
  /// heap (out-of-core mode).
  bool spilled() const { return spill_ != nullptr; }

  /// Bin code of sample r, feature c.
  std::uint16_t code(std::size_t r, std::size_t c) const {
    return codes_ptr_[r * cols_ + c];
  }

  /// All codes of sample r (row-major, contiguous).
  std::span<const std::uint16_t> row_codes(std::size_t r) const {
    return {codes_ptr_ + r * cols_, cols_};
  }

  /// All codes of feature c (feature-major mirror, contiguous). The
  /// histogram scan reads one feature across many rows; the row-major
  /// buffer would make that a 2-byte pick from every (cols x 2)-byte
  /// stride, so a transposed copy is kept for unit-stride access.
  std::span<const std::uint16_t> col_codes(std::size_t c) const {
    return {fcodes_ptr_ + c * rows_, rows_};
  }

  /// Real-valued split threshold for "bin <= b goes left": the upper edge
  /// of bin b. Requires b < n_bins(feature) - 1.
  double threshold(std::size_t feature, std::size_t b) const {
    return uppers_[feature][b];
  }

  /// Encode a raw value into this feature's bin (for prediction paths that
  /// want parity with training codes).
  std::uint16_t encode(std::size_t feature, double value) const;

  /// Encode a whole matrix against this binning (row-major codes, one
  /// column sweep per feature). Callers predicting many models against
  /// the same input — hyperparameter search, early-stopping validation —
  /// encode once and route every tree by codes instead of re-reading the
  /// raw view per model.
  std::vector<std::uint16_t> encode_all(const data::MatrixView& x) const;

  /// encode_all with the code-plane spill policy: in out-of-core mode a
  /// buffer past the spill threshold lands in an unlinked mmap scratch
  /// file (mapped bytes) instead of the heap (materialized bytes). Same
  /// bytes either way; only the backing storage differs.
  class EncodedCodes encode_all_ooc(const data::MatrixView& x) const;

 private:
  void build(const data::MatrixView& x,
             const std::vector<std::size_t>& per_feature_bins);
  void build_edges_chunked(const data::MatrixView& x,
                           const std::vector<std::size_t>& per_feature_bins);
  /// Point codes_ptr_/fcodes_ptr_ at the heap vectors (after any copy or
  /// move that may have changed their addresses).
  void rebind_pointers(const BinnedMatrix& other);

  std::size_t code_bytes() const {
    return (codes_.size() + fcodes_.size()) * sizeof(std::uint16_t);
  }

  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::size_t max_bins_used_ = 1;
  std::vector<std::uint16_t> codes_;         // row-major (heap mode)
  std::vector<std::uint16_t> fcodes_;        // feature-major mirror
  /// Spill mapping holding both planes in out-of-core mode: row-major
  /// codes at offset 0, the feature-major mirror after it. Shared across
  /// copies — the planes are immutable once built.
  std::shared_ptr<data::MappedFile> spill_;
  const std::uint16_t* codes_ptr_ = nullptr;
  const std::uint16_t* fcodes_ptr_ = nullptr;
  std::vector<std::vector<double>> uppers_;  // per feature, ascending
};

/// Owner of an encode_all_ooc code buffer: either a heap vector
/// (reported to data::footprint as materialized bytes, like BinnedMatrix
/// planes) or an unlinked mmap spill (counted as mapped bytes by the
/// mapping itself). Consumers only see the span.
class EncodedCodes {
 public:
  EncodedCodes() = default;
  EncodedCodes(EncodedCodes&& other) noexcept;
  EncodedCodes& operator=(EncodedCodes&& other) noexcept;
  EncodedCodes(const EncodedCodes&) = delete;
  EncodedCodes& operator=(const EncodedCodes&) = delete;
  ~EncodedCodes();

  std::span<const std::uint16_t> codes() const { return view_; }
  const std::uint16_t* data() const { return view_.data(); }
  std::size_t size() const { return view_.size(); }
  bool spilled() const { return spill_ != nullptr; }

 private:
  friend class BinnedMatrix;
  void release();

  std::vector<std::uint16_t> heap_;
  std::unique_ptr<data::MappedFile> spill_;
  std::span<const std::uint16_t> view_;
};

}  // namespace iotax::ml
