#include "src/ml/classifier.hpp"

#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace iotax::ml {

namespace {

double sigmoid(double z) {
  // Split on sign so the exp argument is always non-positive: no
  // overflow, and the two branches agree bit-for-bit at z == 0.
  if (z >= 0.0) return 1.0 / (1.0 + std::exp(-z));
  const double e = std::exp(z);
  return e / (1.0 + e);
}

void expect_token(std::istream& in, const char* want) {
  std::string token;
  in >> token;
  if (token != want) {
    throw std::runtime_error(std::string("BurstClassifier::load: expected '") +
                             want + "', got '" + token + "'");
  }
}

/// Platt scaling per Lin, Weng & Keerthi (2007): fit sigmoid(a*s + b)
/// to smoothed targets by Newton's method with backtracking. All-serial
/// fixed-order arithmetic, so the result is deterministic in (scores,
/// labels) and identical at every IOTAX_THREADS.
void fit_platt(std::span<const double> scores, std::span<const double> labels,
               std::size_t max_iters, double* out_a, double* out_b) {
  const std::size_t n = scores.size();
  double prior1 = 0.0;
  for (const double y : labels) prior1 += y;
  const double prior0 = static_cast<double>(n) - prior1;
  const double hi = (prior1 + 1.0) / (prior1 + 2.0);
  const double lo = 1.0 / (prior0 + 2.0);

  std::vector<double> t(n);
  for (std::size_t i = 0; i < n; ++i) t[i] = labels[i] == 1.0 ? hi : lo;

  double a = 0.0;
  double b = std::log((prior0 + 1.0) / (prior1 + 1.0));
  const double min_step = 1e-10;
  const double sigma_reg = 1e-12;  // Hessian ridge
  const double eps = 1e-7;

  const auto objective = [&](double pa, double pb) {
    double f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double z = pa * scores[i] + pb;
      // Stable -log-likelihood of target t under sigmoid(z).
      if (z >= 0.0) {
        f += t[i] * std::log1p(std::exp(-z)) +
             (1.0 - t[i]) * (z + std::log1p(std::exp(-z)));
      } else {
        f += t[i] * (-z + std::log1p(std::exp(z))) +
             (1.0 - t[i]) * std::log1p(std::exp(z));
      }
    }
    return f;
  };

  double fval = objective(a, b);
  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    double h11 = sigma_reg, h22 = sigma_reg, h21 = 0.0;
    double g1 = 0.0, g2 = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double p = sigmoid(a * scores[i] + b);
      const double d1 = p - t[i];
      const double d2 = p * (1.0 - p);
      g1 += scores[i] * d1;
      g2 += d1;
      h11 += scores[i] * scores[i] * d2;
      h22 += d2;
      h21 += scores[i] * d2;
    }
    if (std::fabs(g1) < eps && std::fabs(g2) < eps) break;

    const double det = h11 * h22 - h21 * h21;
    const double da = -(h22 * g1 - h21 * g2) / det;
    const double db = -(-h21 * g1 + h11 * g2) / det;
    const double gd = g1 * da + g2 * db;

    double step = 1.0;
    bool moved = false;
    while (step >= min_step) {
      const double na = a + step * da;
      const double nb = b + step * db;
      const double nf = objective(na, nb);
      if (nf < fval + 1e-4 * step * gd) {
        a = na;
        b = nb;
        fval = nf;
        moved = true;
        break;
      }
      step *= 0.5;
    }
    if (!moved) break;  // line search failed: converged as far as FP goes
  }
  *out_a = a;
  *out_b = b;
}

}  // namespace

void ClassifierParams::validate() const {
  gbt.validate();
  if (gbt.loss != GbtLoss::kSquaredError) {
    throw std::invalid_argument(
        "ClassifierParams: booster loss must be squared error "
        "(labels are the regression targets)");
  }
  if (!std::isfinite(threshold)) {
    throw std::invalid_argument("ClassifierParams: non-finite threshold");
  }
  if (kind == ClassifierKind::kLogistic &&
      (threshold <= 0.0 || threshold >= 1.0)) {
    throw std::invalid_argument(
        "ClassifierParams: logistic threshold must be in (0, 1)");
  }
  if (platt_max_iters == 0) {
    throw std::invalid_argument("ClassifierParams: platt_max_iters == 0");
  }
}

BurstClassifier::BurstClassifier(ClassifierParams params)
    : params_(std::move(params)), gbt_(params_.gbt) {
  params_.validate();
}

void BurstClassifier::fit(const data::MatrixView& x,
                          std::span<const double> y) {
  if (x.rows() != y.size()) {
    throw std::invalid_argument("BurstClassifier::fit: size mismatch");
  }
  std::size_t n_pos = 0;
  for (const double v : y) {
    if (v != 0.0 && v != 1.0) {
      throw std::invalid_argument(
          "BurstClassifier::fit: labels must be exactly 0 or 1");
    }
    if (v == 1.0) ++n_pos;
  }
  if (n_pos == 0 || n_pos == y.size()) {
    throw std::invalid_argument(
        "BurstClassifier::fit: training labels are all one class");
  }
  gbt_ = GradientBoostedTrees(params_.gbt);
  gbt_.fit(x, y);
  if (params_.kind == ClassifierKind::kLogistic) {
    const auto scores = gbt_.predict(x);
    fit_platt(scores, y, params_.platt_max_iters, &platt_a_, &platt_b_);
  } else {
    platt_a_ = 1.0;
    platt_b_ = 0.0;
  }
  fitted_ = true;
}

std::vector<double> BurstClassifier::predict(const data::MatrixView& x) const {
  if (!fitted_) throw std::logic_error("BurstClassifier::predict: not fitted");
  auto out = gbt_.predict(x);
  if (params_.kind == ClassifierKind::kLogistic) {
    for (double& v : out) v = sigmoid(platt_a_ * v + platt_b_);
  } else {
    for (double& v : out) v = v < 0.0 ? 0.0 : (v > 1.0 ? 1.0 : v);
  }
  return out;
}

std::vector<double> BurstClassifier::predict_labels(
    const data::MatrixView& x) const {
  if (!fitted_) {
    throw std::logic_error("BurstClassifier::predict_labels: not fitted");
  }
  auto scores = gbt_.predict(x);
  if (params_.kind == ClassifierKind::kLogistic) {
    // Decide in score space: sigmoid is strictly increasing, so
    // sigmoid(a*s + b) >= p  <=>  a*s + b >= logit(p).
    const double cut =
        std::log(params_.threshold / (1.0 - params_.threshold));
    for (double& s : scores) s = (platt_a_ * s + platt_b_ >= cut) ? 1.0 : 0.0;
  } else {
    for (double& s : scores) s = (s >= params_.threshold) ? 1.0 : 0.0;
  }
  return scores;
}

std::vector<double> BurstClassifier::decision_scores(
    const data::MatrixView& x) const {
  if (!fitted_) {
    throw std::logic_error("BurstClassifier::decision_scores: not fitted");
  }
  return gbt_.predict(x);
}

std::string BurstClassifier::name() const {
  return std::string("classifier[") +
         (params_.kind == ClassifierKind::kLogistic ? "logistic"
                                                    : "threshold") +
         ",trees=" + std::to_string(params_.gbt.n_estimators) +
         ",depth=" + std::to_string(params_.gbt.max_depth) + "]";
}

void BurstClassifier::save(std::ostream& out) const {
  if (!fitted_) throw std::logic_error("BurstClassifier::save: not fitted");
  out.precision(17);
  out << "iotax-classifier 1\n";
  out << "kind "
      << (params_.kind == ClassifierKind::kLogistic ? "logistic"
                                                    : "threshold")
      << '\n';
  out << "threshold " << params_.threshold << '\n';
  out << "platt " << platt_a_ << ' ' << platt_b_ << '\n';
  gbt_.save(out);
  if (!out) throw std::runtime_error("BurstClassifier::save: stream failure");
}

BurstClassifier BurstClassifier::load(std::istream& in) {
  expect_token(in, "iotax-classifier");
  int version = 0;
  in >> version;
  if (version != 1) {
    throw std::runtime_error("BurstClassifier::load: bad version");
  }
  expect_token(in, "kind");
  std::string kind;
  in >> kind;
  ClassifierParams params;
  if (kind == "logistic") {
    params.kind = ClassifierKind::kLogistic;
  } else if (kind == "threshold") {
    params.kind = ClassifierKind::kThreshold;
  } else {
    throw std::runtime_error("BurstClassifier::load: bad kind '" + kind + "'");
  }
  expect_token(in, "threshold");
  in >> params.threshold;
  double a = 1.0, b = 0.0;
  expect_token(in, "platt");
  in >> a >> b;
  if (!in) throw std::runtime_error("BurstClassifier::load: truncated header");

  BurstClassifier model;
  model.gbt_ = GradientBoostedTrees::load(in);
  params.gbt = model.gbt_.params();
  params.validate();
  model.params_ = std::move(params);
  model.platt_a_ = a;
  model.platt_b_ = b;
  model.fitted_ = true;
  return model;
}

}  // namespace iotax::ml
