#include "src/ml/binning.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/data/footprint.hpp"
#include "src/data/ooc.hpp"

namespace iotax::ml {

BinnedMatrix::BinnedMatrix(const data::MatrixView& x, std::size_t max_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("BinnedMatrix: max_bins must be in [2,4096]");
  }
  build(x, std::vector<std::size_t>(cols_, max_bins));
}

BinnedMatrix::BinnedMatrix(const data::MatrixView& x,
                           const std::vector<std::size_t>& per_feature_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (per_feature_bins.size() != cols_) {
    throw std::invalid_argument("BinnedMatrix: per-feature budget size");
  }
  for (const auto b : per_feature_bins) {
    if (b < 2 || b > kMaxBins) {
      throw std::invalid_argument("BinnedMatrix: bin budget not in [2,4096]");
    }
  }
  build(x, per_feature_bins);
}

void BinnedMatrix::rebind_pointers(const BinnedMatrix& other) {
  if (spill_ != nullptr) {
    codes_ptr_ = other.codes_ptr_;
    fcodes_ptr_ = other.fcodes_ptr_;
  } else {
    codes_ptr_ = codes_.data();
    fcodes_ptr_ = fcodes_.data();
  }
}

BinnedMatrix::BinnedMatrix(const BinnedMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      max_bins_used_(other.max_bins_used_),
      codes_(other.codes_),
      fcodes_(other.fcodes_),
      spill_(other.spill_),
      uppers_(other.uppers_) {
  rebind_pointers(other);
  data::footprint::add(code_bytes());
}

BinnedMatrix::BinnedMatrix(BinnedMatrix&& other) noexcept
    : rows_(std::exchange(other.rows_, 0)),
      cols_(std::exchange(other.cols_, 0)),
      max_bins_used_(std::exchange(other.max_bins_used_, 1)),
      codes_(std::move(other.codes_)),
      fcodes_(std::move(other.fcodes_)),
      spill_(std::move(other.spill_)),
      codes_ptr_(std::exchange(other.codes_ptr_, nullptr)),
      fcodes_ptr_(std::exchange(other.fcodes_ptr_, nullptr)),
      uppers_(std::move(other.uppers_)) {
  // Vector move transfers the buffer, so the stolen pointers stay valid
  // in both heap and spill mode.
  other.codes_.clear();
  other.fcodes_.clear();
  other.uppers_.clear();
}

BinnedMatrix& BinnedMatrix::operator=(const BinnedMatrix& other) {
  if (this == &other) return *this;
  data::footprint::sub(code_bytes());
  rows_ = other.rows_;
  cols_ = other.cols_;
  max_bins_used_ = other.max_bins_used_;
  codes_ = other.codes_;
  fcodes_ = other.fcodes_;
  spill_ = other.spill_;
  uppers_ = other.uppers_;
  rebind_pointers(other);
  data::footprint::add(code_bytes());
  return *this;
}

BinnedMatrix& BinnedMatrix::operator=(BinnedMatrix&& other) noexcept {
  if (this == &other) return *this;
  data::footprint::sub(code_bytes());
  rows_ = std::exchange(other.rows_, 0);
  cols_ = std::exchange(other.cols_, 0);
  max_bins_used_ = std::exchange(other.max_bins_used_, 1);
  codes_ = std::move(other.codes_);
  fcodes_ = std::move(other.fcodes_);
  spill_ = std::move(other.spill_);
  uppers_ = std::move(other.uppers_);
  codes_ptr_ = std::exchange(other.codes_ptr_, nullptr);
  fcodes_ptr_ = std::exchange(other.fcodes_ptr_, nullptr);
  other.codes_.clear();
  other.fcodes_.clear();
  other.uppers_.clear();
  data::footprint::add(code_bytes());
  return *this;
}

BinnedMatrix::~BinnedMatrix() { data::footprint::sub(code_bytes()); }

// Out-of-core quantile sweep: an external sort per column. The column is
// copied into an unlinked mmap scratch file, sorted in place as runs of
// chunk_rows, and the runs are k-way merged; reading the merged stream
// at position p yields exactly sorted[p] of the in-RAM path, so the
// selected edges — and after the shared dedupe/trim below, the final bin
// boundaries — are bit-identical to a full std::sort. Heap cost is
// O(chunk merge cursors + edges), independent of row count.
void BinnedMatrix::build_edges_chunked(
    const data::MatrixView& x, const std::vector<std::size_t>& per_feature_bins) {
  const auto& ooc = data::ooc::settings();
  const std::size_t chunk = ooc.chunk_rows;
  std::string error;
  auto runs = data::MappedFile::create_spill(ooc.spill_dir,
                                             rows_ * sizeof(double), &error);
  if (runs == nullptr) {
    throw std::runtime_error("BinnedMatrix: " + error);
  }
  auto* buf = reinterpret_cast<double*>(runs->mutable_data());
  const std::size_t n_runs = (rows_ + chunk - 1) / chunk;

  // Min-heap cursor over the sorted runs.
  struct Cursor {
    const double* cur;
    const double* end;
  };
  const auto greater = [](const Cursor& a, const Cursor& b) {
    return *a.cur > *b.cur;
  };

  std::vector<Cursor> heap;
  std::vector<std::size_t> targets;
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t max_bins = per_feature_bins[c];
    for (std::size_t r = 0; r < rows_; ++r) buf[r] = x(r, c);
    for (std::size_t run = 0; run < n_runs; ++run) {
      const std::size_t lo = run * chunk;
      const std::size_t hi = std::min(lo + chunk, rows_);
      std::sort(buf + lo, buf + hi);
    }

    // Same candidate positions as the in-RAM sweep (duplicates kept; the
    // value dedupe below collapses them).
    targets.clear();
    for (std::size_t b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(rows_) /
          static_cast<double>(max_bins));
      targets.push_back(std::min(pos, rows_ - 1));
    }

    double global_max = buf[rows_ - 1];  // max of the last run...
    heap.clear();
    for (std::size_t run = 0; run < n_runs; ++run) {
      const std::size_t lo = run * chunk;
      const std::size_t hi = std::min(lo + chunk, rows_);
      heap.push_back({buf + lo, buf + hi});
      global_max = std::max(global_max, *(buf + hi - 1));  // ...and the rest
    }
    std::make_heap(heap.begin(), heap.end(), greater);

    auto& uppers = uppers_[c];
    uppers.clear();
    std::size_t next_target = 0;
    for (std::size_t i = 0; i < rows_ && next_target < targets.size(); ++i) {
      std::pop_heap(heap.begin(), heap.end(), greater);
      Cursor& top = heap.back();
      const double value = *top.cur;
      while (next_target < targets.size() && targets[next_target] == i) {
        if (uppers.empty() || value > uppers.back()) uppers.push_back(value);
        ++next_target;
      }
      ++top.cur;
      if (top.cur == top.end) {
        heap.pop_back();
      } else {
        std::push_heap(heap.begin(), heap.end(), greater);
      }
    }
    // Drop the top edge if it equals the max (nothing would be right of it).
    while (!uppers.empty() && uppers.back() >= global_max) uppers.pop_back();
    max_bins_used_ = std::max(max_bins_used_, uppers.size() + 1);
  }
}

void BinnedMatrix::build(const data::MatrixView& x,
                         const std::vector<std::size_t>& per_feature_bins) {
  if (rows_ == 0) throw std::invalid_argument("BinnedMatrix: empty matrix");
  const auto& ooc = data::ooc::settings();
  const std::size_t plane = rows_ * cols_;
  const bool spill_codes =
      ooc.enabled && 2 * plane * sizeof(std::uint16_t) > ooc.spill_threshold_bytes;
  const bool chunked_edges = ooc.enabled && rows_ > ooc.chunk_rows;
  uppers_.resize(cols_);

  std::uint16_t* codes_w = nullptr;
  std::uint16_t* fcodes_w = nullptr;
  if (spill_codes) {
    std::string error;
    auto spill = data::MappedFile::create_spill(
        ooc.spill_dir, 2 * plane * sizeof(std::uint16_t), &error);
    if (spill == nullptr) {
      throw std::runtime_error("BinnedMatrix: " + error);
    }
    spill_ = std::move(spill);
    codes_w = reinterpret_cast<std::uint16_t*>(spill_->mutable_data());
    fcodes_w = codes_w + plane;
  } else {
    codes_.resize(plane);
    fcodes_.resize(plane);
    data::footprint::add(code_bytes());
    codes_w = codes_.data();
    fcodes_w = fcodes_.data();
  }
  codes_ptr_ = codes_w;
  fcodes_ptr_ = fcodes_w;

  if (chunked_edges) {
    build_edges_chunked(x, per_feature_bins);
    // Encode pass, one chunk of rows at a time: the row-major plane is
    // written contiguously per chunk and the feature-major mirror
    // sequentially within each column stripe, so the spill file is
    // touched page-locally.
    const std::size_t chunk = ooc.chunk_rows;
    for (std::size_t lo = 0; lo < rows_; lo += chunk) {
      const std::size_t hi = std::min(lo + chunk, rows_);
      for (std::size_t c = 0; c < cols_; ++c) {
        for (std::size_t r = lo; r < hi; ++r) {
          const std::uint16_t code = encode(c, x(r, c));
          codes_w[r * cols_ + c] = code;
          fcodes_w[c * rows_ + r] = code;
        }
      }
    }
    return;
  }

  // Gather each column once; `raw` keeps sample order for encoding while
  // `sorted` is reordered for the quantile sweep. One pass through the
  // (possibly strided / row-mapped) view per feature instead of two.
  std::vector<double> raw(rows_);
  std::vector<double> sorted(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t max_bins = per_feature_bins[c];
    for (std::size_t r = 0; r < rows_; ++r) raw[r] = x(r, c);
    sorted = raw;
    std::sort(sorted.begin(), sorted.end());
    // Candidate edges at evenly spaced quantiles; dedupe so constant or
    // low-cardinality features get fewer bins.
    auto& uppers = uppers_[c];
    uppers.clear();
    for (std::size_t b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(rows_) /
          static_cast<double>(max_bins));
      const double edge = sorted[std::min(pos, rows_ - 1)];
      if (uppers.empty() || edge > uppers.back()) uppers.push_back(edge);
    }
    // Drop the top edge if it equals the max (nothing would be right of it).
    while (!uppers.empty() && uppers.back() >= sorted.back()) uppers.pop_back();
    max_bins_used_ = std::max(max_bins_used_, uppers.size() + 1);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::uint16_t code = encode(c, raw[r]);
      codes_w[r * cols_ + c] = code;
      fcodes_w[c * rows_ + r] = code;
    }
  }
}

std::uint16_t BinnedMatrix::encode(std::size_t feature, double value) const {
  const auto& uppers = uppers_[feature];
  const auto it = std::lower_bound(uppers.begin(), uppers.end(), value);
  // value <= uppers[b] -> bin b; above all edges -> last bin.
  return static_cast<std::uint16_t>(std::distance(uppers.begin(), it));
}

std::vector<std::uint16_t> BinnedMatrix::encode_all(
    const data::MatrixView& x) const {
  if (x.cols() != cols_) {
    throw std::invalid_argument("BinnedMatrix::encode_all: column mismatch");
  }
  std::vector<std::uint16_t> codes(x.rows() * cols_);
  for (std::size_t f = 0; f < cols_; ++f) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      codes[r * cols_ + f] = encode(f, x(r, f));
    }
  }
  return codes;
}

EncodedCodes BinnedMatrix::encode_all_ooc(const data::MatrixView& x) const {
  if (x.cols() != cols_) {
    throw std::invalid_argument("BinnedMatrix::encode_all_ooc: column mismatch");
  }
  const auto& ooc = data::ooc::settings();
  const std::size_t total = x.rows() * cols_;
  EncodedCodes out;
  std::uint16_t* w = nullptr;
  if (ooc.enabled &&
      total * sizeof(std::uint16_t) > ooc.spill_threshold_bytes) {
    std::string error;
    auto spill = data::MappedFile::create_spill(
        ooc.spill_dir, total * sizeof(std::uint16_t), &error);
    if (spill == nullptr) {
      throw std::runtime_error("BinnedMatrix::encode_all_ooc: " + error);
    }
    w = reinterpret_cast<std::uint16_t*>(spill->mutable_data());
    out.spill_ = std::move(spill);
  } else {
    out.heap_.resize(total);
    data::footprint::add(out.heap_.size() * sizeof(std::uint16_t));
    w = out.heap_.data();
  }
  for (std::size_t f = 0; f < cols_; ++f) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      w[r * cols_ + f] = encode(f, x(r, f));
    }
  }
  out.view_ = {w, total};
  return out;
}

void EncodedCodes::release() {
  if (!heap_.empty()) {
    data::footprint::sub(heap_.size() * sizeof(std::uint16_t));
  }
  heap_.clear();
  spill_.reset();
  view_ = {};
}

EncodedCodes::~EncodedCodes() { release(); }

EncodedCodes::EncodedCodes(EncodedCodes&& other) noexcept
    : heap_(std::move(other.heap_)),
      spill_(std::move(other.spill_)),
      view_(std::exchange(other.view_, {})) {
  other.heap_.clear();  // moved-from vector no longer owns the bytes
}

EncodedCodes& EncodedCodes::operator=(EncodedCodes&& other) noexcept {
  if (this == &other) return *this;
  release();
  heap_ = std::move(other.heap_);
  spill_ = std::move(other.spill_);
  view_ = std::exchange(other.view_, {});
  other.heap_.clear();
  return *this;
}

}  // namespace iotax::ml
