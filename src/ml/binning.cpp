#include "src/ml/binning.hpp"

#include <algorithm>
#include <stdexcept>

namespace iotax::ml {

BinnedMatrix::BinnedMatrix(const data::Matrix& x, std::size_t max_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("BinnedMatrix: max_bins must be in [2,4096]");
  }
  build(x, std::vector<std::size_t>(cols_, max_bins));
}

BinnedMatrix::BinnedMatrix(const data::Matrix& x,
                           const std::vector<std::size_t>& per_feature_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (per_feature_bins.size() != cols_) {
    throw std::invalid_argument("BinnedMatrix: per-feature budget size");
  }
  for (const auto b : per_feature_bins) {
    if (b < 2 || b > kMaxBins) {
      throw std::invalid_argument("BinnedMatrix: bin budget not in [2,4096]");
    }
  }
  build(x, per_feature_bins);
}

void BinnedMatrix::build(const data::Matrix& x,
                         const std::vector<std::size_t>& per_feature_bins) {
  if (rows_ == 0) throw std::invalid_argument("BinnedMatrix: empty matrix");
  codes_.resize(rows_ * cols_);
  uppers_.resize(cols_);

  std::vector<double> col(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t max_bins = per_feature_bins[c];
    for (std::size_t r = 0; r < rows_; ++r) col[r] = x(r, c);
    std::sort(col.begin(), col.end());
    // Candidate edges at evenly spaced quantiles; dedupe so constant or
    // low-cardinality features get fewer bins.
    auto& uppers = uppers_[c];
    uppers.clear();
    for (std::size_t b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(rows_) /
          static_cast<double>(max_bins));
      const double edge = col[std::min(pos, rows_ - 1)];
      if (uppers.empty() || edge > uppers.back()) uppers.push_back(edge);
    }
    // Drop the top edge if it equals the max (nothing would be right of it).
    while (!uppers.empty() && uppers.back() >= col.back()) uppers.pop_back();
    max_bins_used_ = std::max(max_bins_used_, uppers.size() + 1);
    for (std::size_t r = 0; r < rows_; ++r) {
      codes_[r * cols_ + c] = encode(c, x(r, c));
    }
  }
}

std::uint16_t BinnedMatrix::encode(std::size_t feature, double value) const {
  const auto& uppers = uppers_[feature];
  const auto it = std::lower_bound(uppers.begin(), uppers.end(), value);
  // value <= uppers[b] -> bin b; above all edges -> last bin.
  return static_cast<std::uint16_t>(std::distance(uppers.begin(), it));
}

}  // namespace iotax::ml
