#include "src/ml/binning.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>

#include "src/data/footprint.hpp"

namespace iotax::ml {

BinnedMatrix::BinnedMatrix(const data::MatrixView& x, std::size_t max_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (max_bins < 2 || max_bins > kMaxBins) {
    throw std::invalid_argument("BinnedMatrix: max_bins must be in [2,4096]");
  }
  build(x, std::vector<std::size_t>(cols_, max_bins));
}

BinnedMatrix::BinnedMatrix(const data::MatrixView& x,
                           const std::vector<std::size_t>& per_feature_bins)
    : rows_(x.rows()), cols_(x.cols()) {
  if (per_feature_bins.size() != cols_) {
    throw std::invalid_argument("BinnedMatrix: per-feature budget size");
  }
  for (const auto b : per_feature_bins) {
    if (b < 2 || b > kMaxBins) {
      throw std::invalid_argument("BinnedMatrix: bin budget not in [2,4096]");
    }
  }
  build(x, per_feature_bins);
}

BinnedMatrix::BinnedMatrix(const BinnedMatrix& other)
    : rows_(other.rows_),
      cols_(other.cols_),
      max_bins_used_(other.max_bins_used_),
      codes_(other.codes_),
      fcodes_(other.fcodes_),
      uppers_(other.uppers_) {
  data::footprint::add(code_bytes());
}

BinnedMatrix::BinnedMatrix(BinnedMatrix&& other) noexcept
    : rows_(std::exchange(other.rows_, 0)),
      cols_(std::exchange(other.cols_, 0)),
      max_bins_used_(std::exchange(other.max_bins_used_, 1)),
      codes_(std::move(other.codes_)),
      fcodes_(std::move(other.fcodes_)),
      uppers_(std::move(other.uppers_)) {
  other.codes_.clear();
  other.fcodes_.clear();
  other.uppers_.clear();
}

BinnedMatrix& BinnedMatrix::operator=(const BinnedMatrix& other) {
  if (this == &other) return *this;
  data::footprint::sub(code_bytes());
  rows_ = other.rows_;
  cols_ = other.cols_;
  max_bins_used_ = other.max_bins_used_;
  codes_ = other.codes_;
  fcodes_ = other.fcodes_;
  uppers_ = other.uppers_;
  data::footprint::add(code_bytes());
  return *this;
}

BinnedMatrix& BinnedMatrix::operator=(BinnedMatrix&& other) noexcept {
  if (this == &other) return *this;
  data::footprint::sub(code_bytes());
  rows_ = std::exchange(other.rows_, 0);
  cols_ = std::exchange(other.cols_, 0);
  max_bins_used_ = std::exchange(other.max_bins_used_, 1);
  codes_ = std::move(other.codes_);
  fcodes_ = std::move(other.fcodes_);
  uppers_ = std::move(other.uppers_);
  other.codes_.clear();
  other.fcodes_.clear();
  other.uppers_.clear();
  return *this;
}

BinnedMatrix::~BinnedMatrix() { data::footprint::sub(code_bytes()); }

void BinnedMatrix::build(const data::MatrixView& x,
                         const std::vector<std::size_t>& per_feature_bins) {
  if (rows_ == 0) throw std::invalid_argument("BinnedMatrix: empty matrix");
  codes_.resize(rows_ * cols_);
  fcodes_.resize(rows_ * cols_);
  data::footprint::add(code_bytes());
  uppers_.resize(cols_);

  // Gather each column once; `raw` keeps sample order for encoding while
  // `sorted` is reordered for the quantile sweep. One pass through the
  // (possibly strided / row-mapped) view per feature instead of two.
  std::vector<double> raw(rows_);
  std::vector<double> sorted(rows_);
  for (std::size_t c = 0; c < cols_; ++c) {
    const std::size_t max_bins = per_feature_bins[c];
    for (std::size_t r = 0; r < rows_; ++r) raw[r] = x(r, c);
    sorted = raw;
    std::sort(sorted.begin(), sorted.end());
    // Candidate edges at evenly spaced quantiles; dedupe so constant or
    // low-cardinality features get fewer bins.
    auto& uppers = uppers_[c];
    uppers.clear();
    for (std::size_t b = 1; b < max_bins; ++b) {
      const auto pos = static_cast<std::size_t>(
          static_cast<double>(b) * static_cast<double>(rows_) /
          static_cast<double>(max_bins));
      const double edge = sorted[std::min(pos, rows_ - 1)];
      if (uppers.empty() || edge > uppers.back()) uppers.push_back(edge);
    }
    // Drop the top edge if it equals the max (nothing would be right of it).
    while (!uppers.empty() && uppers.back() >= sorted.back()) uppers.pop_back();
    max_bins_used_ = std::max(max_bins_used_, uppers.size() + 1);
    for (std::size_t r = 0; r < rows_; ++r) {
      const std::uint16_t code = encode(c, raw[r]);
      codes_[r * cols_ + c] = code;
      fcodes_[c * rows_ + r] = code;
    }
  }
}

std::uint16_t BinnedMatrix::encode(std::size_t feature, double value) const {
  const auto& uppers = uppers_[feature];
  const auto it = std::lower_bound(uppers.begin(), uppers.end(), value);
  // value <= uppers[b] -> bin b; above all edges -> last bin.
  return static_cast<std::uint16_t>(std::distance(uppers.begin(), it));
}

std::vector<std::uint16_t> BinnedMatrix::encode_all(
    const data::MatrixView& x) const {
  if (x.cols() != cols_) {
    throw std::invalid_argument("BinnedMatrix::encode_all: column mismatch");
  }
  std::vector<std::uint16_t> codes(x.rows() * cols_);
  for (std::size_t f = 0; f < cols_; ++f) {
    for (std::size_t r = 0; r < x.rows(); ++r) {
      codes[r * cols_ + f] = encode(f, x(r, f));
    }
  }
  return codes;
}

}  // namespace iotax::ml
