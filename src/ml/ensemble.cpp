#include "src/ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace iotax::ml {

DeepEnsemble::DeepEnsemble(EnsembleParams params)
    : params_(std::move(params)) {
  if (params_.size < 2) {
    throw std::invalid_argument("DeepEnsemble: need >= 2 members");
  }
}

void DeepEnsemble::fit(const data::Matrix& x, std::span<const double> y,
                       const std::vector<NasCandidate>& nas_history) {
  util::Rng rng(params_.seed);
  members_.clear();

  // Candidate architectures: best NAS candidates (deduplicated by order)
  // or fresh random samples from the search space.
  std::vector<MlpParams> seeds;
  if (!nas_history.empty()) {
    auto sorted = nas_history;
    std::sort(sorted.begin(), sorted.end(),
              [](const NasCandidate& a, const NasCandidate& b) {
                return a.val_error < b.val_error;
              });
    for (const auto& cand : sorted) {
      seeds.push_back(cand.params);
      if (seeds.size() >= params_.size) break;
    }
  }

  NasParams space = params_.space;
  space.nll_head = true;
  for (std::size_t k = 0; k < params_.size; ++k) {
    MlpParams mp;
    if (k < seeds.size()) {
      mp = seeds[k];
    } else {
      // Sample fresh: small random architecture from the space.
      mp.hidden.clear();
      const auto layers = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(space.max_layers)));
      for (std::size_t l = 0; l < layers; ++l) {
        mp.hidden.push_back(rng.choice(space.widths));
      }
      mp.learning_rate = std::pow(10.0, rng.uniform(-3.3, -2.2));
      mp.dropout = rng.uniform(0.0, 0.2);
      mp.weight_decay = std::pow(10.0, rng.uniform(-6.0, -4.0));
    }
    mp.nll_head = true;
    mp.epochs = params_.epochs;
    mp.seed = rng.next();  // different init + shuffle per member
    auto member = std::make_unique<Mlp>(mp);
    member->fit(x, y);
    members_.push_back(std::move(member));
  }
}

UncertaintyPrediction DeepEnsemble::predict_uncertainty(
    const data::Matrix& x) const {
  if (members_.empty()) {
    throw std::logic_error("DeepEnsemble::predict_uncertainty: not fitted");
  }
  const std::size_t n = x.rows();
  const auto k = static_cast<double>(members_.size());
  UncertaintyPrediction out;
  out.mean.assign(n, 0.0);
  out.aleatory.assign(n, 0.0);
  out.epistemic.assign(n, 0.0);
  std::vector<double> mean_sq(n, 0.0);
  for (const auto& member : members_) {
    const auto pred = member->predict_dist(x);
    for (std::size_t i = 0; i < n; ++i) {
      out.mean[i] += pred.mean[i] / k;
      mean_sq[i] += pred.mean[i] * pred.mean[i] / k;
      out.aleatory[i] += pred.variance[i] / k;
    }
  }
  for (std::size_t i = 0; i < n; ++i) {
    out.epistemic[i] = std::max(0.0, mean_sq[i] - out.mean[i] * out.mean[i]);
  }
  return out;
}

std::vector<double> DeepEnsemble::predict(const data::Matrix& x) const {
  return predict_uncertainty(x).mean;
}

}  // namespace iotax::ml
