#include "src/ml/ensemble.hpp"

#include <algorithm>
#include <cmath>
#include <istream>
#include <numeric>
#include <ostream>
#include <stdexcept>

#include "src/data/ooc.hpp"
#include "src/obs/trace.hpp"
#include "src/util/parallel.hpp"

namespace iotax::ml {

DeepEnsemble::DeepEnsemble(EnsembleParams params)
    : params_(std::move(params)) {
  if (params_.size < 2) {
    throw std::invalid_argument("DeepEnsemble: need >= 2 members");
  }
}

void DeepEnsemble::fit_continue(const data::MatrixView& x,
                                std::span<const double> y,
                                std::size_t extra_rounds) {
  if (members_.empty()) {
    throw std::logic_error("DeepEnsemble::fit_continue: not fitted");
  }
  if (x.rows() != y.size()) {
    throw std::invalid_argument("DeepEnsemble::fit_continue: size mismatch");
  }
  if (extra_rounds == 0) return;
  IOTAX_TRACE_SPAN("ensemble.fit_continue");
  obs::span_arg("members", static_cast<double>(members_.size()));
  obs::span_arg("extra_rounds", static_cast<double>(extra_rounds));
  // All members hold the fit-time scaler fit() shared across the
  // ensemble; transform once and continue every member against the
  // shared copy, exactly as fit() shared z.
  const data::Matrix z = members_.front()->scaler().transform_log1p(x);
  util::parallel_for(members_.size(), [&](std::size_t k) {
    obs::SpanGuard member_span("ensemble.member");
    obs::span_arg("member", static_cast<double>(k));
    members_[k]->fit_continue_preprocessed(z, y, extra_rounds);
  });
  params_.epochs += extra_rounds;
}

void DeepEnsemble::fit(const data::MatrixView& x, std::span<const double> y) {
  IOTAX_TRACE_SPAN("ensemble.fit");
  obs::span_arg("members", static_cast<double>(params_.size));
  util::Rng rng(params_.seed);
  members_.clear();

  // Preprocess once and share across members: every member would compute
  // this exact matrix (same data, same deterministic transform), so one
  // copy replaces K and the parallel-member peak drops accordingly.
  data::StandardScaler scaler;
  const data::Matrix z = scaler.fit_transform_log1p(x);

  // Candidate architectures: best NAS candidates (deduplicated by order)
  // or fresh random samples from the search space.
  const std::vector<NasCandidate>& nas_history = params_.nas_history;
  std::vector<MlpParams> seeds;
  if (!nas_history.empty()) {
    auto sorted = nas_history;
    std::sort(sorted.begin(), sorted.end(),
              [](const NasCandidate& a, const NasCandidate& b) {
                return a.val_error < b.val_error;
              });
    for (const auto& cand : sorted) {
      seeds.push_back(cand.params);
      if (seeds.size() >= params_.size) break;
    }
  }

  // Draw every member's params up front — the single serial RNG pass —
  // so member training below is embarrassingly parallel yet the param
  // stream is identical to the sequential loop.
  NasParams space = params_.space;
  space.nll_head = true;
  std::vector<MlpParams> member_params(params_.size);
  for (std::size_t k = 0; k < params_.size; ++k) {
    MlpParams mp;
    if (k < seeds.size()) {
      mp = seeds[k];
    } else {
      // Sample fresh: small random architecture from the space.
      mp.hidden.clear();
      const auto layers = static_cast<std::size_t>(
          rng.uniform_int(1, static_cast<std::int64_t>(space.max_layers)));
      for (std::size_t l = 0; l < layers; ++l) {
        mp.hidden.push_back(rng.choice(space.widths));
      }
      mp.learning_rate = std::pow(10.0, rng.uniform(-3.3, -2.2));
      mp.dropout = rng.uniform(0.0, 0.2);
      mp.weight_decay = std::pow(10.0, rng.uniform(-6.0, -4.0));
    }
    mp.nll_head = true;
    mp.epochs = params_.epochs;
    mp.seed = rng.next();  // different init + shuffle per member
    member_params[k] = std::move(mp);
  }

  members_ = util::parallel_map<std::unique_ptr<Mlp>>(
      params_.size, [&](std::size_t k) {
        obs::SpanGuard member_span("ensemble.member");
        obs::span_arg("member", static_cast<double>(k));
        auto member = std::make_unique<Mlp>(member_params[k]);
        member->fit_preprocessed(z, y, scaler);
        return member;
      });
}

UncertaintyPrediction DeepEnsemble::predict_uncertainty(
    const data::MatrixView& x) const {
  if (members_.empty()) {
    throw std::logic_error("DeepEnsemble::predict_uncertainty: not fitted");
  }
  IOTAX_TRACE_SPAN("ensemble.predict_uncertainty");
  const std::size_t n = x.rows();
  const std::size_t k = members_.size();
  UncertaintyPrediction out;
  out.mean.assign(n, 0.0);
  out.aleatory.assign(n, 0.0);
  out.epistemic.assign(n, 0.0);
  std::vector<double> mean_sq(n, 0.0);

  // Every member holds the fit-time scaler fit() shared across the
  // ensemble, so the input transform is member-invariant: do it once
  // here instead of once per member, which at the parallel-member peak
  // would hold k identical transformed copies at once. The shared scaled
  // copy is also the only O(rows x cols) buffer on the predict path, so
  // it is produced one chunk of rows at a time: per-row math is
  // independent and members accumulate in fixed order within each chunk,
  // so the chunked walk is bit-identical to the one-shot transform while
  // the transient buffer stays bounded by the out-of-core chunk budget.
  const std::size_t chunk =
      std::max<std::size_t>(std::size_t{1}, data::ooc::settings().chunk_rows);
  const bool parallel_members =
      !util::in_parallel_region() && util::parallel_threads() > 1 && k > 1;
  std::vector<std::size_t> idx;
  std::vector<std::size_t> base_rows;
  for (std::size_t lo = 0; lo < n; lo += chunk) {
    const std::size_t hi = std::min(n, lo + chunk);
    idx.resize(hi - lo);
    std::iota(idx.begin(), idx.end(), lo);
    const data::MatrixView xc = x.take_rows(idx, &base_rows);
    const data::Matrix z = members_.front()->scaler().transform_log1p(xc);
    // Accumulate raw member sums and divide by k once at the end; the
    // member-order accumulation is identical in the serial and parallel
    // branches, so both yield the same bits.
    const auto accumulate = [&](const DistPrediction& pred) {
      for (std::size_t i = 0; i < hi - lo; ++i) {
        out.mean[lo + i] += pred.mean[i];
        mean_sq[lo + i] += pred.mean[i] * pred.mean[i];
        out.aleatory[lo + i] += pred.variance[i];
      }
    };
    if (parallel_members) {
      std::vector<DistPrediction> preds(k);
      util::parallel_for(k, [&](std::size_t m) {
        members_[m]->predict_dist_preprocessed(z, &preds[m]);
      });
      for (const auto& pred : preds) accumulate(pred);
    } else {
      DistPrediction pred;  // one buffer reused across the member loop
      for (const auto& member : members_) {
        member->predict_dist_preprocessed(z, &pred);
        accumulate(pred);
      }
    }
  }
  const auto kd = static_cast<double>(k);
  for (std::size_t i = 0; i < n; ++i) {
    out.mean[i] /= kd;
    mean_sq[i] /= kd;
    out.aleatory[i] /= kd;
    out.epistemic[i] = std::max(0.0, mean_sq[i] - out.mean[i] * out.mean[i]);
  }
  return out;
}

std::vector<double> DeepEnsemble::predict(const data::MatrixView& x) const {
  return predict_uncertainty(x).mean;
}

std::string DeepEnsemble::name() const {
  return "ensemble[k=" + std::to_string(params_.size) + "]";
}

void DeepEnsemble::save(std::ostream& out) const {
  if (members_.empty()) {
    throw std::logic_error("DeepEnsemble::save: not fitted");
  }
  out << "iotax-ensemble 1\n";
  out << "epochs " << params_.epochs << '\n';
  out << "seed " << params_.seed << '\n';
  out << "members " << members_.size() << '\n';
  for (const auto& member : members_) member->save(out);
  if (!out) throw std::runtime_error("DeepEnsemble::save: stream failure");
}

DeepEnsemble DeepEnsemble::load(std::istream& in) {
  const auto expect = [&](const char* token) {
    std::string got;
    in >> got;
    if (got != token) {
      throw std::runtime_error(std::string("DeepEnsemble::load: expected '") +
                               token + "', got '" + got + "'");
    }
  };
  expect("iotax-ensemble");
  int version = 0;
  in >> version;
  if (version != 1) throw std::runtime_error("DeepEnsemble::load: version");
  EnsembleParams params;
  expect("epochs");
  in >> params.epochs;
  expect("seed");
  in >> params.seed;
  expect("members");
  std::size_t k = 0;
  in >> k;
  if (!in || k < 2) throw std::runtime_error("DeepEnsemble::load: bad size");
  params.size = k;
  DeepEnsemble ensemble(std::move(params));
  for (std::size_t i = 0; i < k; ++i) {
    ensemble.members_.push_back(std::make_unique<Mlp>(Mlp::load(in)));
  }
  return ensemble;
}

}  // namespace iotax::ml
