#include "src/ml/kernels/hist.hpp"

#include <vector>

#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/internal.hpp"

namespace iotax::ml::kernels {

namespace {

// Literal transcription of the seed's scan_feature loop (gbt.cpp): the
// scalar tier is the reference the AVX2 tier must match bit for bit.
// Scratch lives here (one histogram pair per thread) and is fully
// re-zeroed on entry, exactly like the seed.
SplitScan feature_scan_scalar(const std::uint16_t* col,
                              const std::size_t* order, std::size_t n,
                              const double* node_grad, std::size_t bins,
                              const FeatureScanParams& p) {
  static thread_local std::vector<double> hg_buf;
  static thread_local std::vector<double> hc_buf;
  if (hg_buf.size() < bins) {
    hg_buf.resize(bins);
    hc_buf.resize(bins);
  }
  double* hg = hg_buf.data();
  double* hc = hc_buf.data();
  SplitScan cand;
  for (std::size_t b = 0; b < bins; ++b) {
    hg[b] = 0.0;
    hc[b] = 0.0;
  }
  for (std::size_t i = 0; i < n; ++i) {
    const auto b = col[order[i]];
    hg[b] += node_grad[i];
    hc[b] += 1.0;
  }
  double gl = 0.0;
  double hl = 0.0;
  double best = p.min_split_gain;
  for (std::size_t b = 0; b + 1 < bins; ++b) {
    gl += hg[b];
    hl += hc[b];
    const double hr = p.h_total - hl;
    if (hl < p.min_child_weight || hr < p.min_child_weight) continue;
    const double gr = p.g_total - gl;
    const double gain = gl * gl / (hl + p.reg_lambda) +
                        gr * gr / (hr + p.reg_lambda) - p.parent_score;
    if (gain > best) {
      best = gain;
      cand.gain = gain;
      cand.bin = b;
      cand.valid = true;
    }
  }
  return cand;
}

double node_sum_scalar(const double* v, std::size_t n) {
  double acc = 0.0;
  for (std::size_t i = 0; i < n; ++i) acc += v[i];
  return acc;
}

}  // namespace

SplitScan feature_scan(const std::uint16_t* col, const std::size_t* order,
                       std::size_t n, const double* node_grad,
                       std::size_t bins, const FeatureScanParams& p) {
  if (bins < 2) return {};
#if defined(IOTAX_KERNELS_AVX2)
  if (active_tier() == Tier::kAvx2) {
    return avx2::feature_scan(col, order, n, node_grad, bins, p);
  }
#endif
  return feature_scan_scalar(col, order, n, node_grad, bins, p);
}

double node_sum(const double* v, std::size_t n) {
#if defined(IOTAX_KERNELS_AVX2)
  // Only the opt-in fast-math tier may reassociate a reduction.
  if (fast_math() && active_tier() == Tier::kAvx2) {
    return avx2::node_sum_lanes(v, n);
  }
#endif
  return node_sum_scalar(v, n);
}

}  // namespace iotax::ml::kernels
