// AVX2 tier of the GBT split-finding kernels. Compiled with -mavx2 (and
// -ffp-contract=off so the compiler cannot fuse the mul+add pairs that
// keep the default tier bit-identical).
#if defined(IOTAX_KERNELS_AVX2)

#include <immintrin.h>

#include <limits>

#include "src/ml/kernels/internal.hpp"
#include "src/util/aligned.hpp"

namespace iotax::ml::kernels::avx2 {

namespace {
// Tier-owned histogram scratch, kept ALL-ZERO between calls: each scan
// re-zeroes only what it touched on the way out, so the zeroing cost
// scales with the node instead of the bin count. resize() zero-fills
// any growth, so the invariant survives a larger-bins call.
thread_local util::aligned_vector<double> tl_hg;
thread_local util::aligned_vector<double> tl_hc;
}  // namespace

SplitScan feature_scan(const std::uint16_t* col, const std::size_t* order,
                       std::size_t n, const double* node_grad,
                       std::size_t bins, const FeatureScanParams& p) {
  if (tl_hg.size() < bins) {
    tl_hg.resize(bins, 0.0);
    tl_hc.resize(bins, 0.0);
  }
  double* hg = tl_hg.data();
  double* hc = tl_hc.data();
  SplitScan cand;

  // Histogram build: the adds scatter to data-dependent bins, so this
  // loop stays scalar and is kept verbatim from the scalar tier — each
  // add targets its own accumulator and rows are visited in ascending
  // order, so the per-bin FP sequences are unchanged. (Unroll/prefetch
  // and integer-count variants both measured slower here; the loop is
  // already throughput-bound on the two read-add-write chains.) The
  // touched-bin range tracked alongside bounds every later pass.
  std::size_t bmin = bins;
  std::size_t bmax = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t b = col[order[i]];
    hg[b] += node_grad[i];
    hc[b] += 1.0;
    bmin = b < bmin ? b : bmin;
    bmax = b > bmax ? b : bmax;
  }

  const std::size_t sweep = bins - 1;  // bin `bins-1` can't split
  double gl = 0.0;
  double hl = 0.0;
  double best = p.min_split_gain;

  // Every bin below bmin sees the all-empty prefix (gl = hl = 0), so
  // the scalar tier computes the identical gain for each of them and
  // its strict `>` can only ever take the first, bin 0. Reproduce that
  // with a single evaluation of the seed loop body at bin 0 (hg[0] and
  // hc[0] are zero here, so the adds are omitted). Also covers n == 0,
  // where every bin is prefix.
  if (bmin > 0) {
    const double hr = p.h_total - hl;
    if (!(hl < p.min_child_weight || hr < p.min_child_weight)) {
      const double gr = p.g_total - gl;
      const double gain = gl * gl / (hl + p.reg_lambda) +
                          gr * gr / (hr + p.reg_lambda) - p.parent_score;
      if (gain > best) {
        best = gain;
        cand.gain = gain;
        cand.bin = 0;
        cand.valid = true;
      }
    }
  }

  // Fused gain sweep over the touched range only, four bins per
  // iteration. The running left sums gl/hl are a true serial dependence
  // (reassociating them would change the bits), so they stay scalar in
  // exactly the seed's order; each 4-bin block of them is then packed
  // into a vector and the expensive part — two multiplies and two
  // divides per bin — runs 4-wide. All of it is elementwise IEEE
  // arithmetic in the scalar expression's association, so every lane
  // produces the exact double the scalar loop would. Fusing matters: a
  // separate prefix pass is latency-bound on the gl/hl chains with
  // nothing to hide behind, where here the out-of-order window overlaps
  // the chain with the previous block's divides. Bins failing the
  // min-child-weight screen get -inf, which the strict `>` below skips
  // just like the scalar `continue`.
  //
  // Trimming is exact: bins past bmax leave gl/hl fixed, so their gains
  // duplicate the gain at bmax and lose the strict `>`; likewise a
  // 4-bin block whose counts are all zero adds only +0.0 to gl/hl and
  // duplicates the previous bin's gain, so it is skipped after one
  // vector compare. (An empty bin's hg is +0.0 by the scratch
  // invariant; dropping a `x + 0.0` can only flip a -0.0 left-sum to
  // +0.0, and every use squares it or compares it, so the gains match
  // bit for bit.)
  const std::size_t stop = bmax + 1 < sweep ? bmax + 1 : sweep;  // exclusive
  const __m256d v_gtot = _mm256_set1_pd(p.g_total);
  const __m256d v_htot = _mm256_set1_pd(p.h_total);
  const __m256d v_lam = _mm256_set1_pd(p.reg_lambda);
  const __m256d v_mcw = _mm256_set1_pd(p.min_child_weight);
  const __m256d v_parent = _mm256_set1_pd(p.parent_score);
  const __m256d v_ninf =
      _mm256_set1_pd(-std::numeric_limits<double>::infinity());
  const __m256d v_zero = _mm256_setzero_pd();
  __m256d v_best = _mm256_set1_pd(best);
  std::size_t b = bmin;
  for (; b + 4 <= stop; b += 4) {
    const __m256d vcnt = _mm256_loadu_pd(hc + b);
    if (_mm256_movemask_pd(_mm256_cmp_pd(vcnt, v_zero, _CMP_NEQ_OQ)) == 0) {
      continue;  // all four bins empty — pure duplicates, skip
    }
    const double gl0 = gl + hg[b];
    const double gl1 = gl0 + hg[b + 1];
    const double gl2 = gl1 + hg[b + 2];
    const double gl3 = gl2 + hg[b + 3];
    const double hl0 = hl + hc[b];
    const double hl1 = hl0 + hc[b + 1];
    const double hl2 = hl1 + hc[b + 2];
    const double hl3 = hl2 + hc[b + 3];
    gl = gl3;
    hl = hl3;
    const __m256d vgl = _mm256_set_pd(gl3, gl2, gl1, gl0);
    const __m256d vhl = _mm256_set_pd(hl3, hl2, hl1, hl0);
    const __m256d vhr = _mm256_sub_pd(v_htot, vhl);
    const __m256d bad =
        _mm256_or_pd(_mm256_cmp_pd(vhl, v_mcw, _CMP_LT_OQ),
                     _mm256_cmp_pd(vhr, v_mcw, _CMP_LT_OQ));
    const __m256d vgr = _mm256_sub_pd(v_gtot, vgl);
    const __m256d lterm = _mm256_div_pd(_mm256_mul_pd(vgl, vgl),
                                        _mm256_add_pd(vhl, v_lam));
    const __m256d rterm = _mm256_div_pd(_mm256_mul_pd(vgr, vgr),
                                        _mm256_add_pd(vhr, v_lam));
    const __m256d gain = _mm256_blendv_pd(
        _mm256_sub_pd(_mm256_add_pd(lterm, rterm), v_parent), v_ninf, bad);
    // First-bin-wins argmax: lanes beating the block-entry best are
    // rare, so the in-order scalar resolution only runs on a hit. The
    // per-lane strict `>` against the running best reproduces the
    // scalar tier's update order within the block.
    if (_mm256_movemask_pd(_mm256_cmp_pd(gain, v_best, _CMP_GT_OQ)) != 0) {
      alignas(32) double lanes[4];
      _mm256_store_pd(lanes, gain);
      for (int k = 0; k < 4; ++k) {
        if (lanes[k] > best) {
          best = lanes[k];
          cand.gain = lanes[k];
          cand.bin = b + static_cast<std::size_t>(k);
          cand.valid = true;
        }
      }
      v_best = _mm256_set1_pd(best);
    }
  }
  // Remainder bins: the seed loop, continuing the same running sums.
  for (; b < stop; ++b) {
    gl += hg[b];
    hl += hc[b];
    const double hr = p.h_total - hl;
    if (hl < p.min_child_weight || hr < p.min_child_weight) continue;
    const double gr = p.g_total - gl;
    const double gain = gl * gl / (hl + p.reg_lambda) +
                        gr * gr / (hr + p.reg_lambda) - p.parent_score;
    if (gain > best) {
      best = gain;
      cand.gain = gain;
      cand.bin = b;
      cand.valid = true;
    }
  }

  // Restore the all-zero scratch invariant, paying only for what this
  // scan dirtied: re-walk the rows when the node is smaller than its
  // bin range, else stream zeros over [bmin, bmax].
  if (n != 0) {
    if (n < bmax - bmin + 1) {
      for (std::size_t i = 0; i < n; ++i) {
        const std::size_t t = col[order[i]];
        hg[t] = 0.0;
        hc[t] = 0.0;
      }
    } else {
      std::size_t z = bmin;
      for (; z + 4 <= bmax + 1; z += 4) {
        _mm256_storeu_pd(hg + z, v_zero);
        _mm256_storeu_pd(hc + z, v_zero);
      }
      for (; z <= bmax; ++z) {
        hg[z] = 0.0;
        hc[z] = 0.0;
      }
    }
  }
  return cand;
}

double node_sum_lanes(const double* v, std::size_t n) {
  // Fast-math only: four running lane sums, reduced in fixed lane order.
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) acc = _mm256_add_pd(acc, _mm256_loadu_pd(v + i));
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  double total = ((lanes[0] + lanes[1]) + lanes[2]) + lanes[3];
  for (; i < n; ++i) total += v[i];
  return total;
}

}  // namespace iotax::ml::kernels::avx2

#endif  // IOTAX_KERNELS_AVX2
