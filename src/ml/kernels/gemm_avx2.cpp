// AVX2 tier of the dense-layer forward: 4-row × 2-output register tile
// over a transposed input panel. Each SIMD lane carries one row's
// accumulator and the reduction index i ascends exactly as in the
// scalar loop, so with separate mul + add (the default) the result is
// bit-identical. This TU is compiled with -mfma but also
// -ffp-contract=off: FMA is only ever emitted through the explicit
// _mm256_fmadd_pd in the opt-in fast-math path.
#if defined(IOTAX_KERNELS_AVX2)

#include <immintrin.h>

#include <vector>

#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/internal.hpp"
#include "src/util/aligned.hpp"

namespace iotax::ml::kernels::avx2 {

namespace {

bool cpu_has_fma() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("fma") != 0;
#else
  return false;
#endif
}

inline void store_lanes(__m256d acc, double* out, std::size_t stride) {
  alignas(32) double lanes[4];
  _mm256_store_pd(lanes, acc);
  out[0] = lanes[0];
  out[stride] = lanes[1];
  out[2 * stride] = lanes[2];
  out[3 * stride] = lanes[3];
}

}  // namespace

void dense_forward(const double* in, std::size_t n_rows, std::size_t in_dim,
                   const double* w, const double* bias, std::size_t out_dim,
                   double* out) {
  const bool use_fma = fast_math() && cpu_has_fma();
  // Pool workers are long-lived; the panel grows to the widest layer
  // seen and stays.
  static thread_local util::aligned_vector<double> panel;
  if (panel.size() < in_dim * 4) panel.resize(in_dim * 4);

  std::size_t r = 0;
  for (; r + 4 <= n_rows; r += 4) {
    // Transpose a 4-row panel: panel[i*4 + lane] = in[r+lane][i], so the
    // inner product loads one contiguous vector per reduction step.
    for (std::size_t i = 0; i < in_dim; ++i) {
      panel[i * 4 + 0] = in[(r + 0) * in_dim + i];
      panel[i * 4 + 1] = in[(r + 1) * in_dim + i];
      panel[i * 4 + 2] = in[(r + 2) * in_dim + i];
      panel[i * 4 + 3] = in[(r + 3) * in_dim + i];
    }
    double* orow = out + r * out_dim;
    std::size_t o = 0;
    for (; o + 2 <= out_dim; o += 2) {
      const double* w0 = w + o * in_dim;
      const double* w1 = w0 + in_dim;
      __m256d acc0 = _mm256_set1_pd(bias[o]);
      __m256d acc1 = _mm256_set1_pd(bias[o + 1]);
      if (use_fma) {
        for (std::size_t i = 0; i < in_dim; ++i) {
          const __m256d p = _mm256_load_pd(panel.data() + i * 4);
          acc0 = _mm256_fmadd_pd(_mm256_set1_pd(w0[i]), p, acc0);
          acc1 = _mm256_fmadd_pd(_mm256_set1_pd(w1[i]), p, acc1);
        }
      } else {
        for (std::size_t i = 0; i < in_dim; ++i) {
          const __m256d p = _mm256_load_pd(panel.data() + i * 4);
          acc0 = _mm256_add_pd(acc0,
                               _mm256_mul_pd(_mm256_set1_pd(w0[i]), p));
          acc1 = _mm256_add_pd(acc1,
                               _mm256_mul_pd(_mm256_set1_pd(w1[i]), p));
        }
      }
      store_lanes(acc0, orow + o, out_dim);
      store_lanes(acc1, orow + o + 1, out_dim);
    }
    for (; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      __m256d acc = _mm256_set1_pd(bias[o]);
      if (use_fma) {
        for (std::size_t i = 0; i < in_dim; ++i) {
          acc = _mm256_fmadd_pd(_mm256_set1_pd(wo[i]),
                                _mm256_load_pd(panel.data() + i * 4), acc);
        }
      } else {
        for (std::size_t i = 0; i < in_dim; ++i) {
          acc = _mm256_add_pd(
              acc, _mm256_mul_pd(_mm256_set1_pd(wo[i]),
                                 _mm256_load_pd(panel.data() + i * 4)));
        }
      }
      store_lanes(acc, orow + o, out_dim);
    }
  }
  // Row remainder: the scalar reference loop.
  for (; r < n_rows; ++r) {
    const double* row = in + r * in_dim;
    double* orow = out + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      double acc = bias[o];
      for (std::size_t i = 0; i < in_dim; ++i) acc += wo[i] * row[i];
      orow[o] = acc;
    }
  }
}

}  // namespace iotax::ml::kernels::avx2

#endif  // IOTAX_KERNELS_AVX2
