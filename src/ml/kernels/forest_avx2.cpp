// AVX2 tier of PackedForest traversal: branch-free fixed-depth descent
// of 8 rows at a time (codes) or 4 rows (raw values), gathering node
// fields from the SoA arrays. Self-looping leaves make every step
// unconditional; per row the leaf reached — and therefore the value
// added, in tree order — is exactly the scalar tier's.
#if defined(IOTAX_KERNELS_AVX2)

#include <immintrin.h>

#include "src/ml/kernels/internal.hpp"

namespace iotax::ml::kernels::avx2 {

namespace {

// Scalar descent for tail rows (same loop as the scalar tier).
inline double descend_codes(const ForestView& f, std::int32_t root,
                            const std::uint16_t* row) {
  std::int32_t idx = root;
  while (f.left[idx] != idx) {
    idx = static_cast<std::int32_t>(row[f.feature[idx]]) <= f.split[idx]
              ? f.left[idx]
              : f.right[idx];
  }
  return f.value[idx];
}

inline double descend_values(const ForestView& f, std::int32_t root,
                             const double* row) {
  std::int32_t idx = root;
  while (f.left[idx] != idx) {
    idx = row[f.feature[idx]] <= f.threshold[idx] ? f.left[idx]
                                                  : f.right[idx];
  }
  return f.value[idx];
}

}  // namespace

void forest_codes(const ForestView& f, std::size_t t_begin, std::size_t t_end,
                  const std::uint16_t* codes, std::size_t stride,
                  std::size_t n_rows, double* out) {
  // The code gather reads 32 bits per lane from a 16-bit buffer, so a
  // lane on the buffer's very last element would read 2 bytes past the
  // end. Any row before the last one is safe (its last element is
  // followed by the next row); keeping the final min(n_rows, 8) rows on
  // the scalar path guarantees every vector lane is a non-final row.
  const std::size_t tail = n_rows < 8 ? n_rows : 8;
  const std::size_t vec_rows = n_rows - tail;
  const __m256i mask16 = _mm256_set1_epi32(0xFFFF);
  const auto* codes32 = reinterpret_cast<const int*>(codes);
  const auto s = static_cast<std::int32_t>(stride);

  std::size_t i = 0;
  for (; i + 8 <= vec_rows; i += 8) {
    const auto base = static_cast<std::int32_t>(i) * s;
    const __m256i rowoff =
        _mm256_setr_epi32(base, base + s, base + 2 * s, base + 3 * s,
                          base + 4 * s, base + 5 * s, base + 6 * s,
                          base + 7 * s);
    __m256d acc_lo = _mm256_loadu_pd(out + i);
    __m256d acc_hi = _mm256_loadu_pd(out + i + 4);
    for (std::size_t t = t_begin; t < t_end; ++t) {
      __m256i idx = _mm256_set1_epi32(f.root[t]);
      for (std::int32_t d = 0; d < f.depth[t]; ++d) {
        const __m256i feat = _mm256_i32gather_epi32(f.feature, idx, 4);
        const __m256i split = _mm256_i32gather_epi32(f.split, idx, 4);
        const __m256i off = _mm256_add_epi32(rowoff, feat);
        const __m256i code = _mm256_and_si256(
            _mm256_i32gather_epi32(codes32, off, 2), mask16);
        const __m256i go_right = _mm256_cmpgt_epi32(code, split);
        const __m256i l = _mm256_i32gather_epi32(f.left, idx, 4);
        const __m256i r = _mm256_i32gather_epi32(f.right, idx, 4);
        idx = _mm256_blendv_epi8(l, r, go_right);
      }
      acc_lo = _mm256_add_pd(
          acc_lo,
          _mm256_i32gather_pd(f.value, _mm256_castsi256_si128(idx), 8));
      acc_hi = _mm256_add_pd(
          acc_hi,
          _mm256_i32gather_pd(f.value, _mm256_extracti128_si256(idx, 1), 8));
    }
    _mm256_storeu_pd(out + i, acc_lo);
    _mm256_storeu_pd(out + i + 4, acc_hi);
  }
  for (; i < n_rows; ++i) {
    const std::uint16_t* row = codes + i * stride;
    double acc = out[i];
    for (std::size_t t = t_begin; t < t_end; ++t) {
      acc += descend_codes(f, f.root[t], row);
    }
    out[i] = acc;
  }
}

void forest_values(const ForestView& f, const double* x, std::size_t stride,
                   std::size_t n_rows, double* out) {
  // 64-bit lanes throughout: double gathers read exactly 8 bytes, so no
  // tail hazard; only the <4-row remainder goes scalar.
  const auto s = static_cast<std::int64_t>(stride);
  std::size_t i = 0;
  for (; i + 4 <= n_rows; i += 4) {
    const auto base = static_cast<std::int64_t>(i) * s;
    const __m256i rowoff =
        _mm256_setr_epi64x(base, base + s, base + 2 * s, base + 3 * s);
    __m256d acc = _mm256_loadu_pd(out + i);
    for (std::size_t t = 0; t < f.n_trees; ++t) {
      __m256i idx = _mm256_set1_epi64x(f.root[t]);
      for (std::int32_t d = 0; d < f.depth[t]; ++d) {
        const __m256i feat =
            _mm256_cvtepi32_epi64(_mm256_i64gather_epi32(f.feature, idx, 4));
        const __m256d xv =
            _mm256_i64gather_pd(x, _mm256_add_epi64(rowoff, feat), 8);
        const __m256d th = _mm256_i64gather_pd(f.threshold, idx, 8);
        // NaN compares false -> right, matching the scalar `<=`.
        const __m256d le = _mm256_cmp_pd(xv, th, _CMP_LE_OQ);
        const __m256i l =
            _mm256_cvtepi32_epi64(_mm256_i64gather_epi32(f.left, idx, 4));
        const __m256i r =
            _mm256_cvtepi32_epi64(_mm256_i64gather_epi32(f.right, idx, 4));
        idx = _mm256_castpd_si256(_mm256_blendv_pd(
            _mm256_castsi256_pd(r), _mm256_castsi256_pd(l), le));
      }
      acc = _mm256_add_pd(acc, _mm256_i64gather_pd(f.value, idx, 8));
    }
    _mm256_storeu_pd(out + i, acc);
  }
  for (; i < n_rows; ++i) {
    const double* row = x + i * stride;
    double acc = out[i];
    for (std::size_t t = 0; t < f.n_trees; ++t) {
      acc += descend_values(f, f.root[t], row);
    }
    out[i] = acc;
  }
}

}  // namespace iotax::ml::kernels::avx2

#endif  // IOTAX_KERNELS_AVX2
