#include "src/ml/kernels/dispatch.hpp"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace iotax::ml::kernels {

namespace {

// Resolved policy, packed into one atomic word: bit 0 = avx2 active,
// bit 1 = fast math, bit 2 = resolved. refresh() clears the resolved
// bit; the next query re-reads the environment.
std::atomic<int> g_state{0};
constexpr int kAvx2Bit = 1;
constexpr int kFastBit = 2;
constexpr int kResolvedBit = 4;

bool cpu_has_avx2() {
#if defined(__x86_64__) || defined(_M_X64) || defined(__i386__)
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

int resolve() {
  int state = kResolvedBit;
  const char* fast = std::getenv("IOTAX_FAST_MATH");
  if (fast != nullptr && std::strcmp(fast, "1") == 0) state |= kFastBit;
  const char* policy = std::getenv("IOTAX_KERNELS");
  const bool want_avx2 =
      policy == nullptr || std::strcmp(policy, "auto") == 0 ||
      std::strcmp(policy, "avx2") == 0;  // anything else means scalar
  if (want_avx2 && avx2_compiled() && cpu_has_avx2()) state |= kAvx2Bit;
  g_state.store(state, std::memory_order_relaxed);
  return state;
}

int state() {
  const int s = g_state.load(std::memory_order_relaxed);
  return (s & kResolvedBit) != 0 ? s : resolve();
}

}  // namespace

Tier active_tier() {
  return (state() & kAvx2Bit) != 0 ? Tier::kAvx2 : Tier::kScalar;
}

bool fast_math() { return (state() & kFastBit) != 0; }

bool avx2_compiled() {
#if defined(IOTAX_KERNELS_AVX2)
  return true;
#else
  return false;
#endif
}

bool avx2_supported() { return cpu_has_avx2(); }

void refresh() { g_state.store(0, std::memory_order_relaxed); }

const char* tier_name(Tier tier) {
  return tier == Tier::kAvx2 ? "avx2" : "scalar";
}

std::string describe() {
  const char* policy = std::getenv("IOTAX_KERNELS");
  std::string out = tier_name(active_tier());
  out += " (compiled=";
  out += avx2_compiled() ? "yes" : "no";
  out += " cpu=";
  out += avx2_supported() ? "yes" : "no";
  out += " policy=";
  out += policy != nullptr ? policy : "auto";
  out += " fast_math=";
  out += fast_math() ? "on" : "off";
  out += ")";
  return out;
}

}  // namespace iotax::ml::kernels
