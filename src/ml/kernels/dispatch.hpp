// Runtime kernel dispatch for the SIMD hot paths (GBT histogram scan,
// packed tree traversal, MLP GEMM).
//
// Two tiers exist per kernel: a portable scalar implementation and an
// AVX2 one. Selection is three-layered:
//
//   1. compile time — AVX2 variants are built only when the toolchain
//      targets x86-64 and CMake's IOTAX_ENABLE_AVX2 is ON (the
//      `test-release-nosimd` CI leg turns it off); each variant lives in
//      its own *_avx2.cpp TU compiled with -mavx2 so the rest of the
//      library never emits AVX encodings;
//   2. run time — a CPUID probe (__builtin_cpu_supports) confirms the
//      machine actually executes AVX2 before the tier becomes eligible;
//   3. policy — the IOTAX_KERNELS env var picks scalar|avx2|auto
//      (default auto = fastest eligible tier). Requesting avx2 on a
//      machine or build without it falls back to scalar rather than
//      faulting.
//
// Every AVX2 kernel is bit-identical to its scalar twin by construction:
// lanes only ever carry *independent* accumulators (different rows,
// different bins, different outputs), so no floating-point sum is ever
// reassociated. The opt-in IOTAX_FAST_MATH=1 tier relaxes exactly that —
// reassociated reductions and FMA contraction — and is validated by
// tolerance tests instead of byte comparison.
//
// The resolved tier is cached in an atomic after the first query (one
// relaxed load on the hot path). Tests and benches that flip the env
// vars at runtime call refresh() afterwards.
#pragma once

#include <string>

namespace iotax::ml::kernels {

enum class Tier { kScalar = 0, kAvx2 = 1 };

/// The tier kernels dispatch on, per the policy above.
Tier active_tier();

/// True when the opt-in fast-math tier is on (IOTAX_FAST_MATH=1):
/// kernels may reassociate reductions and contract mul+add into FMA.
/// Off (the default) every kernel is bit-identical to scalar.
bool fast_math();

/// True when AVX2 variants were compiled into this binary.
bool avx2_compiled();

/// True when the running CPU reports AVX2 (always false on non-x86).
bool avx2_supported();

/// Re-read IOTAX_KERNELS / IOTAX_FAST_MATH from the environment. Needed
/// only by tests/benches that setenv() mid-process.
void refresh();

/// "scalar" or "avx2".
const char* tier_name(Tier tier);

/// Human-readable dispatch summary for `iotax --version` and logs, e.g.
/// "avx2 (compiled=yes cpu=yes policy=auto fast_math=off)".
std::string describe();

}  // namespace iotax::ml::kernels
