// Declarations of the AVX2 kernel variants, defined in the *_avx2.cpp
// translation units (the only ones compiled with -mavx2). Dispatchers
// reference these under #if defined(IOTAX_KERNELS_AVX2) so the symbols
// are never needed in a nosimd build.
#pragma once

#include <cstddef>
#include <cstdint>

#include "src/ml/kernels/forest.hpp"
#include "src/ml/kernels/hist.hpp"

namespace iotax::ml::kernels::avx2 {

SplitScan feature_scan(const std::uint16_t* col, const std::size_t* order,
                       std::size_t n, const double* node_grad,
                       std::size_t bins, const FeatureScanParams& p);

double node_sum_lanes(const double* v, std::size_t n);

// Forest traversal over rows [0, n_rows) for trees [t_begin, t_end).
void forest_codes(const ForestView& f, std::size_t t_begin, std::size_t t_end,
                  const std::uint16_t* codes, std::size_t stride,
                  std::size_t n_rows, double* out);

void forest_values(const ForestView& f, const double* x, std::size_t stride,
                   std::size_t n_rows, double* out);

void dense_forward(const double* in, std::size_t n_rows, std::size_t in_dim,
                   const double* w, const double* bias, std::size_t out_dim,
                   double* out);

}  // namespace iotax::ml::kernels::avx2
