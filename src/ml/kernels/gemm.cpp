#include "src/ml/kernels/gemm.hpp"

#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/internal.hpp"

namespace iotax::ml::kernels {

namespace {

// Literal transcription of Mlp::forward's dense loop — the reference
// the AVX2 tier must match bit for bit.
void dense_forward_scalar(const double* in, std::size_t n_rows,
                          std::size_t in_dim, const double* w,
                          const double* bias, std::size_t out_dim,
                          double* out) {
  for (std::size_t r = 0; r < n_rows; ++r) {
    const double* row = in + r * in_dim;
    double* orow = out + r * out_dim;
    for (std::size_t o = 0; o < out_dim; ++o) {
      const double* wo = w + o * in_dim;
      double acc = bias[o];
      for (std::size_t i = 0; i < in_dim; ++i) acc += wo[i] * row[i];
      orow[o] = acc;
    }
  }
}

}  // namespace

void dense_forward(const double* in, std::size_t n_rows, std::size_t in_dim,
                   const double* w, const double* bias, std::size_t out_dim,
                   double* out) {
#if defined(IOTAX_KERNELS_AVX2)
  if (active_tier() == Tier::kAvx2) {
    avx2::dense_forward(in, n_rows, in_dim, w, bias, out_dim, out);
    return;
  }
#endif
  dense_forward_scalar(in, n_rows, in_dim, w, bias, out_dim, out);
}

}  // namespace iotax::ml::kernels
