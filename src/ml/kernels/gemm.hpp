// Dense-layer batch forward microkernel for Mlp inference.
//
// Computes, for a block of rows,
//
//   out[r][o] = bias[o] + sum_i w[o][i] * in[r][i]   (i ascending)
//
// which is exactly Mlp::forward's per-row loop. The AVX2 tier packs a
// 4-row panel of the input transposed (panel[i*4 + lane] = in[r+lane][i])
// so the inner product becomes contiguous vector loads, broadcasts one
// weight at a time, and accumulates with separate mul + add — each SIMD
// lane runs one row's scalar FP sequence unchanged, so the default tier
// is bit-identical. Under IOTAX_FAST_MATH=1 the accumulate contracts to
// FMA (when the CPU has it), which is faster and more accurate but not
// bit-identical.
#pragma once

#include <cstddef>

namespace iotax::ml::kernels {

/// in: n_rows x in_dim row-major block (contiguous, stride == in_dim).
/// w:  out_dim x in_dim row-major weights. out: n_rows x out_dim.
void dense_forward(const double* in, std::size_t n_rows, std::size_t in_dim,
                   const double* w, const double* bias, std::size_t out_dim,
                   double* out);

}  // namespace iotax::ml::kernels
