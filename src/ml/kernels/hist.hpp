// GBT split-finding kernels: per-feature histogram accumulation plus the
// best-bin gain sweep, over BinnedMatrix bin codes.
//
// feature_scan() is the per-(node, feature) unit of work in
// GradientBoostedTrees::build_tree: accumulate the node's gradient sum
// and row count into per-bin histograms, then sweep bins left-to-right
// for the best split. Both tiers reproduce the seed loop exactly:
//
//   * histogram adds happen in ascending row order, so every bin's
//     gradient sum sees the same FP addition sequence as the scalar
//     loop (adds to distinct bins commute trivially — they are separate
//     accumulators);
//   * the sweep's prefix sums stay sequential; only the per-bin gain
//     arithmetic (mul/div/sub — all elementwise, IEEE-exact) is
//     vectorized, and the strict-> first-bin-wins argmax runs serially.
//
// The histogram workspaces are owned by the kernel layer (per-thread,
// per-tier), not passed in: the AVX2 tier keeps its scratch all-zero
// between calls and re-zeroes only the bins a scan touched, so the cost
// of a scan scales with the node's touched-bin range instead of the
// full bin count. Untouched bins can also be skipped in the sweep
// without changing any output bit: an empty bin leaves the running
// left-sums unchanged, so its gain duplicates the previous bin's and
// can never win the strict `>` argmax; bins below the first touched bin
// all see the all-empty prefix, so they collapse to a single evaluation
// of the seed loop body at bin 0.
//
// node_sum() is the node gradient total. By default it is the plain
// sequential sum; under IOTAX_FAST_MATH=1 it reassociates into SIMD
// lanes (tolerance-gated, not bit-identical).
#pragma once

#include <cstddef>
#include <cstdint>

namespace iotax::ml::kernels {

struct FeatureScanParams {
  double g_total = 0.0;          // node gradient sum
  double h_total = 0.0;          // node hessian sum (== row count)
  double reg_lambda = 0.0;       // L2 on leaf weights
  double min_child_weight = 0.0;
  double min_split_gain = 0.0;
  double parent_score = 0.0;     // g^2 / (h + lambda) of the node
};

/// Best split found within one feature; `valid` is false when no bin
/// cleared the minimum gain.
struct SplitScan {
  double gain = 0.0;
  std::size_t bin = 0;
  bool valid = false;
};

/// Histogram + best-bin scan of one feature for one tree node.
///   col       feature-major bin codes (BinnedMatrix::col_codes)
///   order     the node's base-row indices, length n
///   node_grad gradient gathered per node row (node_grad[i] pairs with
///             order[i]), length n
///   bins      n_bins for this feature (>= 2)
/// Histogram scratch is kernel-owned (thread-local per tier); callers
/// pass no workspace.
SplitScan feature_scan(const std::uint16_t* col, const std::size_t* order,
                       std::size_t n, const double* node_grad,
                       std::size_t bins, const FeatureScanParams& p);

/// Sum of v[0..n): sequential by default; under fast_math, SIMD-lane
/// accumulation reduced in fixed lane order (reassociated).
double node_sum(const double* v, std::size_t n);

}  // namespace iotax::ml::kernels
