#include "src/ml/kernels/forest.hpp"

#include <limits>
#include <stdexcept>
#include <vector>

#include "src/ml/kernels/dispatch.hpp"
#include "src/ml/kernels/internal.hpp"

namespace iotax::ml::kernels {

namespace {

// Scalar descent, routing by bin codes. Leaves self-loop, so the
// left==self test is the leaf check.
inline double descend_codes(const ForestView& f, std::int32_t root,
                            const std::uint16_t* row) {
  std::int32_t idx = root;
  while (f.left[idx] != idx) {
    idx = static_cast<std::int32_t>(row[f.feature[idx]]) <= f.split[idx]
              ? f.left[idx]
              : f.right[idx];
  }
  return f.value[idx];
}

inline double descend_values(const ForestView& f, std::int32_t root,
                             const double* row) {
  std::int32_t idx = root;
  while (f.left[idx] != idx) {
    idx = row[f.feature[idx]] <= f.threshold[idx] ? f.left[idx]
                                                  : f.right[idx];
  }
  return f.value[idx];
}

void forest_codes_scalar(const ForestView& f, std::size_t t_begin,
                         std::size_t t_end, const std::uint16_t* codes,
                         std::size_t stride, std::size_t n_rows,
                         double* out) {
  for (std::size_t i = 0; i < n_rows; ++i) {
    const std::uint16_t* row = codes + i * stride;
    double acc = out[i];
    for (std::size_t t = t_begin; t < t_end; ++t) {
      acc += descend_codes(f, f.root[t], row);
    }
    out[i] = acc;
  }
}

void forest_values_scalar(const ForestView& f, const double* x,
                          std::size_t stride, std::size_t n_rows,
                          double* out) {
  for (std::size_t i = 0; i < n_rows; ++i) {
    const double* row = x + i * stride;
    double acc = out[i];
    for (std::size_t t = 0; t < f.n_trees; ++t) {
      acc += descend_values(f, f.root[t], row);
    }
    out[i] = acc;
  }
}

void dispatch_codes(const ForestView& f, std::size_t t_begin,
                    std::size_t t_end, const std::uint16_t* codes,
                    std::size_t stride, std::size_t n_rows, double* out) {
#if defined(IOTAX_KERNELS_AVX2)
  // The gathered code offsets are 32-bit in the AVX2 tier; fall back to
  // scalar for (enormous) blocks where they could overflow.
  if (active_tier() == Tier::kAvx2 &&
      n_rows * stride <= static_cast<std::size_t>(
                             std::numeric_limits<std::int32_t>::max())) {
    avx2::forest_codes(f, t_begin, t_end, codes, stride, n_rows, out);
    return;
  }
#endif
  forest_codes_scalar(f, t_begin, t_end, codes, stride, n_rows, out);
}

}  // namespace

void PackedForest::clear() {
  feature_.clear();
  split_.clear();
  left_.clear();
  right_.clear();
  threshold_.clear();
  value_.clear();
  root_.clear();
  depth_.clear();
  with_codes_ = true;
}

void PackedForest::add_tree(std::span<const NodeDesc> nodes,
                            bool with_codes) {
  if (nodes.empty()) {
    throw std::invalid_argument("PackedForest::add_tree: empty tree");
  }
  with_codes_ = with_codes_ && with_codes;
  const auto base = static_cast<std::int32_t>(feature_.size());
  root_.push_back(base);

  // Breadth-first relayout: packed[k] is the k-th node in BFS order, so
  // every level of the tree occupies a contiguous run and a block of
  // rows descending in lockstep shares cache lines per step.
  std::vector<std::int32_t> bfs;       // source indices, BFS order
  std::vector<std::int32_t> packed_of(nodes.size(), -1);
  bfs.push_back(0);
  packed_of[0] = base;
  std::size_t head = 0;
  std::int32_t depth = 0;
  std::size_t level_end = 1;  // exclusive end of the current level in bfs
  while (head < bfs.size()) {
    if (head == level_end) {
      level_end = bfs.size();
      ++depth;
    }
    const NodeDesc& src = nodes[static_cast<std::size_t>(bfs[head])];
    if (src.feature >= 0) {
      packed_of[static_cast<std::size_t>(src.left)] =
          base + static_cast<std::int32_t>(bfs.size());
      bfs.push_back(src.left);
      packed_of[static_cast<std::size_t>(src.right)] =
          base + static_cast<std::int32_t>(bfs.size());
      bfs.push_back(src.right);
    }
    ++head;
  }

  for (const std::int32_t s : bfs) {
    const NodeDesc& src = nodes[static_cast<std::size_t>(s)];
    if (src.feature >= 0) {
      feature_.push_back(src.feature);
      split_.push_back(src.split_bin);
      threshold_.push_back(src.threshold);
      left_.push_back(packed_of[static_cast<std::size_t>(src.left)]);
      right_.push_back(packed_of[static_cast<std::size_t>(src.right)]);
      value_.push_back(0.0);
    } else {
      // Leaf: self-loop on an always-true "<=" edge so fixed-depth
      // descent parks here. feature 0 keeps the (discarded) gathers of
      // the branch-free tier in bounds.
      const auto self = packed_of[static_cast<std::size_t>(s)];
      feature_.push_back(0);
      split_.push_back(std::numeric_limits<std::int32_t>::max());
      threshold_.push_back(std::numeric_limits<double>::infinity());
      left_.push_back(self);
      right_.push_back(self);
      value_.push_back(src.value);
    }
  }
  depth_.push_back(depth);
}

void PackedForest::predict_codes(const std::uint16_t* codes,
                                 std::size_t stride, std::size_t n_rows,
                                 double* out) const {
  if (!with_codes_) {
    throw std::logic_error("PackedForest: no split bins for code traversal");
  }
  dispatch_codes(view(), 0, n_trees(), codes, stride, n_rows, out);
}

void PackedForest::predict_codes_prefix(std::size_t t_end,
                                        const std::uint16_t* codes,
                                        std::size_t stride,
                                        std::size_t n_rows,
                                        double* out) const {
  if (!with_codes_) {
    throw std::logic_error("PackedForest: no split bins for code traversal");
  }
  dispatch_codes(view(), 0, t_end < n_trees() ? t_end : n_trees(), codes,
                 stride, n_rows, out);
}

void PackedForest::predict_codes_tree(std::size_t t,
                                      const std::uint16_t* codes,
                                      std::size_t stride, std::size_t n_rows,
                                      double* out) const {
  if (!with_codes_) {
    throw std::logic_error("PackedForest: no split bins for code traversal");
  }
  dispatch_codes(view(), t, t + 1, codes, stride, n_rows, out);
}

void PackedForest::predict_values(const double* x, std::size_t stride,
                                  std::size_t n_rows, double* out) const {
#if defined(IOTAX_KERNELS_AVX2)
  if (active_tier() == Tier::kAvx2) {
    avx2::forest_values(view(), x, stride, n_rows, out);
    return;
  }
#endif
  forest_values_scalar(view(), x, stride, n_rows, out);
}

}  // namespace iotax::ml::kernels
