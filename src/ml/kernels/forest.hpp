// PackedForest: a cache-friendly, structure-of-arrays relayout of
// trained GBT trees for batch prediction.
//
// GradientBoostedTrees::Tree stores nodes as an array-of-structs in
// construction order, and per-row prediction chases child indices
// through it — every step is a dependent ~56-byte load with no
// instruction-level parallelism across rows. PackedForest fixes the
// layout, not the algorithm:
//
//   * one flat array per field (feature/split_bin as int32,
//     threshold/value as double), so a descent step touches four narrow
//     hot arrays instead of one wide cold struct;
//   * each tree's nodes are re-laid-out breadth-first, so every level of
//     the tree is contiguous and all rows of a block walk the same few
//     cache lines;
//   * leaves self-loop (left == right == self, split_bin == INT32_MAX,
//     threshold == +inf), so a block of rows can descend a fixed
//     depth[t] steps branch-free — rows that reach a leaf early just
//     spin on it, taking the always-true "<=" edge back to themselves;
//   * the AVX2 tier descends 8 rows per step for code traversal (4 for
//     raw values) with gathered loads; the scalar tier walks the same
//     arrays row-by-row.
//
// Per row the leaf reached is exactly the one Tree::predict /
// predict_codes reaches, and values accumulate in tree order, so both
// tiers are bit-identical to the seed loops.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "src/util/aligned.hpp"

namespace iotax::ml::kernels {

/// Raw pointers into one PackedForest, for the AVX2 translation units.
struct ForestView {
  const std::int32_t* feature;
  const std::int32_t* split;
  const std::int32_t* left;
  const std::int32_t* right;
  const double* threshold;
  const double* value;
  const std::int32_t* root;
  const std::int32_t* depth;
  std::size_t n_trees;
};

class PackedForest {
 public:
  /// One source node, in the Tree::Node layout (feature < 0 == leaf;
  /// split_bin < 0 when the model came from disk without fit-time bins).
  struct NodeDesc {
    int feature;
    double threshold;
    int split_bin;
    int left;
    int right;
    double value;
  };

  void clear();

  /// Append one tree (nodes[0] is the root). `with_codes` must be false
  /// when the tree lacks split bins; code traversal is then rejected.
  void add_tree(std::span<const NodeDesc> nodes, bool with_codes);

  std::size_t n_trees() const { return root_.size(); }
  bool empty() const { return root_.empty(); }
  /// True when every tree carries split bins (code traversal allowed).
  bool with_codes() const { return with_codes_; }

  /// out[i] += sum over all trees of the leaf value for row i.
  /// `codes` is row-major with `stride` codes per row.
  void predict_codes(const std::uint16_t* codes, std::size_t stride,
                     std::size_t n_rows, double* out) const;

  /// out[i] += sum over trees [0, t_end) only. A boosting round depends
  /// only on the rounds before it, so the first k trees of a fit ARE
  /// the k-tree model with the same seed; searches score n_estimators
  /// candidates against prefixes of one shared fit. Values accumulate
  /// per row in ascending tree order, exactly as predict_codes would on
  /// the smaller forest. t_end is clamped to n_trees().
  void predict_codes_prefix(std::size_t t_end, const std::uint16_t* codes,
                            std::size_t stride, std::size_t n_rows,
                            double* out) const;

  /// out[i] += leaf value of tree t only (per-round fit updates).
  void predict_codes_tree(std::size_t t, const std::uint16_t* codes,
                          std::size_t stride, std::size_t n_rows,
                          double* out) const;

  /// out[i] += sum over all trees, routing by raw feature values.
  /// `x` is a dense row-major block with `stride` doubles per row.
  void predict_values(const double* x, std::size_t stride, std::size_t n_rows,
                      double* out) const;

  ForestView view() const {
    return {feature_.data(), split_.data(),     left_.data(),
            right_.data(),   threshold_.data(), value_.data(),
            root_.data(),    depth_.data(),     root_.size()};
  }

 private:
  // Node fields, all trees concatenated; indices are global.
  util::aligned_vector<std::int32_t> feature_;
  util::aligned_vector<std::int32_t> split_;
  util::aligned_vector<std::int32_t> left_;
  util::aligned_vector<std::int32_t> right_;
  util::aligned_vector<double> threshold_;
  util::aligned_vector<double> value_;
  util::aligned_vector<std::int32_t> root_;   // per tree: root node index
  util::aligned_vector<std::int32_t> depth_;  // per tree: max depth
  bool with_codes_ = true;
};

}  // namespace iotax::ml::kernels
