#include "src/obs/metrics.hpp"

#include <algorithm>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "src/util/json.hpp"

namespace iotax::obs {

namespace {

/// Atomic add for doubles via CAS; relaxed is enough — readers only see
/// the sum through snapshot(), never for synchronization.
void atomic_add(std::atomic<double>& target, double delta) {
  double cur = target.load(std::memory_order_relaxed);
  while (!target.compare_exchange_weak(cur, cur + delta,
                                       std::memory_order_relaxed,
                                       std::memory_order_relaxed)) {
  }
}

}  // namespace

Histogram::Histogram(std::vector<double> upper_edges)
    : edges_(std::move(upper_edges)), buckets_(edges_.size() + 1) {
  if (edges_.empty()) {
    throw std::invalid_argument("Histogram: need at least one bucket edge");
  }
  if (!std::is_sorted(edges_.begin(), edges_.end()) ||
      std::adjacent_find(edges_.begin(), edges_.end()) != edges_.end()) {
    throw std::invalid_argument(
        "Histogram: bucket edges must be strictly increasing");
  }
}

void Histogram::observe(double v) {
  // First bucket whose (inclusive) upper edge admits v; everything above
  // the last edge lands in the overflow bucket.
  const auto it = std::lower_bound(edges_.begin(), edges_.end(), v);
  const std::size_t idx = static_cast<std::size_t>(it - edges_.begin());
  buckets_[idx].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  atomic_add(sum_, v);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out;
  out.reserve(buckets_.size());
  for (const auto& b : buckets_) out.push_back(b.load(std::memory_order_relaxed));
  return out;
}

double Histogram::sum() const { return sum_.load(std::memory_order_relaxed); }

double Histogram::quantile(double q) const {
  q = std::clamp(q, 0.0, 1.0);
  const auto counts = bucket_counts();
  std::uint64_t total = 0;
  for (const auto c : counts) total += c;
  if (total == 0) return std::numeric_limits<double>::quiet_NaN();
  // Rank of the target observation (1-based), then walk buckets until
  // the cumulative count reaches it.
  const double rank = q * static_cast<double>(total);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    const double next = cum + static_cast<double>(counts[i]);
    if (next >= rank && counts[i] > 0) {
      if (i + 1 == counts.size()) return edges_.back();  // overflow bucket
      const double lo = i == 0 ? 0.0 : edges_[i - 1];
      const double hi = edges_[i];
      const double frac = (rank - cum) / static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    cum = next;
  }
  return edges_.back();
}

void Histogram::reset() {
  for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
}

const std::vector<double>& latency_ms_edges() {
  static const std::vector<double> edges = {
      0.1,    0.25,   0.5,    1.0,    2.5,    5.0,     10.0,    25.0,
      50.0,   100.0,  250.0,  500.0,  1000.0, 2500.0,  5000.0,  10000.0,
      25000.0, 60000.0};
  return edges;
}

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> edges) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = histograms_.find(name);
  if (it != histograms_.end()) return it->second;
  return histograms_.try_emplace(name, std::move(edges)).first->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot snap;
  // std::map iteration is already name-sorted.
  for (const auto& [name, c] : counters_) {
    snap.counters.push_back({name, c.value()});
  }
  for (const auto& [name, g] : gauges_) {
    snap.gauges.push_back({name, g.value()});
  }
  for (const auto& [name, h] : histograms_) {
    snap.histograms.push_back(
        {name, h.edges(), h.bucket_counts(), h.count(), h.sum()});
  }
  return snap;
}

void MetricsRegistry::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, c] : counters_) c.reset();
  for (auto& [name, g] : gauges_) g.reset();
  for (auto& [name, h] : histograms_) h.reset();
}

void MetricsRegistry::write_json(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  util::Json counters = util::Json::object();
  for (const auto& row : snap.counters) {
    counters.set(row.name, static_cast<std::size_t>(row.value));
  }
  util::Json gauges = util::Json::object();
  for (const auto& row : snap.gauges) gauges.set(row.name, row.value);
  util::Json histograms = util::Json::object();
  for (const auto& row : snap.histograms) {
    util::Json h = util::Json::object();
    util::Json edges = util::Json::array();
    for (const double e : row.edges) edges.push_back(e);
    util::Json buckets = util::Json::array();
    for (const std::uint64_t b : row.buckets) {
      buckets.push_back(static_cast<std::size_t>(b));
    }
    h.set("edges", std::move(edges));
    h.set("buckets", std::move(buckets));
    h.set("count", static_cast<std::size_t>(row.count));
    h.set("sum", row.sum);
    histograms.set(row.name, std::move(h));
  }
  util::Json doc = util::Json::object();
  doc.set("counters", std::move(counters));
  doc.set("gauges", std::move(gauges));
  doc.set("histograms", std::move(histograms));
  out << doc.dump(1) << '\n';
}

void MetricsRegistry::write_csv(std::ostream& out) const {
  const MetricsSnapshot snap = snapshot();
  out << "type,name,field,value\n";
  for (const auto& row : snap.counters) {
    out << "counter," << row.name << ",value," << row.value << '\n';
  }
  for (const auto& row : snap.gauges) {
    out << "gauge," << row.name << ",value,"
        << util::Json(row.value).dump() << '\n';
  }
  for (const auto& row : snap.histograms) {
    for (std::size_t i = 0; i < row.edges.size(); ++i) {
      out << "histogram," << row.name << ",le_"
          << util::Json(row.edges[i]).dump() << ',' << row.buckets[i] << '\n';
    }
    out << "histogram," << row.name << ",le_inf," << row.buckets.back() << '\n';
    out << "histogram," << row.name << ",count," << row.count << '\n';
    out << "histogram," << row.name << ",sum," << util::Json(row.sum).dump()
        << '\n';
  }
}

}  // namespace iotax::obs
