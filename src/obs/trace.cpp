#include "src/obs/trace.hpp"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <ostream>

#include "src/util/json.hpp"

namespace iotax::obs {

namespace detail {
std::atomic<int> g_enabled{-1};

bool read_enabled_slow() {
  const char* raw = std::getenv("IOTAX_OBS");
  const bool on =
      raw != nullptr && raw[0] != '\0' && !(raw[0] == '0' && raw[1] == '\0');
  // Another thread may race this write; both compute the same value from
  // the same environment, so last-writer-wins is fine.
  g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
  return on;
}
}  // namespace detail

void set_enabled(bool on) {
  detail::g_enabled.store(on ? 1 : 0, std::memory_order_relaxed);
}

void refresh_enabled_from_env() {
  detail::g_enabled.store(-1, std::memory_order_relaxed);
}

namespace {

std::int64_t now_ns() {
  static const auto epoch = std::chrono::steady_clock::now();
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch)
      .count();
}

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{1};
  thread_local const std::uint32_t tid =
      next.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

std::uint64_t next_span_id() {
  static std::atomic<std::uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

/// Per-thread stack of open spans.
struct OpenSpan {
  SpanEvent event;
};

thread_local std::vector<OpenSpan> t_open_spans;

}  // namespace

std::int64_t now_ns_if_enabled() { return enabled() ? now_ns() : 0; }

TraceLog& TraceLog::global() {
  static TraceLog log;
  return log;
}

void TraceLog::record(SpanEvent&& event) {
  std::lock_guard<std::mutex> lock(mu_);
  events_.push_back(std::move(event));
}

std::vector<SpanEvent> TraceLog::snapshot() const {
  std::vector<SpanEvent> out;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out = events_;
  }
  std::sort(out.begin(), out.end(),
            [](const SpanEvent& a, const SpanEvent& b) { return a.id < b.id; });
  return out;
}

std::size_t TraceLog::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceLog::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  events_.clear();
}

void TraceLog::write_chrome_json(std::ostream& out) const {
  const auto events = snapshot();
  util::Json trace_events = util::Json::array();
  for (const auto& ev : events) {
    util::Json e = util::Json::object();
    e.set("name", ev.name);
    e.set("cat", "iotax");
    e.set("ph", "X");
    e.set("pid", 1);
    e.set("tid", static_cast<std::size_t>(ev.tid));
    e.set("ts", static_cast<double>(ev.start_ns) / 1000.0);
    e.set("dur", static_cast<double>(ev.dur_ns) / 1000.0);
    if (!ev.args.empty() || ev.parent != 0) {
      util::Json args = util::Json::object();
      if (ev.parent != 0) {
        args.set("parent", static_cast<std::size_t>(ev.parent));
      }
      args.set("id", static_cast<std::size_t>(ev.id));
      for (const auto& [k, v] : ev.args) args.set(k, v);
      e.set("args", std::move(args));
    }
    trace_events.push_back(std::move(e));
  }
  util::Json doc = util::Json::object();
  doc.set("traceEvents", std::move(trace_events));
  doc.set("displayTimeUnit", "ms");
  out << doc.dump(1) << '\n';
}

void SpanGuard::open(const char* name) {
  OpenSpan span;
  span.event.name = name;
  span.event.id = next_span_id();
  span.event.tid = this_thread_id();
  span.event.depth = static_cast<std::uint32_t>(t_open_spans.size());
  span.event.parent =
      t_open_spans.empty() ? 0 : t_open_spans.back().event.id;
  span.event.start_ns = now_ns();
  t_open_spans.push_back(std::move(span));
  active_ = true;
}

void SpanGuard::close() {
  OpenSpan span = std::move(t_open_spans.back());
  t_open_spans.pop_back();
  span.event.dur_ns = now_ns() - span.event.start_ns;
  TraceLog::global().record(std::move(span.event));
  active_ = false;
}

void span_arg(const char* key, double value) {
  if (!enabled() || t_open_spans.empty()) return;
  t_open_spans.back().event.args.emplace_back(key, value);
}

}  // namespace iotax::obs
