// Lightweight RAII tracing spans for the pipeline's hot paths.
//
// A span records nested wall-time for one phase of work ("gbt.fit",
// "taxonomy.search", ...; names follow the module.verb convention) into
// a process-wide, thread-safe span log. Nesting is tracked per thread, so
// spans opened inside thread-pool workers attribute to the worker that
// ran them. The log exports Chrome-trace-format JSON loadable in
// chrome://tracing or Perfetto.
//
// Everything is gated by the IOTAX_OBS env knob through a cached atomic
// flag: when observability is off (the default) a span is a single
// relaxed atomic load and branch, so instrumented hot loops pay no
// measurable cost. Spans only *observe* — they never consume RNG state or
// reorder work — so IOTAX_OBS=1 leaves every model output bit-identical
// (enforced by tests/obs_test.cpp).
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace iotax::obs {

namespace detail {
// -1 = not yet read from the environment, 0 = off, 1 = on.
extern std::atomic<int> g_enabled;
bool read_enabled_slow();
}  // namespace detail

/// True when observability is on: IOTAX_OBS set to anything but "" or
/// "0", or forced via set_enabled(). The answer is cached in an atomic,
/// so the disabled path costs one relaxed load.
inline bool enabled() {
  const int s = detail::g_enabled.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::read_enabled_slow();
}

/// Force the flag (CLI --metrics-out/--trace-out, tests).
void set_enabled(bool on);

/// Drop the cached flag so the next enabled() re-reads IOTAX_OBS.
void refresh_enabled_from_env();

/// One completed span. `id` is assigned at open time from a global
/// counter, so sorting by id restores open order; `parent` is the id of
/// the enclosing span on the same thread (0 = root). Times are
/// nanoseconds since the process trace epoch.
struct SpanEvent {
  std::string name;
  std::uint64_t id = 0;
  std::uint64_t parent = 0;
  std::uint32_t tid = 0;   // dense per-thread id, stable for the process
  std::uint32_t depth = 0; // nesting depth on its thread (0 = root)
  std::int64_t start_ns = 0;
  std::int64_t dur_ns = 0;
  std::vector<std::pair<std::string, double>> args;
};

/// Process-wide log of completed spans.
class TraceLog {
 public:
  static TraceLog& global();

  void record(SpanEvent&& event);

  /// Completed spans sorted by open order (id); deterministic for
  /// single-threaded sections.
  std::vector<SpanEvent> snapshot() const;

  std::size_t size() const;
  void reset();

  /// Chrome trace format: {"traceEvents":[{"ph":"X",...}]}; loads in
  /// chrome://tracing and Perfetto. Timestamps/durations in microseconds.
  void write_chrome_json(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::vector<SpanEvent> events_;
};

/// RAII span. Construct through IOTAX_TRACE_SPAN so the disabled path
/// stays a single branch.
class SpanGuard {
 public:
  explicit SpanGuard(const char* name) {
    if (enabled()) open(name);
  }
  ~SpanGuard() {
    if (active_) close();
  }
  SpanGuard(const SpanGuard&) = delete;
  SpanGuard& operator=(const SpanGuard&) = delete;

  /// Close the span now instead of at scope exit — for phases whose
  /// results must outlive the instrumented block. Idempotent.
  void end() {
    if (active_) close();
  }

 private:
  void open(const char* name);
  void close();
  bool active_ = false;
};

/// Attach a numeric argument to the innermost open span on this thread
/// (exported into the chrome-trace "args" object). No-op when disabled
/// or no span is open.
void span_arg(const char* key, double value);

/// Monotonic nanoseconds since the trace epoch when enabled, 0 when
/// disabled — the cheap way to time a section only under observation.
std::int64_t now_ns_if_enabled();

#define IOTAX_OBS_CONCAT2(a, b) a##b
#define IOTAX_OBS_CONCAT(a, b) IOTAX_OBS_CONCAT2(a, b)

/// Open a span covering the rest of the enclosing scope.
#define IOTAX_TRACE_SPAN(name) \
  ::iotax::obs::SpanGuard IOTAX_OBS_CONCAT(iotax_span_, __LINE__)(name)

}  // namespace iotax::obs
