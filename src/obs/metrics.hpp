// MetricsRegistry: named counters, gauges, and fixed-bucket latency
// histograms for the training/simulation/taxonomy pipeline.
//
// Handles returned by counter()/gauge()/histogram() are stable for the
// registry's lifetime, so hot call sites cache them in function-local
// statics (see the IOTAX_OBS_* macros). Updates are atomic and safe from
// thread-pool workers; integer sums are order-independent, so metrics
// never perturb the library's bit-determinism guarantees. snapshot()
// rows are sorted by name and exports (JSON, CSV) are byte-stable for a
// given set of observations.
//
// Like tracing, every macro is gated on obs::enabled(): with IOTAX_OBS
// unset the instrumented paths pay one relaxed atomic load.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/obs/trace.hpp"  // obs::enabled()

namespace iotax::obs {

/// Monotonic event count.
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  std::uint64_t value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written value ("current jobs/sec", "last epoch loss").
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  double value() const { return v_.load(std::memory_order_relaxed); }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with inclusive upper edges (Prometheus "le"
/// semantics): bucket i counts observations in (edge[i-1], edge[i]], and
/// a final overflow bucket catches everything above the last edge.
class Histogram {
 public:
  explicit Histogram(std::vector<double> upper_edges);

  void observe(double v);

  const std::vector<double>& edges() const { return edges_; }
  /// Per-bucket counts; size edges().size() + 1 (last = overflow).
  std::vector<std::uint64_t> bucket_counts() const;
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  double sum() const;
  /// Estimated q-quantile (q in [0,1]) by linear interpolation within
  /// the bucket holding the q-th observation (Prometheus
  /// histogram_quantile semantics). Returns NaN with no observations;
  /// a quantile landing in the overflow bucket clamps to the last edge.
  double quantile(double q) const;
  void reset();

 private:
  std::vector<double> edges_;
  std::deque<std::atomic<std::uint64_t>> buckets_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
};

/// Default latency bucket edges in milliseconds: 0.1 ms .. 60 s in a
/// 1-2.5-5 progression.
const std::vector<double>& latency_ms_edges();

struct MetricsSnapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeRow {
    std::string name;
    double value = 0.0;
  };
  struct HistogramRow {
    std::string name;
    std::vector<double> edges;
    std::vector<std::uint64_t> buckets;  // edges.size() + 1, last = overflow
    std::uint64_t count = 0;
    double sum = 0.0;
  };
  std::vector<CounterRow> counters;      // sorted by name
  std::vector<GaugeRow> gauges;          // sorted by name
  std::vector<HistogramRow> histograms;  // sorted by name
};

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Process-wide registry used by the IOTAX_OBS_* macros.
  static MetricsRegistry& global();

  /// Create-or-get. References stay valid for the registry's lifetime;
  /// reset() zeroes values but never invalidates handles.
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// `edges` applies on first creation; later calls return the existing
  /// histogram regardless of the edges passed.
  Histogram& histogram(const std::string& name, std::vector<double> edges);

  MetricsSnapshot snapshot() const;

  /// Zero every metric, keeping registrations (and handles) intact.
  void reset();

  void write_json(std::ostream& out) const;
  void write_csv(std::ostream& out) const;

 private:
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

/// Increment a named counter when observability is on. The handle lookup
/// happens once per call site.
#define IOTAX_OBS_COUNT(name, n)                                     \
  do {                                                               \
    if (::iotax::obs::enabled()) {                                   \
      static ::iotax::obs::Counter& iotax_obs_counter =              \
          ::iotax::obs::MetricsRegistry::global().counter(name);     \
      iotax_obs_counter.add(n);                                      \
    }                                                                \
  } while (0)

/// Set a named gauge when observability is on.
#define IOTAX_OBS_GAUGE(name, v)                                     \
  do {                                                               \
    if (::iotax::obs::enabled()) {                                   \
      static ::iotax::obs::Gauge& iotax_obs_gauge =                  \
          ::iotax::obs::MetricsRegistry::global().gauge(name);       \
      iotax_obs_gauge.set(v);                                        \
    }                                                                \
  } while (0)

/// Observe a latency (milliseconds) in a named histogram with the
/// default latency buckets.
#define IOTAX_OBS_HIST_MS(name, ms)                                  \
  do {                                                               \
    if (::iotax::obs::enabled()) {                                   \
      static ::iotax::obs::Histogram& iotax_obs_hist =               \
          ::iotax::obs::MetricsRegistry::global().histogram(         \
              name, ::iotax::obs::latency_ms_edges());               \
      iotax_obs_hist.observe(ms);                                    \
    }                                                                \
  } while (0)

}  // namespace iotax::obs
