#!/usr/bin/env bash
# End-to-end serve smoke: simulate -> train -> offline predict, then
# stand the daemon up and push >= 1000 requests through `iotax query`
# at IOTAX_THREADS=1 and 4, demanding byte-identical CSVs and a clean
# SIGTERM drain with final metrics export.
#
#   serve_smoke.sh <path-to-iotax> <work-dir>
set -euo pipefail

IOTAX="$1"
WORK="$2"

rm -rf "$WORK"
mkdir -p "$WORK"
cd "$WORK"

DAEMON_PID=""
cleanup() {
  if [[ -n "$DAEMON_PID" ]] && kill -0 "$DAEMON_PID" 2>/dev/null; then
    kill -KILL "$DAEMON_PID" 2>/dev/null || true
  fi
}
trap cleanup EXIT

echo "== dataset + model =="
"$IOTAX" simulate --preset tiny --seed 7 --out .
"$IOTAX" train --dataset dataset.csv --model gbt \
  --params '{"n_estimators": 20, "max_depth": 4}' --out model.gbt

echo "== offline golden predictions =="
IOTAX_THREADS=1 "$IOTAX" predict --dataset dataset.csv \
  --model-file model.gbt --out offline.csv

N_JOBS=$(($(wc -l < offline.csv) - 1))
# query sends one request per job per pass; pick enough passes to clear
# the 1000-request floor.
REPEAT=$(((1000 + N_JOBS - 1) / N_JOBS + 1))
echo "jobs=$N_JOBS repeat=$REPEAT ($((N_JOBS * REPEAT)) requests per run)"

run_daemon_pass() {
  local threads="$1"
  local sock="$WORK/serve_t${threads}.sock"
  local served="served_t${threads}.csv"

  echo "== daemon pass at IOTAX_THREADS=$threads =="
  rm -f ready.txt
  IOTAX_THREADS="$threads" "$IOTAX" serve --models model.gbt \
    --socket "$sock" --ready-file ready.txt \
    --metrics-out "metrics_t${threads}.json" \
    > "serve_t${threads}.log" 2>&1 &
  DAEMON_PID=$!

  for _ in $(seq 1 200); do
    [[ -f ready.txt ]] && break
    sleep 0.05
  done
  [[ -f ready.txt ]] || { echo "FAIL: daemon never became ready"; exit 1; }

  "$IOTAX" query --socket "$sock" --ping
  "$IOTAX" query --socket "$sock" --dataset dataset.csv \
    --repeat "$REPEAT" --out "$served"

  kill -TERM "$DAEMON_PID"
  local rc=0
  wait "$DAEMON_PID" || rc=$?
  DAEMON_PID=""
  [[ $rc -eq 0 ]] || { echo "FAIL: daemon exit $rc after SIGTERM"; exit 1; }

  grep -q "drained;" "serve_t${threads}.log" \
    || { echo "FAIL: no drain summary in serve_t${threads}.log"; exit 1; }
  grep -q '"serve.requests"' "metrics_t${threads}.json" \
    || { echo "FAIL: metrics export missing serve.requests"; exit 1; }

  cmp offline.csv "$served" \
    || { echo "FAIL: served CSV differs from offline at threads=$threads"; exit 1; }
  echo "ok: $((N_JOBS * REPEAT)) served predictions byte-identical" \
       "to offline (threads=$threads)"
}

run_daemon_pass 1
run_daemon_pass 4

echo "serve_smoke: PASS"
